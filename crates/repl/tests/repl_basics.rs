//! Behavioural tests for the replication crate's building blocks:
//! transports, frames, the leader/follower shipping loop, fault
//! reactions (retry, gap resume, quarantine + resync), staleness
//! contracts, and failover election. The deeper scripted-schedule
//! property suite lives in `lcdd-testkit/tests/replication.rs`; this
//! file pins each mechanism in isolation.

use std::sync::Arc;

use lcdd_engine::SearchOptions;
use lcdd_fcm::{table_encode_count, EngineError};
use lcdd_repl::{
    elect, probe, promote, sync_to_convergence, Attach, ChannelTransport, FaultAction,
    FaultyTransport, FileTransport, Follower, Frame, Leader, ReadConsistency, RetryPolicy,
    Transport,
};
use lcdd_store::{DurableEngine, StoreOptions};
use lcdd_table::Table;
use lcdd_testkit::crash::{assert_same_hits_bitwise, TempDir};
use lcdd_testkit::{corpus, queries_for, tiny_engine, CorpusSpec};

fn opts(checkpoint_every_ops: u64) -> StoreOptions {
    opts_keeping(checkpoint_every_ops, 2)
}

fn opts_keeping(checkpoint_every_ops: u64, keep_checkpoints: usize) -> StoreOptions {
    StoreOptions {
        sync_writes: false,
        checkpoint_every_ops,
        keep_checkpoints,
        ..StoreOptions::default()
    }
}

/// A leader and a freshly-bootstrapped follower over the same seed
/// corpus (so the follower starts at the leader's epoch with identical
/// state — the `Follower::create` contract).
fn pair(tmp: &TempDir, store_opts: StoreOptions) -> (Leader, Follower, Vec<Table>) {
    let base = corpus(&CorpusSpec::sized(0x9e97, 6));
    let leader_store = DurableEngine::create(
        tmp.subdir("leader"),
        tiny_engine(base.clone(), 2),
        store_opts.clone(),
    )
    .expect("leader store");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let follower = Follower::create(
        tmp.subdir("follower"),
        tiny_engine(base.clone(), 2),
        store_opts,
    )
    .expect("follower");
    (leader, follower, base)
}

/// One batch of mixed mutations against the leader: three fresh tables,
/// one removal, and (every other batch) a compaction — each a logged op.
fn churn_batch(store: &DurableEngine, batch: u64, next_id: &mut u64) {
    let mut tables = corpus(&CorpusSpec {
        seed: 0xC0FFEE ^ batch,
        n_tables: 3,
        series_len: 60,
        near_dup_every: 0,
    });
    let first = *next_id;
    for t in &mut tables {
        t.id = *next_id;
        t.name = format!("churn{batch}-{}", t.id);
        *next_id += 1;
    }
    store.insert_tables(tables).expect("churn insert");
    store.remove_tables(&[first]).expect("churn remove");
    if batch.is_multiple_of(2) {
        store.compact().expect("churn compact");
    }
}

/// Leader and follower must agree exactly: same epoch, same table count,
/// and bit-identical ranked hits on every probe.
fn assert_replica_matches(ctx: &str, leader: &Leader, follower: &Follower, probes: &[Table]) {
    assert_eq!(
        leader.store().epoch(),
        follower.epoch(),
        "{ctx}: epoch mismatch"
    );
    assert_eq!(
        leader.store().len(),
        follower.store().len(),
        "{ctx}: table count mismatch"
    );
    let sopts = SearchOptions::default();
    for (qi, q) in queries_for(probes, probes.len()).iter().enumerate() {
        let a = leader.store().search(q, &sopts).expect("leader search");
        let b = follower
            .search(q, &sopts, ReadConsistency::Any)
            .expect("follower search");
        assert_same_hits_bitwise(&format!("{ctx}: query {qi}"), &a, &b);
    }
}

// ---------------------------------------------------------------- transports

#[test]
fn channel_transport_is_fifo() {
    let t = ChannelTransport::default();
    assert_eq!(t.pending(), 0);
    t.send(b"one").unwrap();
    t.send(b"two").unwrap();
    assert_eq!(t.pending(), 2);
    assert_eq!(t.recv().unwrap().as_deref(), Some(&b"one"[..]));
    assert_eq!(t.recv().unwrap().as_deref(), Some(&b"two"[..]));
    assert_eq!(t.recv().unwrap(), None);
}

#[test]
fn file_transport_spools_across_restart() {
    let tmp = TempDir::new("ft");
    let spool = tmp.subdir("spool");
    let t = FileTransport::new(&spool).expect("file transport");
    t.send(b"alpha").unwrap();
    t.send(b"beta").unwrap();
    drop(t);
    // A fresh endpoint over the same directory sees the spooled frames in
    // order and resumes sequence numbering past them.
    let t2 = FileTransport::new(&spool).expect("reopen");
    assert_eq!(t2.pending(), 2);
    t2.send(b"gamma").unwrap();
    assert_eq!(t2.recv().unwrap().as_deref(), Some(&b"alpha"[..]));
    assert_eq!(t2.recv().unwrap().as_deref(), Some(&b"beta"[..]));
    assert_eq!(t2.recv().unwrap().as_deref(), Some(&b"gamma"[..]));
    assert_eq!(t2.recv().unwrap(), None);
}

// ------------------------------------------------------------ happy path

#[test]
fn clean_stream_replicates_hit_for_hit_without_reencoding() {
    let tmp = TempDir::new("repl-clean");
    // Huge cadence: single WAL file, pure record streaming.
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    assert_eq!(
        leader.attach("f", follower.epoch()),
        Attach::Resumed,
        "fresh pair must resume from the shared seed epoch"
    );
    let transport = ChannelTransport::default();
    let mut next_id = 1000;
    let before_epoch = leader.store().epoch();
    for batch in 0..3 {
        churn_batch(leader.store(), batch, &mut next_id);
    }
    let shipped = leader.store().epoch() - before_epoch;
    let encodes_before = table_encode_count();
    let stats = sync_to_convergence(&leader, "f", &transport, &follower, 16).expect("converge");
    assert_eq!(
        table_encode_count(),
        encodes_before,
        "a replica must never re-encode shipped batches"
    );
    assert_eq!(stats.records_applied, shipped, "every logged op ships once");
    assert_eq!(
        follower.stats().resyncs,
        0,
        "clean stream needs no snapshot"
    );
    assert_replica_matches("clean stream", &leader, &follower, &base);
}

#[test]
fn streaming_follows_the_wal_chain_across_checkpoints() {
    let tmp = TempDir::new("repl-chain");
    // Checkpoint every 2 ops: the leader rotates WAL files mid-stream and
    // the cursor has to walk the chain across rotations.
    let (leader, follower, base) = pair(&tmp, opts_keeping(2, 8));
    leader.attach("f", follower.epoch());
    let transport = ChannelTransport::default();
    let mut next_id = 1000;
    for batch in 0..4 {
        churn_batch(leader.store(), batch, &mut next_id);
        sync_to_convergence(&leader, "f", &transport, &follower, 16).expect("converge");
        assert_replica_matches(&format!("after batch {batch}"), &leader, &follower, &base);
    }
    assert_eq!(
        follower.stats().resyncs,
        0,
        "a follower that syncs every batch stays on the record path"
    );
}

#[test]
fn gc_overtaken_follower_degrades_to_checkpoint_resync() {
    let tmp = TempDir::new("repl-gc");
    // Checkpoint every op, keep 2: by the time the follower attaches, the
    // WAL history covering its epoch is garbage-collected.
    let (leader, follower, base) = pair(&tmp, opts(1));
    assert_eq!(
        leader.attach("f", follower.epoch()),
        Attach::Resumed,
        "the cursor is honourable before history is collected"
    );
    let transport = ChannelTransport::default();
    let mut next_id = 1000;
    for batch in 0..3 {
        churn_batch(leader.store(), batch, &mut next_id);
    }
    let stats = sync_to_convergence(&leader, "f", &transport, &follower, 16).expect("converge");
    assert!(
        follower.stats().resyncs >= 1,
        "history is gone; only a snapshot can catch this follower up (stats: {stats:?})"
    );
    assert_replica_matches("post-resync", &leader, &follower, &base);
}

// ------------------------------------------------------------ fault reactions

#[test]
fn duplicate_and_reordered_frames_are_absorbed() {
    let tmp = TempDir::new("repl-dup");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = FaultyTransport::new(
        ChannelTransport::default(),
        vec![(2, FaultAction::Duplicate), (4, FaultAction::ReorderNext)],
    );
    let mut next_id = 1000;
    for batch in 0..2 {
        churn_batch(leader.store(), batch, &mut next_id);
    }
    let stats = sync_to_convergence(&leader, "f", &transport, &follower, 32).expect("converge");
    assert_eq!(transport.faults_fired(), 2, "both faults must have fired");
    assert!(
        stats.duplicates + follower.stats().duplicates >= 1,
        "the duplicated frame must be skipped idempotently"
    );
    assert_eq!(follower.stats().resyncs, 0, "dup/reorder is not corruption");
    assert_replica_matches("dup+reorder", &leader, &follower, &base);
}

#[test]
fn dropped_frames_resume_from_offset() {
    let tmp = TempDir::new("repl-drop");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = FaultyTransport::new(
        ChannelTransport::default(),
        vec![(2, FaultAction::Drop), (7, FaultAction::Drop)],
    );
    let mut next_id = 1000;
    for batch in 0..2 {
        churn_batch(leader.store(), batch, &mut next_id);
    }
    let stats = sync_to_convergence(&leader, "f", &transport, &follower, 32).expect("converge");
    assert_eq!(transport.faults_fired(), 2);
    assert!(
        stats.gaps_resumed >= 1,
        "lost frames must surface as gap-resume, not resync (stats: {stats:?})"
    );
    assert_eq!(follower.stats().resyncs, 0, "loss is not corruption");
    assert_replica_matches("drops", &leader, &follower, &base);
}

#[test]
fn delayed_frames_arrive_after_ticks() {
    let tmp = TempDir::new("repl-delay");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = FaultyTransport::new(
        ChannelTransport::default(),
        vec![
            (1, FaultAction::Delay { rounds: 2 }),
            (3, FaultAction::Delay { rounds: 3 }),
        ],
    );
    let mut next_id = 1000;
    churn_batch(leader.store(), 0, &mut next_id);
    sync_to_convergence(&leader, "f", &transport, &follower, 32).expect("converge");
    assert_eq!(transport.faults_fired(), 2);
    assert_replica_matches("delays", &leader, &follower, &base);
}

#[test]
fn corrupt_frame_quarantines_then_resyncs() {
    let tmp = TempDir::new("repl-corrupt");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = FaultyTransport::new(
        ChannelTransport::default(),
        vec![(2, FaultAction::CorruptByte { offset: 20 })],
    );
    let mut next_id = 1000;
    for batch in 0..2 {
        churn_batch(leader.store(), batch, &mut next_id);
    }
    let stats = sync_to_convergence(&leader, "f", &transport, &follower, 32).expect("converge");
    assert!(
        follower.stats().quarantines >= 1,
        "a checksum-failing frame must quarantine"
    );
    assert!(
        follower.stats().resyncs >= 1 && stats.resyncs >= 1,
        "quarantine recovers through checkpoint resync (stats: {stats:?})"
    );
    assert!(
        follower.quarantine_reason().is_none(),
        "resync must lift the quarantine"
    );
    assert_replica_matches("corruption", &leader, &follower, &base);
}

#[test]
fn truncated_frame_quarantines_then_resyncs() {
    let tmp = TempDir::new("repl-trunc");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = FaultyTransport::new(
        ChannelTransport::default(),
        vec![(1, FaultAction::Truncate { keep: 9 })],
    );
    let mut next_id = 1000;
    churn_batch(leader.store(), 0, &mut next_id);
    sync_to_convergence(&leader, "f", &transport, &follower, 32).expect("converge");
    assert!(follower.stats().resyncs >= 1);
    assert_replica_matches("truncated frame", &leader, &follower, &base);
}

#[test]
fn transient_send_failures_retry_and_succeed() {
    let tmp = TempDir::new("repl-retry");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = FaultyTransport::new(
        ChannelTransport::default(),
        vec![(1, FaultAction::FailSend), (2, FaultAction::FailSend)],
    );
    let mut next_id = 1000;
    churn_batch(leader.store(), 0, &mut next_id);
    let pump = leader
        .pump("f", &transport)
        .expect("retries absorb transient failures");
    assert!(
        pump.retries >= 2,
        "two failed attempts must show up as retries (got {})",
        pump.retries
    );
    while let Some(bytes) = transport.recv().unwrap() {
        follower.apply_frame(&bytes).expect("clean frames apply");
    }
    assert_replica_matches("transient send failures", &leader, &follower, &base);
}

#[test]
fn permanent_send_failure_is_typed_and_recoverable() {
    let tmp = TempDir::new("repl-perm");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    // Fail every attempt the retry policy is willing to make (6), so the
    // first frame's send fails permanently.
    let schedule: Vec<_> = (1..=6).map(|n| (n, FaultAction::FailSend)).collect();
    let transport = FaultyTransport::new(ChannelTransport::default(), schedule);
    let mut next_id = 1000;
    churn_batch(leader.store(), 0, &mut next_id);
    let err = leader.pump("f", &transport).expect_err("all attempts fail");
    assert!(
        matches!(err, EngineError::Replication(_)),
        "permanent send failure must be a typed replication error, got {err}"
    );
    assert_eq!(follower.stats().applied, 0, "nothing was delivered");
    // The schedule is exhausted; the rolled-back cursor resumes cleanly.
    sync_to_convergence(&leader, "f", &transport, &follower, 32).expect("recovers");
    assert_replica_matches("after permanent failure", &leader, &follower, &base);
}

// ------------------------------------------------------- restart + staleness

#[test]
fn follower_restart_recovers_and_resumes_streaming() {
    let tmp = TempDir::new("repl-restart");
    let root = tmp.subdir("follower");
    let base = corpus(&CorpusSpec::sized(0x9e97, 6));
    let leader_store = DurableEngine::create(
        tmp.subdir("leader"),
        tiny_engine(base.clone(), 2),
        opts(10_000),
    )
    .expect("leader store");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let follower =
        Follower::create(&root, tiny_engine(base.clone(), 2), opts(10_000)).expect("follower");
    leader.attach("f", follower.epoch());
    let transport = ChannelTransport::default();
    let mut next_id = 1000;
    churn_batch(leader.store(), 0, &mut next_id);
    sync_to_convergence(&leader, "f", &transport, &follower, 16).expect("first sync");
    let epoch_at_shutdown = follower.epoch();
    drop(follower);

    // Restart: ordinary PR 5 recovery inside the live generation.
    let (follower, report) = Follower::open(&root, opts(10_000)).expect("reopen replica");
    assert_eq!(
        follower.epoch(),
        epoch_at_shutdown,
        "recovery report: {report:?}"
    );
    assert_eq!(
        leader.attach("f", follower.epoch()),
        Attach::Resumed,
        "recovered epoch must be resumable"
    );
    churn_batch(leader.store(), 1, &mut next_id);
    sync_to_convergence(&leader, "f", &transport, &follower, 16).expect("post-restart sync");
    assert_replica_matches("after restart", &leader, &follower, &base);
}

#[test]
fn staleness_contracts_are_enforced() {
    let tmp = TempDir::new("repl-stale");
    let (leader, follower, base) = pair(&tmp, opts(10_000));
    leader.attach("f", follower.epoch());
    let transport = ChannelTransport::default();
    let mut next_id = 1000;
    churn_batch(leader.store(), 0, &mut next_id);
    let token = leader.store().epoch();
    let sopts = SearchOptions::default();
    let probe_q = &queries_for(&base, 1)[0];

    // Before syncing: Any serves, read-your-writes refuses.
    follower
        .search(probe_q, &sopts, ReadConsistency::Any)
        .expect("Any always serves");
    let err = follower
        .search(probe_q, &sopts, ReadConsistency::AtLeastEpoch(token))
        .expect_err("replica has not caught up to the write token");
    assert!(
        matches!(err, EngineError::Replication(_)),
        "typed refusal, got {err}"
    );

    // A heartbeat tells the replica how far behind it is: bounded lag now
    // has something to measure against.
    let lag = token - follower.epoch();
    follower
        .apply_frame(
            &Frame::Heartbeat {
                leader_epoch: token,
            }
            .encode(),
        )
        .expect("heartbeat");
    assert_eq!(follower.leader_epoch_seen(), token);
    follower
        .search(probe_q, &sopts, ReadConsistency::BoundedLag(lag))
        .expect("lag exactly at the bound serves");
    let err = follower
        .search(probe_q, &sopts, ReadConsistency::BoundedLag(lag - 1))
        .expect_err("lag beyond the bound refuses");
    assert!(matches!(err, EngineError::Replication(_)));

    // After syncing, every contract serves.
    sync_to_convergence(&leader, "f", &transport, &follower, 16).expect("converge");
    follower
        .search(probe_q, &sopts, ReadConsistency::AtLeastEpoch(token))
        .expect("caught up to the token");
    follower
        .search(probe_q, &sopts, ReadConsistency::BoundedLag(0))
        .expect("zero lag after convergence");
}

// ---------------------------------------------------------------- failover

#[test]
fn failover_elects_newest_recoverable_replica_and_promotes_it() {
    let tmp = TempDir::new("repl-failover");
    let base = corpus(&CorpusSpec::sized(0x9e97, 6));
    let leader_store = DurableEngine::create(
        tmp.subdir("leader"),
        tiny_engine(base.clone(), 2),
        opts(10_000),
    )
    .expect("leader store");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let fast = Follower::create(
        tmp.subdir("fast"),
        tiny_engine(base.clone(), 2),
        opts(10_000),
    )
    .expect("fast follower");
    let slow = Follower::create(
        tmp.subdir("slow"),
        tiny_engine(base.clone(), 2),
        opts(10_000),
    )
    .expect("slow follower");
    leader.attach("fast", fast.epoch());
    leader.attach("slow", slow.epoch());
    let t_fast = ChannelTransport::default();
    let t_slow = ChannelTransport::default();
    let mut next_id = 1000;

    // Both replicas see the first batch; only `fast` sees the second —
    // then the leader "dies" (we simply stop consulting it).
    churn_batch(leader.store(), 0, &mut next_id);
    sync_to_convergence(&leader, "fast", &t_fast, &fast, 16).expect("fast sync 1");
    sync_to_convergence(&leader, "slow", &t_slow, &slow, 16).expect("slow sync 1");
    churn_batch(leader.store(), 1, &mut next_id);
    sync_to_convergence(&leader, "fast", &t_fast, &fast, 16).expect("fast sync 2");
    assert!(fast.epoch() > slow.epoch());

    // Election ranks by recoverable epoch; `fast` must win.
    let fast_dir = fast.store_dir();
    let slow_dir = slow.store_dir();
    let probed = probe(&fast_dir).expect("probe fast");
    assert_eq!(
        probed.recoverable_epoch,
        fast.epoch(),
        "probe must count the WAL tail past the last checkpoint"
    );
    let ranking = elect(&[
        slow_dir.clone(),
        fast_dir.clone(),
        tmp.subdir("not-a-store"),
    ])
    .expect("electable field");
    assert_eq!(ranking.len(), 2, "the junk directory is skipped");
    assert_eq!(ranking[0].dir, fast_dir);
    assert_eq!(ranking[1].dir, slow_dir);

    // Promote the winner (drop its Follower handle first — promotion in
    // anger happens after the process holding it died).
    drop(fast);
    let (promoted, report) = promote(&ranking[0], opts(10_000)).expect("promote");
    assert_eq!(
        promoted.epoch(),
        ranking[0].recoverable_epoch,
        "report: {report:?}"
    );
    let new_leader = Leader::new(Arc::new(promoted), RetryPolicy::immediate());

    // The surviving replica re-attaches to the new leader, catches up on
    // the epochs it missed, and continues through fresh churn.
    let t_new = ChannelTransport::default();
    new_leader.attach("slow", slow.epoch());
    churn_batch(new_leader.store(), 2, &mut next_id);
    sync_to_convergence(&new_leader, "slow", &t_new, &slow, 32).expect("converge on new leader");
    assert_replica_matches("after failover", &new_leader, &slow, &base);
}
