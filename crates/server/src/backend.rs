//! What the gateway serves: a [`ServingEngine`] (in-memory), a
//! [`DurableEngine`] (WAL + checkpoints underneath), or a replication
//! [`Follower`] (read-only replica with staleness contracts).
//!
//! All three share the epoch-snapshot discipline: [`Backend::pin`]
//! captures one published [`EngineState`], consistency contracts are
//! checked against *that* snapshot's epoch, and
//! [`Backend::serve_batch`] answers the whole coalesced batch from it —
//! which is what makes the gateway's single-epoch-per-batch guarantee a
//! structural property rather than a timing accident.

use std::sync::Arc;

use lcdd_engine::{
    CacheStats, EngineError, EngineState, Query, SearchOptions, SearchResponse, ServingEngine,
    TierStats,
};
use lcdd_repl::Follower;
use lcdd_store::DurableEngine;
use lcdd_table::Table;

use crate::error::ApiError;

/// Per-request staleness contract, mirroring
/// [`lcdd_repl::ReadConsistency`] but checked gateway-side against the
/// pinned batch snapshot (so it applies to leader backends too — an
/// `AtLeastEpoch` token from an `/insert` response is honoured
/// everywhere).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Consistency {
    /// Serve whatever the snapshot holds.
    Any,
    /// Read-your-writes: the pinned epoch must be at least this token
    /// (round-tripped from a write response's `x-lcdd-epoch` header).
    AtLeastEpoch(u64),
    /// The replica may trail the leader's last heartbeat by at most this
    /// many epochs (leader backends always report zero lag).
    BoundedLag(u64),
}

/// The engine variant behind the gateway.
pub enum Backend {
    /// Plain in-memory concurrent serving.
    Serving(Arc<ServingEngine>),
    /// Durable serving: writes are WAL-logged before they publish.
    Durable(Arc<DurableEngine>),
    /// A read-only replication follower.
    Replica(Arc<Follower>),
}

/// One pinned view of the corpus: the snapshot a whole coalesced batch is
/// served from, plus everything needed to evaluate staleness contracts
/// against exactly that view.
pub struct PinnedView {
    pub state: Arc<EngineState>,
    /// Leader epoch known at pin time (replica: last heartbeat; leader
    /// backends: the pinned epoch itself).
    pub leader_epoch: u64,
    /// The replica's live store at pin time — serving must go through the
    /// same store the snapshot came from, even across a resync swap.
    replica_store: Option<Arc<DurableEngine>>,
}

impl Backend {
    /// Stable name for health/metrics surfaces.
    pub fn kind(&self) -> &'static str {
        match self {
            Backend::Serving(_) => "serving",
            Backend::Durable(_) => "durable",
            Backend::Replica(_) => "replica",
        }
    }

    /// Captures the current published snapshot (lock-free on all
    /// variants; the replica clones its store handle under a short
    /// generation lock).
    pub fn pin(&self) -> PinnedView {
        match self {
            Backend::Serving(s) => {
                let state = s.snapshot();
                PinnedView {
                    leader_epoch: state.epoch(),
                    state,
                    replica_store: None,
                }
            }
            Backend::Durable(d) => {
                let state = d.snapshot();
                PinnedView {
                    leader_epoch: state.epoch(),
                    state,
                    replica_store: None,
                }
            }
            Backend::Replica(f) => {
                let store = f.store();
                PinnedView {
                    state: store.snapshot(),
                    leader_epoch: f.leader_epoch_seen(),
                    replica_store: Some(store),
                }
            }
        }
    }

    /// Checks one request's contract against a pinned view. Called by the
    /// batcher after pinning and before scoring, so an admitted request is
    /// guaranteed to be answered from an epoch that honours its contract.
    pub fn check_consistency(
        &self,
        pin: &PinnedView,
        consistency: Consistency,
    ) -> Result<(), ApiError> {
        let epoch = pin.state.epoch();
        match consistency {
            Consistency::Any => Ok(()),
            Consistency::AtLeastEpoch(token) => {
                if epoch >= token {
                    Ok(())
                } else {
                    Err(ApiError::stale(
                        format!("serving epoch {epoch} is behind the requested token {token}"),
                        epoch,
                    ))
                }
            }
            Consistency::BoundedLag(max_lag) => {
                let lag = match self {
                    Backend::Replica(_) => pin.leader_epoch.saturating_sub(epoch),
                    _ => 0,
                };
                if lag <= max_lag {
                    Ok(())
                } else {
                    Err(ApiError::stale(
                        format!("replica lags the leader by {lag} epochs (max {max_lag})"),
                        epoch,
                    ))
                }
            }
        }
    }

    /// Serves one coalesced batch from the pinned snapshot, through the
    /// query cache, fanned over the shared work pool. Every `Ok` response
    /// carries `pin.state.epoch()`.
    pub fn serve_batch(
        &self,
        pin: &PinnedView,
        queries: &[Query],
        opts: &SearchOptions,
    ) -> Vec<Result<SearchResponse, EngineError>> {
        match self {
            Backend::Serving(s) => s.search_batch_at(&pin.state, queries, opts),
            Backend::Durable(d) => d.search_batch_at(&pin.state, queries, opts),
            Backend::Replica(f) => match &pin.replica_store {
                Some(store) => store.search_batch_at(&pin.state, queries, opts),
                // A replica pin always carries its store; fall back to the
                // live one rather than failing the batch.
                None => f.store().search_batch_at(&pin.state, queries, opts),
            },
        }
    }

    /// Current published epoch.
    pub fn epoch(&self) -> u64 {
        match self {
            Backend::Serving(s) => s.epoch(),
            Backend::Durable(d) => d.epoch(),
            Backend::Replica(f) => f.epoch(),
        }
    }

    /// Live tables in the published state.
    pub fn tables(&self) -> usize {
        match self {
            Backend::Serving(s) => s.len(),
            Backend::Durable(d) => d.len(),
            Backend::Replica(f) => f.store().len(),
        }
    }

    /// Shard count of the published state.
    pub fn shards(&self) -> usize {
        match self {
            Backend::Serving(s) => s.snapshot().shards().len(),
            Backend::Durable(d) => d.snapshot().shards().len(),
            Backend::Replica(f) => f.snapshot().shards().len(),
        }
    }

    /// Hot/cold corpus-tier residency of the published state (lock-free:
    /// one snapshot load plus per-shard counter reads — nothing on the
    /// serving path is contended).
    pub fn tier_stats(&self) -> TierStats {
        match self {
            Backend::Serving(s) => s.snapshot().tier_stats(),
            Backend::Durable(d) => d.snapshot().tier_stats(),
            Backend::Replica(f) => f.snapshot().tier_stats(),
        }
    }

    /// The IVF probe width this backend serves `strategy=ivf` queries
    /// with.
    pub fn ivf_nprobe(&self) -> usize {
        match self {
            Backend::Serving(s) => s.hybrid_config().ivf_nprobe,
            Backend::Durable(d) => d.hybrid_config().ivf_nprobe,
            Backend::Replica(f) => f.store().hybrid_config().ivf_nprobe,
        }
    }

    /// Query-cache counters (lock-free).
    pub fn cache_stats(&self) -> CacheStats {
        match self {
            Backend::Serving(s) => s.cache_stats(),
            Backend::Durable(d) => d.cache_stats(),
            Backend::Replica(f) => f.cache_stats(),
        }
    }

    /// Ingests tables; returns `(epoch_token, assigned_positions)`. The
    /// epoch token is taken after publish, so it is a valid
    /// read-your-writes `AtLeastEpoch` token even under concurrent
    /// writers. Replicas refuse (405).
    pub fn insert(&self, tables: Vec<Table>) -> Result<(u64, Vec<usize>), ApiError> {
        match self {
            Backend::Serving(s) => {
                let positions = s.insert_tables(tables);
                Ok((s.epoch(), positions))
            }
            Backend::Durable(d) => {
                let positions = d
                    .insert_tables(tables)
                    .map_err(|e| crate::error::from_engine_error(&e))?;
                Ok((d.epoch(), positions))
            }
            Backend::Replica(_) => Err(ApiError::read_only_replica()),
        }
    }

    /// Evicts tables by id; returns `(epoch_token, removed_count)`.
    pub fn remove(&self, ids: &[u64]) -> Result<(u64, usize), ApiError> {
        match self {
            Backend::Serving(s) => {
                let removed = s.remove_tables(ids);
                Ok((s.epoch(), removed))
            }
            Backend::Durable(d) => {
                let removed = d
                    .remove_tables(ids)
                    .map_err(|e| crate::error::from_engine_error(&e))?;
                Ok((d.epoch(), removed))
            }
            Backend::Replica(_) => Err(ApiError::read_only_replica()),
        }
    }

    /// WAL length in bytes, for backends that have one (the replica
    /// reports its own store's WAL).
    pub fn wal_len(&self) -> Option<u64> {
        match self {
            Backend::Serving(_) => None,
            Backend::Durable(d) => Some(d.wal_len()),
            Backend::Replica(f) => Some(f.store().wal_len()),
        }
    }

    /// Last background-checkpoint failure, when a store sits underneath.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        match self {
            Backend::Serving(_) => None,
            Backend::Durable(d) => d.last_checkpoint_error(),
            Backend::Replica(f) => f.store().last_checkpoint_error(),
        }
    }

    /// Replica-only health fields: `(leader_epoch_seen, lag, quarantine)`.
    pub fn replica_health(&self) -> Option<(u64, u64, Option<String>)> {
        match self {
            Backend::Replica(f) => Some((f.leader_epoch_seen(), f.lag(), f.quarantine_reason())),
            _ => None,
        }
    }
}
