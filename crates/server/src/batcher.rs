//! The request-coalescing batcher: the single point where concurrent
//! wire searches become `search_batch` calls.
//!
//! Connection handlers parse and validate, then [`Batcher::submit`] —
//! a bounded queue (admission control: overflow is an immediate 503,
//! never unbounded memory) plus a one-shot reply channel the handler
//! parks on. The batcher thread drains up to `max_batch` queued jobs at a
//! time and, per drained group:
//!
//! 1. answers jobs whose **deadline** already passed with 504 — they are
//!    never scored;
//! 2. groups by search options (`k`, strategy, `min_score`) — a
//!    `search_batch` call takes one option set;
//! 3. pins **one** engine snapshot per group and checks every job's
//!    staleness contract against that snapshot (failures answer 412);
//! 4. **dedups** by query fingerprint — N identical in-flight requests
//!    are scored once and fanned out (the classic coalescing win: under a
//!    thundering herd of hot queries each publish, the herd costs one
//!    computation instead of N);
//! 5. serves the whole group from the pinned snapshot, so every response
//!    in a coalesced batch carries the **same epoch** — the invariant the
//!    integration suite asserts via the `x-lcdd-batch-id` header.
//!
//! Shutdown is graceful by construction: `begin_shutdown` stops
//! admission (late submitters get a clean 503), and the batcher thread
//! only exits once the queue is empty — every job that was ever admitted
//! gets exactly one reply (`jobs_enqueued == jobs_answered`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use lcdd_engine::{query_fingerprint, Query, SearchOptions, SearchResponse};
use lcdd_obs::trace::{next_span_id, ring, with_ctx, Stage, TraceCtx, TraceId};

use crate::backend::{Backend, Consistency};
use crate::error::{from_engine_error, ApiError};
use crate::metrics::Metrics;

/// One admitted search, waiting in the queue for the batcher.
pub struct SearchJob {
    pub query: Query,
    pub opts: SearchOptions,
    pub consistency: Consistency,
    /// Absolute expiry; a job still queued past this instant is answered
    /// 504 without being scored.
    pub deadline: Instant,
    /// The requested deadline, for the 504 message.
    pub deadline_ms: u64,
    /// When the job entered the admission queue (stamped by `submit`) —
    /// the anchor for the queue-wait instrument and span.
    pub enqueued_at: Instant,
    /// The submitting request's trace context, if tracing is on. Spans
    /// the batcher and engine record for this job nest under
    /// `ctx.parent` (the handler's `await` span).
    pub ctx: Option<TraceCtx>,
    pub reply: SyncSender<JobReply>,
}

/// What the batcher sends back through a job's reply channel.
pub enum JobReply {
    Ok {
        resp: SearchResponse,
        /// Identity of the `search_batch` call that served this job —
        /// responses sharing a batch id provably share an epoch.
        batch_id: u64,
        /// Requests answered by that call (after expiry/staleness
        /// filtering).
        batch_size: usize,
        /// Distinct computations in that call (`batch_size - unique`
        /// requests were answered by a batch-mate's result).
        batch_unique: usize,
        /// How long this job sat in the admission queue, ns — the handler
        /// subtracts it from end-to-end latency so the service-time
        /// histogram measures scoring, not backlog.
        queue_wait_ns: u64,
    },
    Err(ApiError),
}

/// Outcome of [`Batcher::submit`].
pub enum Submit {
    /// Admitted; park on the receiver for the reply.
    Enqueued(Receiver<JobReply>),
    /// The bounded queue is full — answer 503 with `Retry-After`.
    QueueFull,
    /// The server is draining — answer 503.
    ShuttingDown,
}

/// The coalescing batcher; one per server.
pub struct Batcher {
    queue: Mutex<VecDeque<SearchJob>>,
    notify: Condvar,
    capacity: usize,
    max_batch: usize,
    shutdown: AtomicBool,
    batch_seq: AtomicU64,
    backend: Arc<Backend>,
    metrics: Arc<Metrics>,
}

/// Option-set identity for grouping: jobs with equal keys are served by
/// one `search_batch` call.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct OptsKey {
    k: usize,
    strategy: u8,
    min_score_bits: Option<u32>,
}

fn opts_key(o: &SearchOptions) -> OptsKey {
    OptsKey {
        k: o.k,
        strategy: o.strategy as u8,
        min_score_bits: o.min_score.map(f32::to_bits),
    }
}

impl Batcher {
    /// A batcher over `backend`, admitting at most `capacity` queued jobs
    /// and draining at most `max_batch` (≥ 1; 1 disables coalescing) per
    /// cycle.
    pub fn new(
        backend: Arc<Backend>,
        metrics: Arc<Metrics>,
        capacity: usize,
        max_batch: usize,
    ) -> Arc<Batcher> {
        Arc::new(Batcher {
            queue: Mutex::new(VecDeque::new()),
            notify: Condvar::new(),
            capacity: capacity.max(1),
            max_batch: max_batch.max(1),
            shutdown: AtomicBool::new(false),
            batch_seq: AtomicU64::new(0),
            backend,
            metrics,
        })
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<SearchJob>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits one search, or refuses with backpressure.
    pub fn submit(
        &self,
        query: Query,
        opts: SearchOptions,
        consistency: Consistency,
        deadline: Instant,
        deadline_ms: u64,
        ctx: Option<TraceCtx>,
    ) -> Submit {
        if self.shutdown.load(Relaxed) {
            return Submit::ShuttingDown;
        }
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let mut q = self.lock();
        if self.shutdown.load(Relaxed) {
            return Submit::ShuttingDown;
        }
        if q.len() >= self.capacity {
            return Submit::QueueFull;
        }
        q.push_back(SearchJob {
            query,
            opts,
            consistency,
            deadline,
            deadline_ms,
            enqueued_at: Instant::now(),
            ctx,
            reply: tx,
        });
        self.metrics.jobs_enqueued.inc();
        self.metrics.set_queue_depth(q.len() as u64);
        drop(q);
        self.notify.notify_one();
        Submit::Enqueued(rx)
    }

    /// Stops admission and wakes the batcher so it can drain and exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Relaxed);
        self.notify.notify_all();
    }

    /// Spawns the batcher thread.
    pub fn spawn(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let this = Arc::clone(self);
        std::thread::Builder::new()
            .name("lcdd-batcher".into())
            .spawn(move || this.run())
            .expect("spawn batcher thread")
    }

    fn run(&self) {
        loop {
            let batch = self.next_batch();
            if batch.is_empty() {
                // Only returned empty when shutting down with a drained
                // queue.
                return;
            }
            self.process(batch);
        }
    }

    /// Blocks until work is queued (or shutdown), then drains up to
    /// `max_batch` jobs.
    fn next_batch(&self) -> Vec<SearchJob> {
        let mut q = self.lock();
        loop {
            if !q.is_empty() {
                break;
            }
            if self.shutdown.load(Relaxed) {
                return Vec::new();
            }
            q = self.notify.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
        let n = q.len().min(self.max_batch);
        let batch: Vec<SearchJob> = q.drain(..n).collect();
        self.metrics.set_queue_depth(q.len() as u64);
        batch
    }

    /// Answers one drained batch. Public within the crate for the
    /// deterministic unit tests; the server only drives it via `run`.
    pub(crate) fn process(&self, batch: Vec<SearchJob>) {
        let now = Instant::now();
        // Queue-wait accounting at pickup, for every drained job (expired
        // ones waited too — that is usually *why* they expired).
        for job in &batch {
            let waited = now.saturating_duration_since(job.enqueued_at);
            self.metrics.queue_wait.record_duration(waited);
            self.metrics.queue_wait_60s.record_duration(waited);
            if let Some(ctx) = job.ctx {
                ring().record(
                    ctx.trace,
                    ctx.parent,
                    Stage::QueueWait,
                    job.enqueued_at,
                    waited,
                    None,
                    0,
                );
            }
        }
        // 1. Expired-in-queue jobs: 504, never scored.
        let mut live: Vec<SearchJob> = Vec::with_capacity(batch.len());
        for job in batch {
            if job.deadline <= now {
                self.metrics.expired.inc();
                self.answer(
                    &job,
                    JobReply::Err(ApiError::deadline_exceeded(job.deadline_ms)),
                );
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            return;
        }
        // 2. Group by option set, preserving arrival order of groups.
        let mut order: Vec<OptsKey> = Vec::new();
        let mut groups: HashMap<OptsKey, Vec<SearchJob>> = HashMap::new();
        for job in live {
            let key = opts_key(&job.opts);
            if !groups.contains_key(&key) {
                order.push(key);
            }
            groups.entry(key).or_default().push(job);
        }
        for key in order {
            let Some(group) = groups.remove(&key) else {
                continue;
            };
            self.serve_group(group, now);
        }
    }

    /// One coalesced `search_batch` call: pin, contract-check, dedup,
    /// score, fan out. `picked_up` is the drain instant queue waits were
    /// measured against.
    fn serve_group(&self, group: Vec<SearchJob>, picked_up: Instant) {
        let opts = group[0].opts.clone();
        let pin = self.backend.pin();
        // 3. Staleness contracts against the pinned snapshot.
        let mut admitted: Vec<SearchJob> = Vec::with_capacity(group.len());
        for job in group {
            match self.backend.check_consistency(&pin, job.consistency) {
                Ok(()) => admitted.push(job),
                Err(e) => {
                    self.metrics.stale_rejected.inc();
                    self.answer(&job, JobReply::Err(e));
                }
            }
        }
        if admitted.is_empty() {
            return;
        }
        // 4. Dedup identical in-flight queries.
        let mut unique: Vec<Query> = Vec::with_capacity(admitted.len());
        let mut slot_of: HashMap<u128, usize> = HashMap::with_capacity(admitted.len());
        let mut slots: Vec<usize> = Vec::with_capacity(admitted.len());
        for job in &admitted {
            let fp = query_fingerprint(&job.query, &opts);
            let slot = *slot_of.entry(fp).or_insert_with(|| {
                unique.push(job.query.clone());
                unique.len() - 1
            });
            slots.push(slot);
        }
        // 5. One single-epoch batch call for the whole group. When any
        // member is traced, the call itself runs under a freshly minted
        // **batch trace**: engine stage spans land there once, and every
        // traced member records a `batch_member` span linking to it.
        let batch_id = self.batch_seq.fetch_add(1, Relaxed);
        let batch_size = admitted.len();
        let batch_unique = unique.len();
        let batch_trace = admitted
            .iter()
            .any(|j| j.ctx.is_some())
            .then(|| (TraceId::mint(), next_span_id()));
        let serve_start = Instant::now();
        let results = match batch_trace {
            Some((trace, parent)) => with_ctx(Some(TraceCtx { trace, parent }), || {
                self.backend.serve_batch(&pin, &unique, &opts)
            }),
            None => self.backend.serve_batch(&pin, &unique, &opts),
        };
        let served = serve_start.elapsed();
        if let Some((trace, root)) = batch_trace {
            ring().record_with_id(
                trace,
                root,
                0,
                Stage::Batch,
                serve_start,
                served,
                None,
                batch_size as u64,
            );
            for job in &admitted {
                if let Some(ctx) = job.ctx {
                    ring().record(
                        ctx.trace,
                        ctx.parent,
                        Stage::BatchMember,
                        serve_start,
                        served,
                        Some(trace),
                        batch_unique as u64,
                    );
                }
            }
        }
        self.metrics.batches.inc();
        self.metrics.batched_requests.add(batch_size as u64);
        self.metrics
            .deduped_requests
            .add((batch_size - batch_unique) as u64);
        self.metrics.batch_sizes.record(batch_size as u64);
        for r in results.iter().flatten() {
            if let Some(scanned) = r.counts.quant_scanned {
                self.metrics.quant_scanned.add(scanned as u64);
            }
            if let Some(survivors) = r.counts.reranked {
                self.metrics.reranked.add(survivors as u64);
            }
        }
        for (job, slot) in admitted.iter().zip(slots) {
            let queue_wait_ns = u64::try_from(
                picked_up
                    .saturating_duration_since(job.enqueued_at)
                    .as_nanos(),
            )
            .unwrap_or(u64::MAX);
            let reply = match &results[slot] {
                Ok(resp) => JobReply::Ok {
                    resp: resp.clone(),
                    batch_id,
                    batch_size,
                    batch_unique,
                    queue_wait_ns,
                },
                Err(e) => JobReply::Err(from_engine_error(e)),
            };
            self.answer(job, reply);
        }
    }

    /// Sends a reply; a vanished receiver (client timed out and hung up)
    /// still counts as answered.
    fn answer(&self, job: &SearchJob, reply: JobReply) {
        let _ = job.reply.send(reply);
        self.metrics.jobs_answered.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use lcdd_engine::ServingEngine;
    use lcdd_index::IndexStrategy;

    fn test_backend(n_tables: usize) -> Arc<Backend> {
        Arc::new(Backend::Serving(Arc::new(ServingEngine::new(
            lcdd_testkit::tiny_engine(lcdd_testkit::tiny_corpus(n_tables), 2),
        ))))
    }

    fn job(query: Query, deadline: Instant) -> (SearchJob, Receiver<JobReply>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        (
            SearchJob {
                query,
                opts: SearchOptions::top_k(3),
                consistency: Consistency::Any,
                deadline,
                deadline_ms: 1,
                enqueued_at: Instant::now(),
                ctx: None,
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn expired_jobs_answer_504_without_scoring() {
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(test_backend(4), Arc::clone(&metrics), 16, 8);
        let (j, rx) = job(
            lcdd_testkit::tiny_query(0),
            Instant::now() - Duration::from_millis(5),
        );
        batcher.process(vec![j]);
        match rx.recv().unwrap() {
            JobReply::Err(e) => {
                assert_eq!(e.status, 504);
                assert_eq!(e.code, "deadline_exceeded");
            }
            JobReply::Ok { .. } => panic!("expired job must not be scored"),
        }
        assert_eq!(metrics.expired.get(), 1);
        assert_eq!(metrics.batches.get(), 0, "no search_batch ran");
    }

    #[test]
    fn identical_inflight_queries_are_scored_once() {
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(test_backend(6), Arc::clone(&metrics), 16, 8);
        let far = Instant::now() + Duration::from_secs(30);
        let mut rxs = Vec::new();
        let mut batch = Vec::new();
        for _ in 0..4 {
            let (j, rx) = job(lcdd_testkit::tiny_query(1), far);
            batch.push(j);
            rxs.push(rx);
        }
        let (j, rx) = job(lcdd_testkit::tiny_query(2), far);
        batch.push(j);
        rxs.push(rx);
        batcher.process(batch);
        let mut epochs = Vec::new();
        let mut ids = Vec::new();
        for rx in rxs {
            match rx.recv().unwrap() {
                JobReply::Ok {
                    resp,
                    batch_id,
                    batch_size,
                    batch_unique,
                    ..
                } => {
                    assert_eq!(batch_size, 5);
                    assert_eq!(
                        batch_unique, 2,
                        "4 duplicates + 1 distinct = 2 computations"
                    );
                    epochs.push(resp.epoch);
                    ids.push(batch_id);
                }
                JobReply::Err(e) => panic!("unexpected error: {}", e.message),
            }
        }
        assert!(
            epochs.windows(2).all(|w| w[0] == w[1]),
            "single-epoch batch"
        );
        assert!(ids.windows(2).all(|w| w[0] == w[1]), "one batch id");
        assert_eq!(metrics.deduped_requests.get(), 3);
        assert_eq!(metrics.batches.get(), 1);
    }

    #[test]
    fn mixed_options_split_into_single_option_batches() {
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(test_backend(6), Arc::clone(&metrics), 16, 8);
        let far = Instant::now() + Duration::from_secs(30);
        let (tx, rx1) = std::sync::mpsc::sync_channel(1);
        let j1 = SearchJob {
            query: lcdd_testkit::tiny_query(0),
            opts: SearchOptions::top_k(2),
            consistency: Consistency::Any,
            deadline: far,
            deadline_ms: 1000,
            enqueued_at: Instant::now(),
            ctx: None,
            reply: tx,
        };
        let (tx, rx2) = std::sync::mpsc::sync_channel(1);
        let j2 = SearchJob {
            query: lcdd_testkit::tiny_query(0),
            opts: SearchOptions::top_k(2).with_strategy(IndexStrategy::NoIndex),
            consistency: Consistency::Any,
            deadline: far,
            deadline_ms: 1000,
            enqueued_at: Instant::now(),
            ctx: None,
            reply: tx,
        };
        batcher.process(vec![j1, j2]);
        let (mut id1, mut id2) = (0, 0);
        if let JobReply::Ok { batch_id, .. } = rx1.recv().unwrap() {
            id1 = batch_id;
        }
        if let JobReply::Ok { batch_id, .. } = rx2.recv().unwrap() {
            id2 = batch_id;
        }
        assert_ne!(id1, id2, "different option sets never share a batch");
        assert_eq!(metrics.batches.get(), 2);
    }

    #[test]
    fn queue_overflow_and_shutdown_refuse_cleanly() {
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(test_backend(4), metrics, 2, 8);
        let far = Instant::now() + Duration::from_secs(30);
        let sub = |i: usize| {
            batcher.submit(
                lcdd_testkit::tiny_query(i),
                SearchOptions::top_k(3),
                Consistency::Any,
                far,
                1000,
                None,
            )
        };
        assert!(matches!(sub(0), Submit::Enqueued(_)));
        assert!(matches!(sub(1), Submit::Enqueued(_)));
        assert!(matches!(sub(2), Submit::QueueFull));
        batcher.begin_shutdown();
        assert!(matches!(sub(0), Submit::ShuttingDown));
    }
}
