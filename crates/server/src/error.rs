//! The typed wire error surface: every non-2xx response the gateway emits
//! carries a machine-readable `{"error":{"code":...,"message":...}}` body,
//! and adversarial input maps to a 4xx — never a panic, never a bare
//! connection reset (enforced by the rejection fuzz suite).

use lcdd_fcm::EngineError;

use crate::json::quote;

/// A wire-level error: HTTP status plus a stable machine-readable code.
#[derive(Clone, Debug)]
pub struct ApiError {
    pub status: u16,
    pub code: &'static str,
    pub message: String,
    /// Emitted as a `Retry-After` header (seconds) on backpressure
    /// rejections.
    pub retry_after_s: Option<u64>,
    /// The serving epoch at rejection time, when relevant (staleness
    /// contract failures) — lets the caller recalibrate its token.
    pub current_epoch: Option<u64>,
}

impl ApiError {
    /// A 400 with the given code.
    pub fn bad_request(code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status: 400,
            code,
            message: message.into(),
            retry_after_s: None,
            current_epoch: None,
        }
    }

    /// 503: the admission queue is full — shed load, ask for a retry.
    pub fn queue_full(capacity: usize) -> ApiError {
        ApiError {
            status: 503,
            code: "queue_full",
            message: format!("admission queue at capacity ({capacity}); retry shortly"),
            retry_after_s: Some(1),
            current_epoch: None,
        }
    }

    /// 503: the server is draining for shutdown.
    pub fn shutting_down() -> ApiError {
        ApiError {
            status: 503,
            code: "shutting_down",
            message: "server is draining; no new work is admitted".into(),
            retry_after_s: Some(1),
            current_epoch: None,
        }
    }

    /// 504: the request's deadline passed before it was scored.
    pub fn deadline_exceeded(deadline_ms: u64) -> ApiError {
        ApiError {
            status: 504,
            code: "deadline_exceeded",
            message: format!("deadline of {deadline_ms} ms expired before the query was scored"),
            retry_after_s: None,
            current_epoch: None,
        }
    }

    /// 412: a staleness contract the current snapshot cannot honour.
    pub fn stale(message: impl Into<String>, current_epoch: u64) -> ApiError {
        ApiError {
            status: 412,
            code: "stale_replica",
            message: message.into(),
            retry_after_s: Some(1),
            current_epoch: Some(current_epoch),
        }
    }

    /// 405: mutation attempted against a read-only replica gateway.
    pub fn read_only_replica() -> ApiError {
        ApiError {
            status: 405,
            code: "read_only_replica",
            message: "this gateway serves a replica; send writes to the leader".into(),
            retry_after_s: None,
            current_epoch: None,
        }
    }

    /// 404 for an unroutable path.
    pub fn not_found(path: &str) -> ApiError {
        ApiError {
            status: 404,
            code: "not_found",
            message: format!("no route for '{path}'"),
            retry_after_s: None,
            current_epoch: None,
        }
    }

    /// 405 for a known path with the wrong method.
    pub fn method_not_allowed(method: &str, path: &str) -> ApiError {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("method {method} is not allowed on {path}"),
            retry_after_s: None,
            current_epoch: None,
        }
    }

    /// The JSON error body.
    pub fn body(&self) -> String {
        let mut extra = String::new();
        if let Some(e) = self.current_epoch {
            extra.push_str(&format!(",\"current_epoch\":{e}"));
        }
        format!(
            "{{\"error\":{{\"code\":{},\"message\":{}{extra}}}}}",
            quote(self.code),
            quote(&self.message)
        )
    }
}

/// Maps an engine-side failure to the wire. Degenerate *inputs* are the
/// caller's fault (400); a replica that cannot honour a staleness token is
/// 412; anything else is a genuine 500.
pub fn from_engine_error(e: &EngineError) -> ApiError {
    match e {
        EngineError::EmptyQuery => {
            ApiError::bad_request("empty_query", "the query contains no extractable lines")
        }
        EngineError::UnsupportedQuery(msg) => {
            ApiError::bad_request("unsupported_query", msg.clone())
        }
        EngineError::InvalidConfig(msg) => ApiError::bad_request("invalid_config", msg.clone()),
        EngineError::Replication(msg) => ApiError {
            status: 412,
            code: "stale_replica",
            message: msg.clone(),
            retry_after_s: Some(1),
            current_epoch: None,
        },
        other => ApiError {
            status: 500,
            code: "engine_error",
            message: other.to_string(),
            retry_after_s: None,
            current_epoch: None,
        },
    }
}
