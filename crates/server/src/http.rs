//! Hand-rolled HTTP/1.1 framing over blocking `std::net` sockets — the
//! offline-vendor constraint rules out tokio/hyper, and the gateway needs
//! only the small subset it speaks: request-line + headers + a
//! `Content-Length` body, keep-alive by default, explicit close on
//! error or drain.
//!
//! Every limit is enforced *while reading*, never after: header lines are
//! capped, header count is capped, and a body larger than the configured
//! maximum is refused before a byte of it is buffered — the gateway's
//! first line of admission control (bounded memory per connection).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line / header line, bytes.
const MAX_LINE: u64 = 8192;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 64;

/// One parsed request. Header names are lowercased; the path is stripped
/// of any query string (kept in `query`).
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub query: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked to close after this response.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream between requests (keep-alive peer went away).
    Eof,
    /// The socket read timed out (idle keep-alive) — close silently.
    Timeout,
    /// Transport error mid-request.
    Io(io::Error),
    /// Syntactically invalid request — answer 400 and close.
    Malformed(String),
    /// Declared `Content-Length` exceeds the configured maximum — answer
    /// the typed 400 without buffering the body.
    BodyTooLarge { declared: usize, limit: usize },
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one CRLF- (or LF-) terminated line, capped at [`MAX_LINE`].
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<Option<String>, ReadError> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(MAX_LINE)
        .read_until(b'\n', &mut buf)
        .map_err(|e| {
            if is_timeout(&e) {
                // A timeout with bytes already consumed is a stalled
                // peer mid-line, not an idle keep-alive: the stream is
                // desynchronized and must be answered-and-closed.
                if buf.is_empty() {
                    ReadError::Timeout
                } else {
                    ReadError::Malformed("stream stalled mid-line".into())
                }
            } else {
                ReadError::Io(e)
            }
        })?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() != Some(&b'\n') {
        return Err(ReadError::Malformed(format!(
            "header line exceeds {MAX_LINE} bytes or stream ended mid-line"
        )));
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| ReadError::Malformed("header line is not valid UTF-8".into()))
}

/// Reads the next request off a keep-alive connection.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let Some(line) = read_line(reader)? else {
        return Err(ReadError::Eof);
    };
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!("bad request line '{line}'")));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad request line '{line}'")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some(line) = read_line(reader)? else {
            return Err(ReadError::Malformed("stream ended inside headers".into()));
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(ReadError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line '{line}'")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ReadError::Malformed(
            "transfer-encoding is not supported; send Content-Length".into(),
        ));
    }
    let declared = match req.header("content-length") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length '{v}'")))?,
        None => 0,
    };
    if declared > max_body {
        return Err(ReadError::BodyTooLarge {
            declared,
            limit: max_body,
        });
    }
    if declared > 0 {
        let mut body = vec![0u8; declared];
        reader.read_exact(&mut body).map_err(|e| {
            if is_timeout(&e) {
                // Headers arrived but the body stalled: the stream is
                // desynchronized, so this is malformed, not idle.
                ReadError::Malformed("body stalled short of Content-Length".into())
            } else {
                ReadError::Io(e)
            }
        })?;
        req.body = body;
    }
    Ok(req)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        410 => "Gone",
        412 => "Precondition Failed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes one JSON response. `extra` headers are emitted verbatim;
/// `close` controls the `Connection` header.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra: &[(&str, String)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response_typed(stream, status, "application/json", extra, body, close)
}

/// Writes one response with an explicit `Content-Type` (the Prometheus
/// text exposition on `/metrics`; everything else stays JSON).
pub fn write_response_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    let mut out = String::with_capacity(body.len() + 160);
    out.push_str(&format!("HTTP/1.1 {status} {}\r\n", reason(status)));
    out.push_str(&format!("Content-Type: {content_type}\r\n"));
    out.push_str(&format!("Content-Length: {}\r\n", body.len()));
    out.push_str(if close {
        "Connection: close\r\n"
    } else {
        "Connection: keep-alive\r\n"
    });
    for (k, v) in extra {
        out.push_str(&format!("{k}: {v}\r\n"));
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}
