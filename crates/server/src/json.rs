//! Minimal JSON for the wire surface — hand-rolled because the build
//! environment is offline (no serde): a strict recursive-descent parser
//! producing a small [`Json`] tree, plus string/number emit helpers the
//! response builders use.
//!
//! Deliberate strictness, because everything parsed here arrives off the
//! network: recursion depth is capped, numbers that overflow `f64` to a
//! non-finite value are rejected (so `1e999` can never smuggle an `inf`
//! into a series), lone surrogates are rejected, and trailing garbage
//! after the top-level value is an error.

/// Maximum nesting depth accepted by [`parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Always finite — the parser rejects overflows to `inf`/`NaN`.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs (duplicates keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (last occurrence wins, mirroring most parsers).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts and
    /// magnitudes beyond 2^53, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if v.fract() == 0.0 && (0.0..=9007199254740992.0).contains(v) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected byte {:#04x} at offset {}", c, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..=0xDBFF).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..=0xDFFF).contains(&hi) {
                                return Err("lone low surrogate".into());
                            } else {
                                hi
                            };
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return Err("invalid code point".into()),
                            }
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                0x00..=0x1f => return Err("unescaped control byte in string".into()),
                _ => {
                    // Copy the whole UTF-8 sequence this byte starts.
                    let start = self.pos - 1;
                    let len = utf8_len(b)?;
                    let end = start + len;
                    let Some(chunk) = self.bytes.get(start..end) else {
                        return Err("truncated UTF-8 sequence".into());
                    };
                    match std::str::from_utf8(chunk) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err("invalid UTF-8 in string".into()),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let Some(chunk) = self.bytes.get(self.pos..self.pos + 4) else {
            return Err("truncated \\u escape".into());
        };
        let s = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        let v: f64 = text
            .parse()
            .map_err(|_| format!("invalid number '{text}'"))?;
        if !v.is_finite() {
            return Err(format!("number '{text}' is not representable"));
        }
        Ok(Json::Num(v))
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x20..=0x7f => Ok(1),
        0xc2..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf4 => Ok(4),
        _ => Err("invalid UTF-8 lead byte".into()),
    }
}

/// Emits `s` as a quoted, escaped JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Emits a float as a JSON number; non-finite values become `null`
/// (responses never carry `NaN`/`inf`, which JSON cannot express).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Emits `Some(n)` as a number, `None` as `null`.
pub fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_search_shape() {
        let v = parse(r#"{"series":[[1.0,-2.5e1]],"k":5,"strategy":"hybrid"}"#).unwrap();
        let series = v.get("series").unwrap().as_arr().unwrap();
        let s0 = series[0].as_arr().unwrap();
        assert_eq!(s0[0].as_f64(), Some(1.0));
        assert_eq!(s0[1].as_f64(), Some(-25.0));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("strategy").unwrap().as_str(), Some("hybrid"));
    }

    #[test]
    fn rejects_non_finite_and_malformed() {
        assert!(parse("1e999").is_err(), "overflow to inf must be rejected");
        assert!(parse("-1e999").is_err());
        assert!(parse("nan").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} garbage").is_err());
        assert!(parse("\"\\ud800\"").is_err(), "lone surrogate");
        assert!(
            parse(&("[".repeat(100) + &"]".repeat(100))).is_err(),
            "depth cap"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
        let q = quote("a\"b\\c\nA😀");
        assert_eq!(parse(&q).unwrap().as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn num_emitter_guards_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
