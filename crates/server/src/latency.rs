//! Lock-free log-linear histogram for latency and batch-size recording.
//!
//! [`Histogram::record`] is a single relaxed `fetch_add` into a fixed
//! bucket array (plus count/sum/max counters), so the serving hot path —
//! and every load-generator thread in `bench_server` — can record without
//! a mutex and without allocation. Buckets are log-linear: values below
//! 32 are exact, and every power-of-two octave above that is split into
//! 32 sub-buckets, giving ≤ ~3% relative quantile error over the full
//! `u64` range in 1920 buckets (~15 KiB of atomics).
//!
//! Percentile reads walk a relaxed snapshot of the buckets; concurrent
//! recording can skew a quantile by at most the records that land
//! mid-walk, which is the usual (and here acceptable) monitoring-grade
//! contract.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Sub-buckets per power-of-two octave (and the exact-bucket cutoff).
const SUB: u64 = 32;
const SUB_BITS: u64 = 5;
/// Bucket count covering the whole `u64` range: 32 exact buckets plus
/// 59 octaves × 32 sub-buckets (octaves 5..=63).
const BUCKETS: usize = 1920;

/// A fixed-size, lock-free histogram of `u64` samples (nanoseconds,
/// batch sizes — any non-negative magnitude).
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let e = 63 - u64::from(v.leading_zeros());
        let m = (v >> (e - SUB_BITS)) & (SUB - 1);
        ((e - SUB_BITS + 1) * SUB + m) as usize
    }
}

/// Inclusive upper bound of the values mapping to `idx`.
fn bucket_high(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        idx
    } else {
        let octave = idx / SUB;
        let m = idx % SUB;
        let e = octave - 1 + SUB_BITS;
        // The topmost octave's bound exceeds u64 — saturate.
        let high = ((u128::from(SUB + m) + 1) << (e - SUB_BITS)) - 1;
        u64::try_from(high).unwrap_or(u64::MAX)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum.load(Relaxed) as f64 / n as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), as the inclusive upper bound
    /// of the bucket holding the rank — an overestimate by at most one
    /// sub-bucket width (~3%). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx).min(self.max());
            }
        }
        self.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_cutoff() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_ordered() {
        let mut prev_high = None;
        for idx in 0..BUCKETS {
            let high = bucket_high(idx);
            if let Some(p) = prev_high {
                assert!(high > p, "bucket {idx} high {high} <= previous {p}");
            }
            prev_high = Some(high);
        }
        // Every value maps to a bucket whose bound brackets it.
        for v in [
            0,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            1 << 20,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS);
            assert!(bucket_high(idx) >= v, "v={v} idx={idx}");
            if idx > 0 {
                assert!(bucket_high(idx - 1) < v, "v={v} idx={idx}");
            }
        }
    }

    #[test]
    fn percentiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        // Log-linear error bound: within ~4% of the true quantile.
        assert!((480..=530).contains(&p50), "p50={p50}");
        assert!((960..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(0.99), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_counts_everything() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
    }
}
