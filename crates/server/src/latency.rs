//! Re-export shim: the lock-free log-linear histogram that grew up here
//! moved to [`lcdd_obs::registry`] so every crate in the stack — store,
//! repl, engine, bench — records into the same instrument type. Existing
//! `lcdd_server::latency::Histogram` (and `lcdd_server::Histogram`)
//! imports keep compiling unchanged.

pub use lcdd_obs::registry::Histogram;
