//! `lcdd-server`: the network gateway over the serving stack.
//!
//! An HTTP/1.1 server on blocking `std::net` sockets (the offline-vendor
//! constraint rules out async runtimes) whose core is a
//! **request-coalescing batcher**: concurrent in-flight `/search`
//! requests are queued, deduplicated by query fingerprint, and merged
//! into single [`ServingEngine::search_batch`] calls — every response in
//! a coalesced batch is served from **one** pinned epoch snapshot, so a
//! shared `x-lcdd-batch-id` implies a shared `epoch`.
//!
//! Admission control is layered: a connection cap at the acceptor, a
//! bounded batcher queue (overflow → 503 + `Retry-After`), per-request
//! deadlines (expired in queue → 504, never scored), and a graceful
//! drain on shutdown that answers every admitted request before the
//! threads exit.
//!
//! ```no_run
//! use lcdd_server::{Backend, Server, ServerConfig};
//! use lcdd_engine::ServingEngine;
//! use std::sync::Arc;
//!
//! # fn demo(engine: lcdd_engine::Engine) -> std::io::Result<()> {
//! let serving = Arc::new(ServingEngine::new(engine));
//! let server = Server::start(Backend::Serving(serving), ServerConfig::default())?;
//! println!("listening on {}", server.addr());
//! let report = server.shutdown();
//! assert_eq!(report.jobs_enqueued, report.jobs_answered);
//! # Ok(())
//! # }
//! ```
//!
//! [`ServingEngine::search_batch`]: lcdd_engine::ServingEngine::search_batch

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod backend;
pub mod batcher;
pub mod error;
pub mod http;
pub mod json;
pub mod latency;
pub mod metrics;
pub mod server;
pub mod wire;

pub use backend::{Backend, Consistency, PinnedView};
pub use batcher::{Batcher, JobReply, SearchJob, Submit};
pub use error::ApiError;
pub use latency::Histogram;
pub use metrics::Metrics;
pub use server::{Server, ServerConfig, ShutdownReport};
