//! The gateway's observability counters, all lock-free: [`Counter`] /
//! [`Gauge`] relaxed atomics plus [`Histogram`]s (search latency, queue
//! wait, coalesced batch size) and rolling 60-second
//! [`WindowedHistogram`] views of the latency instruments. A `/metrics`
//! scrape reads a relaxed snapshot — it never takes a lock the serving
//! path could contend on — and the Prometheus rendering additionally
//! folds in the process-wide [`lcdd_obs::registry::global`] registry that
//! the store, replication and work-pool layers register into.

use std::time::Instant;

use lcdd_obs::prometheus::Writer;
use lcdd_obs::registry::{Counter, Gauge, Histogram, WindowedHistogram};

use crate::backend::Backend;

/// All gateway counters. Field groups mirror the `/metrics` JSON schema
/// documented in the README.
pub struct Metrics {
    start: Instant,
    // Requests routed, per endpoint.
    pub search: Counter,
    pub insert: Counter,
    pub remove: Counter,
    pub healthz: Counter,
    pub metrics: Counter,
    pub snapshot: Counter,
    pub debug: Counter,
    // Response classes.
    pub ok: Counter,
    pub client_error: Counter,
    pub server_error: Counter,
    pub rejected_queue_full: Counter,
    pub rejected_connections: Counter,
    pub rejected_shutdown: Counter,
    pub expired: Counter,
    pub stale_rejected: Counter,
    // Batcher accounting. `jobs_enqueued == jobs_answered` after a drain
    // is the no-lost-request invariant the shutdown test asserts.
    pub jobs_enqueued: Counter,
    pub jobs_answered: Counter,
    pub queue_depth: Gauge,
    pub queue_high_water: Gauge,
    // Coalescing.
    pub batches: Counter,
    pub batched_requests: Counter,
    pub deduped_requests: Counter,
    pub batch_sizes: Histogram,
    /// `/search` **service** latency, ns: end-to-end handling minus the
    /// admission-queue wait (which [`Metrics::queue_wait`] records on its
    /// own), so queue pressure does not masquerade as scoring cost.
    pub search_latency: Histogram,
    /// Rolling 60-second view of [`Metrics::search_latency`].
    pub search_latency_60s: WindowedHistogram,
    /// Admission-queue wait (submit → batcher pickup), ns.
    pub queue_wait: Histogram,
    /// Rolling 60-second view of [`Metrics::queue_wait`].
    pub queue_wait_60s: WindowedHistogram,
    // Quantized-scan pipeline: candidates proxy-scored by the int8 scan
    // vs candidates that survived into the exact f32 re-rank, summed over
    // every answered search that used `rerank`.
    pub quant_scanned: Counter,
    pub reranked: Counter,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh counters; `start` anchors the qps/uptime computation.
    pub fn new() -> Self {
        Metrics {
            start: Instant::now(),
            search: Counter::new(),
            insert: Counter::new(),
            remove: Counter::new(),
            healthz: Counter::new(),
            metrics: Counter::new(),
            snapshot: Counter::new(),
            debug: Counter::new(),
            ok: Counter::new(),
            client_error: Counter::new(),
            server_error: Counter::new(),
            rejected_queue_full: Counter::new(),
            rejected_connections: Counter::new(),
            rejected_shutdown: Counter::new(),
            expired: Counter::new(),
            stale_rejected: Counter::new(),
            jobs_enqueued: Counter::new(),
            jobs_answered: Counter::new(),
            queue_depth: Gauge::new(),
            queue_high_water: Gauge::new(),
            batches: Counter::new(),
            batched_requests: Counter::new(),
            deduped_requests: Counter::new(),
            batch_sizes: Histogram::new(),
            search_latency: Histogram::new(),
            search_latency_60s: WindowedHistogram::new(),
            queue_wait: Histogram::new(),
            queue_wait_60s: WindowedHistogram::new(),
            quant_scanned: Counter::new(),
            reranked: Counter::new(),
        }
    }

    /// Classifies a response status into the ok/4xx/5xx counters (the
    /// dedicated 503/504/412 counters are bumped at their decision
    /// points, not here).
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.ok.inc(),
            400..=499 => self.client_error.inc(),
            _ => self.server_error.inc(),
        };
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.set(depth);
        self.queue_high_water.record_max(depth);
    }

    /// Records one answered `/search`: service time (queue wait already
    /// subtracted by the caller) into the lifetime and windowed
    /// histograms.
    pub fn record_service_time(&self, service_ns: u64) {
        self.search_latency.record(service_ns);
        self.search_latency_60s.record(service_ns);
    }

    /// Renders the `/metrics` JSON document.
    pub fn to_json(&self, backend: &Backend, queue_capacity: usize, draining: bool) -> String {
        let uptime_s = self.start.elapsed().as_secs_f64().max(1e-9);
        let searches = self.search.get();
        let lat = &self.search_latency;
        let qw = &self.queue_wait;
        let bs = &self.batch_sizes;
        let cache = backend.cache_stats();
        let tier = backend.tier_stats();
        let batches = self.batches.get();
        let batched = self.batched_requests.get();
        let mean_batch = if batches == 0 {
            0.0
        } else {
            batched as f64 / batches as f64
        };
        format!(
            concat!(
                "{{",
                "\"uptime_s\":{uptime},",
                "\"draining\":{draining},",
                "\"epoch\":{epoch},",
                "\"tables\":{tables},",
                "\"qps\":{qps},",
                "\"requests\":{{\"search\":{search},\"insert\":{insert},\"remove\":{remove},",
                "\"healthz\":{healthz},\"metrics\":{metricsc},\"snapshot\":{snapshot}}},",
                "\"responses\":{{\"ok\":{ok},\"client_error\":{cerr},\"server_error\":{serr},",
                "\"rejected_503\":{r503},\"rejected_connections\":{rconn},",
                "\"rejected_shutdown\":{rshut},\"expired_504\":{exp},\"stale_412\":{stale}}},",
                "\"latency_us\":{{\"count\":{lcount},\"mean\":{lmean},\"p50\":{p50},",
                "\"p95\":{p95},\"p99\":{p99},\"max\":{lmax}}},",
                "\"latency_recent_us\":{{\"count_60s\":{wcount},\"p50_60s\":{wp50},",
                "\"p95_60s\":{wp95},\"p99_60s\":{wp99}}},",
                "\"queue_wait_us\":{{\"count\":{qwcount},\"mean\":{qwmean},\"p50\":{qwp50},",
                "\"p95\":{qwp95},\"p99\":{qwp99},\"max\":{qwmax}}},",
                "\"queue\":{{\"depth\":{qdepth},\"capacity\":{qcap},\"high_water\":{qhw}}},",
                "\"jobs\":{{\"enqueued\":{jenq},\"answered\":{jans}}},",
                "\"coalescing\":{{\"batches\":{batches},\"requests\":{breq},",
                "\"deduped\":{dedup},\"mean_batch\":{meanb},\"p95_batch\":{p95b},",
                "\"max_batch\":{maxb}}},",
                "\"cache\":{{\"hits\":{chits},\"misses\":{cmiss},\"evictions\":{cevict},",
                "\"len\":{clen}}},",
                "\"tier\":{{\"resident_tables\":{trt},\"mapped_tables\":{tmt},",
                "\"resident_bytes\":{trb},\"mapped_bytes\":{tmb},",
                "\"slots_paged_in\":{tspi},\"bytes_paged_in\":{tbpi},",
                "\"quant_scanned\":{tqs},\"reranked\":{trr},",
                "\"ivf_nprobe\":{tnp}}},",
                "\"trace\":{{\"spans_recorded\":{tsr},\"spans_dropped\":{tsd},",
                "\"ring_capacity\":{trc}}}",
                "}}"
            ),
            uptime = crate::json::num(uptime_s),
            draining = draining,
            epoch = backend.epoch(),
            tables = backend.tables(),
            qps = crate::json::num(searches as f64 / uptime_s),
            search = searches,
            insert = self.insert.get(),
            remove = self.remove.get(),
            healthz = self.healthz.get(),
            metricsc = self.metrics.get(),
            snapshot = self.snapshot.get(),
            ok = self.ok.get(),
            cerr = self.client_error.get(),
            serr = self.server_error.get(),
            r503 = self.rejected_queue_full.get(),
            rconn = self.rejected_connections.get(),
            rshut = self.rejected_shutdown.get(),
            exp = self.expired.get(),
            stale = self.stale_rejected.get(),
            lcount = lat.count(),
            lmean = crate::json::num(lat.mean() / 1_000.0),
            p50 = lat.percentile(0.50) / 1_000,
            p95 = lat.percentile(0.95) / 1_000,
            p99 = lat.percentile(0.99) / 1_000,
            lmax = lat.max() / 1_000,
            wcount = self.search_latency_60s.count(),
            wp50 = self.search_latency_60s.percentile(0.50) / 1_000,
            wp95 = self.search_latency_60s.percentile(0.95) / 1_000,
            wp99 = self.search_latency_60s.percentile(0.99) / 1_000,
            qwcount = qw.count(),
            qwmean = crate::json::num(qw.mean() / 1_000.0),
            qwp50 = qw.percentile(0.50) / 1_000,
            qwp95 = qw.percentile(0.95) / 1_000,
            qwp99 = qw.percentile(0.99) / 1_000,
            qwmax = qw.max() / 1_000,
            qdepth = self.queue_depth.get(),
            qcap = queue_capacity,
            qhw = self.queue_high_water.get(),
            jenq = self.jobs_enqueued.get(),
            jans = self.jobs_answered.get(),
            batches = batches,
            breq = batched,
            dedup = self.deduped_requests.get(),
            meanb = crate::json::num(mean_batch),
            p95b = bs.percentile(0.95),
            maxb = bs.max(),
            chits = cache.hits,
            cmiss = cache.misses,
            cevict = cache.evictions,
            clen = cache.len,
            trt = tier.resident_tables,
            tmt = tier.mapped_tables,
            trb = tier.resident_bytes,
            tmb = tier.mapped_bytes,
            tspi = tier.slots_paged_in,
            tbpi = tier.bytes_paged_in,
            tqs = self.quant_scanned.get(),
            trr = self.reranked.get(),
            tnp = backend.ivf_nprobe(),
            tsr = lcdd_obs::trace::ring().recorded(),
            tsd = lcdd_obs::trace::ring().dropped(),
            trc = lcdd_obs::trace::ring().capacity(),
        )
    }

    /// Renders the `/metrics` Prometheus text exposition: this gateway's
    /// instruments, the engine tier behind it, the span ring, and every
    /// instrument the store/repl/pool layers registered into the
    /// process-wide registry. Lock discipline matches the JSON path —
    /// relaxed instrument reads plus one brief registry-map clone.
    pub fn to_prometheus(
        &self,
        backend: &Backend,
        queue_capacity: usize,
        draining: bool,
    ) -> String {
        let uptime_s = self.start.elapsed().as_secs_f64().max(1e-9);
        let cache = backend.cache_stats();
        let tier = backend.tier_stats();
        let mut w = Writer::new();
        // Gateway: routing + response classes.
        w.gauge_f64(
            "lcdd_gateway_uptime_seconds",
            "Seconds since the gateway started.",
            uptime_s,
        );
        w.gauge(
            "lcdd_gateway_draining",
            "1 while the gateway is draining for shutdown.",
            u64::from(draining),
        );
        for (name, help, c) in [
            (
                "lcdd_gateway_search_requests_total",
                "POST /search requests routed.",
                &self.search,
            ),
            (
                "lcdd_gateway_insert_requests_total",
                "POST /insert requests routed.",
                &self.insert,
            ),
            (
                "lcdd_gateway_remove_requests_total",
                "POST /remove requests routed.",
                &self.remove,
            ),
            (
                "lcdd_gateway_healthz_requests_total",
                "GET /healthz requests routed.",
                &self.healthz,
            ),
            (
                "lcdd_gateway_metrics_requests_total",
                "GET /metrics scrapes.",
                &self.metrics,
            ),
            (
                "lcdd_gateway_snapshot_requests_total",
                "GET /snapshot requests routed.",
                &self.snapshot,
            ),
            (
                "lcdd_gateway_debug_requests_total",
                "GET /debug/* requests routed.",
                &self.debug,
            ),
            ("lcdd_gateway_ok_total", "2xx responses.", &self.ok),
            (
                "lcdd_gateway_client_error_total",
                "4xx responses.",
                &self.client_error,
            ),
            (
                "lcdd_gateway_server_error_total",
                "5xx responses.",
                &self.server_error,
            ),
            (
                "lcdd_gateway_rejected_queue_full_total",
                "503s from admission-queue overflow.",
                &self.rejected_queue_full,
            ),
            (
                "lcdd_gateway_rejected_connections_total",
                "503s from the connection cap.",
                &self.rejected_connections,
            ),
            (
                "lcdd_gateway_rejected_shutdown_total",
                "503s refused during drain.",
                &self.rejected_shutdown,
            ),
            (
                "lcdd_gateway_expired_total",
                "504s answered for jobs that expired in queue.",
                &self.expired,
            ),
            (
                "lcdd_gateway_stale_rejected_total",
                "412s from staleness-contract failures.",
                &self.stale_rejected,
            ),
            (
                "lcdd_gateway_jobs_enqueued_total",
                "Searches admitted to the batcher queue.",
                &self.jobs_enqueued,
            ),
            (
                "lcdd_gateway_jobs_answered_total",
                "Batcher replies sent (equals enqueued after a drain).",
                &self.jobs_answered,
            ),
            (
                "lcdd_gateway_batches_total",
                "Coalesced search_batch calls.",
                &self.batches,
            ),
            (
                "lcdd_gateway_batched_requests_total",
                "Requests answered by coalesced calls.",
                &self.batched_requests,
            ),
            (
                "lcdd_gateway_deduped_requests_total",
                "Requests answered by a batch-mate's computation.",
                &self.deduped_requests,
            ),
        ] {
            w.counter(name, help, c.get());
        }
        w.gauge(
            "lcdd_gateway_queue_depth",
            "Jobs waiting in the admission queue.",
            self.queue_depth.get(),
        );
        w.gauge(
            "lcdd_gateway_queue_high_water",
            "Deepest the admission queue has been.",
            self.queue_high_water.get(),
        );
        w.gauge(
            "lcdd_gateway_queue_capacity",
            "Admission-queue capacity.",
            queue_capacity as u64,
        );
        w.summary(
            "lcdd_gateway_batch_size",
            "Coalesced batch sizes.",
            &self.batch_sizes,
        );
        w.summary(
            "lcdd_gateway_search_latency_ns",
            "Search service time (queue wait subtracted), ns.",
            &self.search_latency,
        );
        w.summary_windowed(
            "lcdd_gateway_search_latency_recent_ns",
            "Search service time over the last ~60s, ns.",
            &self.search_latency_60s,
        );
        w.summary(
            "lcdd_gateway_queue_wait_ns",
            "Admission-queue wait, ns.",
            &self.queue_wait,
        );
        w.summary_windowed(
            "lcdd_gateway_queue_wait_recent_ns",
            "Admission-queue wait over the last ~60s, ns.",
            &self.queue_wait_60s,
        );
        // Engine tier behind this gateway (cache + residency + quantized
        // pipeline). Per-gateway, not in the global registry: one process
        // can serve several engines.
        w.gauge(
            "lcdd_engine_epoch",
            "Published corpus epoch.",
            backend.epoch(),
        );
        w.gauge(
            "lcdd_engine_tables",
            "Tables in the published snapshot.",
            backend.tables() as u64,
        );
        w.gauge(
            "lcdd_engine_shards",
            "Shards in the published snapshot.",
            backend.shards() as u64,
        );
        w.gauge(
            "lcdd_engine_resident_tables",
            "Tables resident in the hot tier.",
            tier.resident_tables,
        );
        w.gauge(
            "lcdd_engine_mapped_tables",
            "Tables served from mmap'd segments.",
            tier.mapped_tables,
        );
        w.gauge(
            "lcdd_engine_resident_bytes",
            "Hot-tier resident bytes.",
            tier.resident_bytes,
        );
        w.gauge(
            "lcdd_engine_mapped_bytes",
            "Cold-tier mapped bytes.",
            tier.mapped_bytes,
        );
        w.counter(
            "lcdd_engine_slots_paged_in_total",
            "Cold-tier slots paged in for scoring.",
            tier.slots_paged_in,
        );
        w.counter(
            "lcdd_engine_bytes_paged_in_total",
            "Cold-tier bytes paged in for scoring.",
            tier.bytes_paged_in,
        );
        w.counter(
            "lcdd_engine_quant_scanned_total",
            "Candidates proxy-scored by the int8 scan.",
            self.quant_scanned.get(),
        );
        w.counter(
            "lcdd_engine_reranked_total",
            "Candidates surviving into the exact re-rank.",
            self.reranked.get(),
        );
        w.counter(
            "lcdd_engine_cache_hits_total",
            "Query-cache hits.",
            cache.hits,
        );
        w.counter(
            "lcdd_engine_cache_misses_total",
            "Query-cache misses.",
            cache.misses,
        );
        w.counter(
            "lcdd_engine_cache_evictions_total",
            "Query-cache evictions.",
            cache.evictions,
        );
        w.gauge(
            "lcdd_engine_cache_len",
            "Query-cache entries.",
            cache.len as u64,
        );
        w.gauge(
            "lcdd_engine_ivf_nprobe",
            "IVF probe width in effect.",
            backend.ivf_nprobe() as u64,
        );
        // Span ring health.
        let ring = lcdd_obs::trace::ring();
        w.counter(
            "lcdd_trace_spans_recorded_total",
            "Spans recorded into the ring.",
            ring.recorded(),
        );
        w.counter(
            "lcdd_trace_spans_dropped_total",
            "Spans dropped to writer collisions.",
            ring.dropped(),
        );
        w.gauge(
            "lcdd_trace_ring_capacity",
            "Span-ring capacity.",
            ring.capacity() as u64,
        );
        // Everything the store/repl/pool layers registered process-wide.
        w.registry(lcdd_obs::registry::global());
        w.finish()
    }
}

/// Registers the process-wide instruments the gateway can vouch for but
/// that belong to no single request: the scoring work pool. Idempotent —
/// every `Server::start` calls it, the first wins.
pub fn register_process_instruments() {
    let registry = lcdd_obs::registry::global();
    registry.gauge_fn(
        "lcdd_pool_threads",
        "Worker threads in the scoring pool.",
        || lcdd_tensor::pool::num_threads() as u64,
    );
    registry.gauge_fn(
        "lcdd_pool_tasks",
        "Tasks executed by the scoring pool (monotone).",
        lcdd_tensor::pool::tasks_executed,
    );
}
