//! The gateway's observability counters, all lock-free: plain relaxed
//! atomics plus two [`Histogram`]s (search latency, coalesced batch
//! size). A `/metrics` scrape reads a relaxed snapshot — it never takes a
//! lock the serving path could contend on, and the backend side
//! contributes only the engine's own atomic cache/epoch getters.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use crate::backend::Backend;
use crate::latency::Histogram;

/// All gateway counters. Field groups mirror the `/metrics` JSON schema
/// documented in the README.
pub struct Metrics {
    start: Instant,
    // Requests routed, per endpoint.
    pub search: AtomicU64,
    pub insert: AtomicU64,
    pub remove: AtomicU64,
    pub healthz: AtomicU64,
    pub metrics: AtomicU64,
    pub snapshot: AtomicU64,
    // Response classes.
    pub ok: AtomicU64,
    pub client_error: AtomicU64,
    pub server_error: AtomicU64,
    pub rejected_queue_full: AtomicU64,
    pub rejected_connections: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub expired: AtomicU64,
    pub stale_rejected: AtomicU64,
    // Batcher accounting. `jobs_enqueued == jobs_answered` after a drain
    // is the no-lost-request invariant the shutdown test asserts.
    pub jobs_enqueued: AtomicU64,
    pub jobs_answered: AtomicU64,
    pub queue_depth: AtomicU64,
    pub queue_high_water: AtomicU64,
    // Coalescing.
    pub batches: AtomicU64,
    pub batched_requests: AtomicU64,
    pub deduped_requests: AtomicU64,
    pub batch_sizes: Histogram,
    /// End-to-end `/search` handling latency (parse → response built), ns.
    pub search_latency: Histogram,
    // Quantized-scan pipeline: candidates proxy-scored by the int8 scan
    // vs candidates that survived into the exact f32 re-rank, summed over
    // every answered search that used `rerank`.
    pub quant_scanned: AtomicU64,
    pub reranked: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh counters; `start` anchors the qps/uptime computation.
    pub fn new() -> Self {
        Metrics {
            start: Instant::now(),
            search: AtomicU64::new(0),
            insert: AtomicU64::new(0),
            remove: AtomicU64::new(0),
            healthz: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            snapshot: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            client_error: AtomicU64::new(0),
            server_error: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_connections: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            stale_rejected: AtomicU64::new(0),
            jobs_enqueued: AtomicU64::new(0),
            jobs_answered: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            deduped_requests: AtomicU64::new(0),
            batch_sizes: Histogram::new(),
            search_latency: Histogram::new(),
            quant_scanned: AtomicU64::new(0),
            reranked: AtomicU64::new(0),
        }
    }

    /// Classifies a response status into the ok/4xx/5xx counters (the
    /// dedicated 503/504/412 counters are bumped at their decision
    /// points, not here).
    pub fn count_status(&self, status: u16) {
        match status {
            200..=299 => self.ok.fetch_add(1, Relaxed),
            400..=499 => self.client_error.fetch_add(1, Relaxed),
            _ => self.server_error.fetch_add(1, Relaxed),
        };
    }

    /// Updates the queue-depth gauge (and its high-water mark).
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Relaxed);
        self.queue_high_water.fetch_max(depth, Relaxed);
    }

    /// Renders the `/metrics` JSON document.
    pub fn to_json(&self, backend: &Backend, queue_capacity: usize, draining: bool) -> String {
        let uptime_s = self.start.elapsed().as_secs_f64().max(1e-9);
        let searches = self.search.load(Relaxed);
        let lat = &self.search_latency;
        let bs = &self.batch_sizes;
        let cache = backend.cache_stats();
        let tier = backend.tier_stats();
        let batches = self.batches.load(Relaxed);
        let batched = self.batched_requests.load(Relaxed);
        let mean_batch = if batches == 0 {
            0.0
        } else {
            batched as f64 / batches as f64
        };
        format!(
            concat!(
                "{{",
                "\"uptime_s\":{uptime},",
                "\"draining\":{draining},",
                "\"epoch\":{epoch},",
                "\"tables\":{tables},",
                "\"qps\":{qps},",
                "\"requests\":{{\"search\":{search},\"insert\":{insert},\"remove\":{remove},",
                "\"healthz\":{healthz},\"metrics\":{metricsc},\"snapshot\":{snapshot}}},",
                "\"responses\":{{\"ok\":{ok},\"client_error\":{cerr},\"server_error\":{serr},",
                "\"rejected_503\":{r503},\"rejected_connections\":{rconn},",
                "\"rejected_shutdown\":{rshut},\"expired_504\":{exp},\"stale_412\":{stale}}},",
                "\"latency_us\":{{\"count\":{lcount},\"mean\":{lmean},\"p50\":{p50},",
                "\"p95\":{p95},\"p99\":{p99},\"max\":{lmax}}},",
                "\"queue\":{{\"depth\":{qdepth},\"capacity\":{qcap},\"high_water\":{qhw}}},",
                "\"jobs\":{{\"enqueued\":{jenq},\"answered\":{jans}}},",
                "\"coalescing\":{{\"batches\":{batches},\"requests\":{breq},",
                "\"deduped\":{dedup},\"mean_batch\":{meanb},\"p95_batch\":{p95b},",
                "\"max_batch\":{maxb}}},",
                "\"cache\":{{\"hits\":{chits},\"misses\":{cmiss},\"evictions\":{cevict},",
                "\"len\":{clen}}},",
                "\"tier\":{{\"resident_tables\":{trt},\"mapped_tables\":{tmt},",
                "\"resident_bytes\":{trb},\"mapped_bytes\":{tmb},",
                "\"slots_paged_in\":{tspi},\"bytes_paged_in\":{tbpi},",
                "\"quant_scanned\":{tqs},\"reranked\":{trr},",
                "\"ivf_nprobe\":{tnp}}}",
                "}}"
            ),
            uptime = crate::json::num(uptime_s),
            draining = draining,
            epoch = backend.epoch(),
            tables = backend.tables(),
            qps = crate::json::num(searches as f64 / uptime_s),
            search = searches,
            insert = self.insert.load(Relaxed),
            remove = self.remove.load(Relaxed),
            healthz = self.healthz.load(Relaxed),
            metricsc = self.metrics.load(Relaxed),
            snapshot = self.snapshot.load(Relaxed),
            ok = self.ok.load(Relaxed),
            cerr = self.client_error.load(Relaxed),
            serr = self.server_error.load(Relaxed),
            r503 = self.rejected_queue_full.load(Relaxed),
            rconn = self.rejected_connections.load(Relaxed),
            rshut = self.rejected_shutdown.load(Relaxed),
            exp = self.expired.load(Relaxed),
            stale = self.stale_rejected.load(Relaxed),
            lcount = lat.count(),
            lmean = crate::json::num(lat.mean() / 1_000.0),
            p50 = lat.percentile(0.50) / 1_000,
            p95 = lat.percentile(0.95) / 1_000,
            p99 = lat.percentile(0.99) / 1_000,
            lmax = lat.max() / 1_000,
            qdepth = self.queue_depth.load(Relaxed),
            qcap = queue_capacity,
            qhw = self.queue_high_water.load(Relaxed),
            jenq = self.jobs_enqueued.load(Relaxed),
            jans = self.jobs_answered.load(Relaxed),
            batches = batches,
            breq = batched,
            dedup = self.deduped_requests.load(Relaxed),
            meanb = crate::json::num(mean_batch),
            p95b = bs.percentile(0.95),
            maxb = bs.max(),
            chits = cache.hits,
            cmiss = cache.misses,
            cevict = cache.evictions,
            clen = cache.len,
            trt = tier.resident_tables,
            tmt = tier.mapped_tables,
            trb = tier.resident_bytes,
            tmb = tier.mapped_bytes,
            tspi = tier.slots_paged_in,
            tbpi = tier.bytes_paged_in,
            tqs = self.quant_scanned.load(Relaxed),
            trr = self.reranked.load(Relaxed),
            tnp = backend.ivf_nprobe(),
        )
    }
}
