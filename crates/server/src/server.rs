//! The gateway itself: a blocking acceptor over `std::net::TcpListener`,
//! one handler thread per admitted connection (bounded by
//! `max_connections` — the connection-level half of admission control),
//! and the coalescing [`Batcher`] in between handlers and the engine.
//!
//! Shutdown is a drain, not an abort: admission stops, the batcher
//! answers everything already queued, handlers finish the request they
//! are reading, and [`Server::shutdown`] joins every thread before
//! reporting `jobs_enqueued == jobs_answered`.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use lcdd_obs::trace::{next_span_id, ring, slow, Stage, TraceCtx, TraceId};

use crate::backend::Backend;
use crate::batcher::{Batcher, JobReply, Submit};
use crate::error::ApiError;
use crate::http::{read_request, write_response, write_response_typed, ReadError, Request};
use crate::metrics::Metrics;
use crate::wire;

/// Gateway tuning knobs. The defaults suit the integration tests; a real
/// deployment mostly raises `max_connections` and the queue.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Most simultaneously-open client connections; the acceptor answers
    /// 503 and closes beyond this.
    pub max_connections: usize,
    /// Bounded batcher admission queue (overflow → 503 `queue_full`).
    pub queue_capacity: usize,
    /// Most requests coalesced into one `search_batch` call (1 disables
    /// coalescing — the bench baseline).
    pub max_batch: usize,
    /// Deadline applied when a request does not set one.
    pub default_deadline_ms: u64,
    /// Hard cap on requested deadlines.
    pub max_deadline_ms: u64,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Socket read timeout — also the latency with which idle keep-alive
    /// handlers notice a drain.
    pub read_timeout_ms: u64,
    /// Record per-stage spans for every `/search` (and mint/echo
    /// `x-lcdd-trace-id`). Recording is lock-free and allocation-free;
    /// the bench's tracing-overhead section keeps this honest.
    pub tracing: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 256,
            queue_capacity: 1024,
            max_batch: 64,
            default_deadline_ms: 2_000,
            max_deadline_ms: 30_000,
            max_body_bytes: 4 << 20,
            read_timeout_ms: 2_000,
            tracing: true,
        }
    }
}

/// What [`Server::shutdown`] reports after the drain completes.
#[derive(Clone, Copy, Debug)]
pub struct ShutdownReport {
    /// Searches ever admitted to the batcher queue.
    pub jobs_enqueued: u64,
    /// Replies the batcher sent. Equal to `jobs_enqueued` after a clean
    /// drain — the no-lost-request invariant.
    pub jobs_answered: u64,
}

struct Shared {
    backend: Arc<Backend>,
    cfg: ServerConfig,
    metrics: Arc<Metrics>,
    batcher: Arc<Batcher>,
    draining: AtomicBool,
    active_connections: AtomicUsize,
    started: Instant,
}

/// A running gateway; dropping it without calling
/// [`Server::shutdown`] leaves the threads serving.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    batcher_thread: Option<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the acceptor and batcher threads, and returns once
    /// the gateway is reachable.
    pub fn start(backend: Backend, cfg: ServerConfig) -> std::io::Result<Server> {
        crate::metrics::register_process_instruments();
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let backend = Arc::new(backend);
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            Arc::clone(&backend),
            Arc::clone(&metrics),
            cfg.queue_capacity,
            cfg.max_batch,
        );
        let batcher_thread = batcher.spawn();
        let shared = Arc::new(Shared {
            backend,
            cfg,
            metrics,
            batcher,
            draining: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            started: Instant::now(),
        });
        let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("lcdd-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads))
                .expect("spawn acceptor thread")
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            batcher_thread: Some(batcher_thread),
            conn_threads,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The gateway's live counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// Drains and stops: no new admissions, every queued search answered,
    /// every thread joined.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shared.draining.store(true, Relaxed);
        self.shared.batcher.begin_shutdown();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; it checks the drain flag before serving it.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        if let Some(t) = self.batcher_thread.take() {
            let _ = t.join();
        }
        let threads = std::mem::take(
            &mut *self
                .conn_threads
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for t in threads {
            let _ = t.join();
        }
        ShutdownReport {
            jobs_enqueued: self.shared.metrics.jobs_enqueued.get(),
            jobs_answered: self.shared.metrics.jobs_answered.get(),
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.draining.load(Relaxed) {
                return;
            }
            continue;
        };
        if shared.draining.load(Relaxed) {
            // The shutdown wake-up connection (or a straggler): refuse
            // politely and stop accepting.
            let mut stream = stream;
            let e = ApiError::shutting_down();
            let _ = write_response(&mut stream, e.status, &[], &e.body(), true);
            return;
        }
        if shared.active_connections.load(Relaxed) >= shared.cfg.max_connections {
            shared.metrics.rejected_connections.inc();
            let mut stream = stream;
            let e = ApiError::queue_full(shared.cfg.max_connections);
            let _ = write_response(&mut stream, e.status, &extra_headers(&e), &e.body(), true);
            continue;
        }
        shared.active_connections.fetch_add(1, Relaxed);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("lcdd-conn".into())
            .spawn(move || {
                serve_connection(stream, &conn_shared);
                conn_shared.active_connections.fetch_sub(1, Relaxed);
            });
        match spawned {
            Ok(handle) => {
                let mut threads = conn_threads.lock().unwrap_or_else(PoisonError::into_inner);
                // Reap finished handlers so the vector stays bounded on
                // long-running servers.
                threads.retain(|t| !t.is_finished());
                threads.push(handle);
            }
            Err(_) => {
                shared.active_connections.fetch_sub(1, Relaxed);
            }
        }
    }
}

/// One keep-alive connection, served to completion.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let timeout = Duration::from_millis(shared.cfg.read_timeout_ms.max(1));
    if stream.set_read_timeout(Some(timeout)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(req) => {
                let close = req.wants_close() || shared.draining.load(Relaxed);
                let served = handle_request(&req, shared, &mut write_half, close);
                if close || served.is_err() {
                    return;
                }
            }
            Err(ReadError::Eof) => return,
            Err(ReadError::Timeout) => {
                // Idle keep-alive: linger unless the server is draining.
                if shared.draining.load(Relaxed) {
                    return;
                }
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                let e = ApiError::bad_request("malformed_request", msg);
                shared.metrics.count_status(e.status);
                let _ = write_response(&mut write_half, e.status, &[], &e.body(), true);
                return;
            }
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let e = ApiError::bad_request(
                    "body_too_large",
                    format!("declared body of {declared} bytes exceeds the {limit}-byte limit"),
                );
                shared.metrics.count_status(e.status);
                let _ = write_response(&mut write_half, e.status, &[], &e.body(), true);
                return;
            }
        }
    }
}

/// Headers an [`ApiError`] carries onto the wire.
fn extra_headers(e: &ApiError) -> Vec<(&'static str, String)> {
    let mut out = Vec::new();
    if let Some(s) = e.retry_after_s {
        out.push(("Retry-After", s.to_string()));
    }
    if let Some(epoch) = e.current_epoch {
        out.push(("x-lcdd-epoch", epoch.to_string()));
    }
    out
}

fn respond_error(
    stream: &mut TcpStream,
    shared: &Shared,
    e: &ApiError,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.count_status(e.status);
    write_response(stream, e.status, &extra_headers(e), &e.body(), close)
}

fn respond_ok(
    stream: &mut TcpStream,
    shared: &Shared,
    extra: &[(&str, String)],
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.count_status(200);
    write_response(stream, 200, extra, body, close)
}

/// Routes one parsed request. An `Err` return means the response could
/// not be written — the connection is torn down.
fn handle_request(
    req: &Request,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/search") => handle_search(req, shared, stream, close),
        ("POST", "/insert") => handle_insert(req, shared, stream, close),
        ("POST", "/remove") => handle_remove(req, shared, stream, close),
        ("GET", "/healthz") => handle_healthz(shared, stream, close),
        ("GET", "/metrics") => handle_metrics(req, shared, stream, close),
        ("GET", path) if path.starts_with("/snapshot/") => {
            handle_snapshot(path, shared, stream, close)
        }
        ("GET", path) if path.starts_with("/debug/trace/") => {
            handle_trace(path, shared, stream, close)
        }
        ("GET", "/debug/slow") => handle_slow(req, shared, stream, close),
        ("GET", "/") => {
            let body = format!(
                "{{\"service\":\"lcdd-server\",\"backend\":{},\"endpoints\":[\"POST /search\",\"POST /insert\",\"POST /remove\",\"GET /healthz\",\"GET /metrics\",\"GET /snapshot/{{epoch}}\"]}}",
                crate::json::quote(shared.backend.kind()),
            );
            respond_ok(stream, shared, &[], &body, close)
        }
        (_, path @ ("/search" | "/insert" | "/remove" | "/healthz" | "/metrics" | "/")) => {
            respond_error(
                stream,
                shared,
                &ApiError::method_not_allowed(&req.method, path),
                close,
            )
        }
        (_, path) => respond_error(stream, shared, &ApiError::not_found(path), close),
    }
}

fn handle_search(
    req: &Request,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.search.inc();
    let started = Instant::now();
    // Trace identity: accept the caller's `x-lcdd-trace-id` (echoed back)
    // or mint one. The root span and the handler's `await` span get
    // pre-minted ids so children recorded by the batcher and engine —
    // which finish before the parents are recorded — can nest under them.
    let trace = if shared.cfg.tracing {
        Some(
            req.header("x-lcdd-trace-id")
                .and_then(TraceId::parse)
                .unwrap_or_else(TraceId::mint),
        )
    } else {
        None
    };
    let root_id = trace.map_or(0, |_| next_span_id());
    let parsed = match wire::parse_search(
        req,
        shared.cfg.default_deadline_ms,
        shared.cfg.max_deadline_ms,
    ) {
        Ok(p) => p,
        Err(e) => return respond_error(stream, shared, &e, close),
    };
    if let Some(t) = trace {
        ring().record(
            t,
            root_id,
            Stage::Parse,
            started,
            started.elapsed(),
            None,
            0,
        );
    }
    let deadline = started + parsed.deadline;
    let await_id = trace.map_or(0, |_| next_span_id());
    let ctx = trace.map(|t| TraceCtx {
        trace: t,
        parent: await_id,
    });
    let await_start = Instant::now();
    let submitted = shared.batcher.submit(
        parsed.query,
        parsed.opts,
        parsed.consistency,
        deadline,
        parsed.deadline_ms,
        ctx,
    );
    let rx = match submitted {
        Submit::Enqueued(rx) => rx,
        Submit::QueueFull => {
            shared.metrics.rejected_queue_full.inc();
            return respond_error(
                stream,
                shared,
                &ApiError::queue_full(shared.cfg.queue_capacity),
                close,
            );
        }
        Submit::ShuttingDown => {
            shared.metrics.rejected_shutdown.inc();
            return respond_error(stream, shared, &ApiError::shutting_down(), close);
        }
    };
    // The batcher answers every admitted job, including expired ones; the
    // extra grace only guards against a wedged batcher thread.
    let grace = parsed.deadline + Duration::from_secs(1);
    let reply = rx.recv_timeout(grace);
    let awaited = await_start.elapsed();
    if let Some(t) = trace {
        ring().record_with_id(
            t,
            await_id,
            root_id,
            Stage::Await,
            await_start,
            awaited,
            None,
            0,
        );
    }
    let serialize_start = Instant::now();
    let (result, queue_wait_ns) = match reply {
        Ok(JobReply::Ok {
            resp,
            batch_id,
            batch_size,
            batch_unique,
            queue_wait_ns,
        }) => {
            let body = wire::search_body(&resp, batch_id, batch_size, batch_unique);
            let mut extra = vec![
                ("x-lcdd-epoch", resp.epoch.to_string()),
                ("x-lcdd-batch-id", batch_id.to_string()),
            ];
            if let Some(t) = trace {
                extra.push(("x-lcdd-trace-id", t.to_hex()));
            }
            (
                respond_ok(stream, shared, &extra, &body, close),
                queue_wait_ns,
            )
        }
        Ok(JobReply::Err(e)) => (respond_error(stream, shared, &e, close), 0),
        Err(_) => (
            respond_error(
                stream,
                shared,
                &ApiError::deadline_exceeded(parsed.deadline_ms),
                close,
            ),
            0,
        ),
    };
    let total = started.elapsed();
    if let Some(t) = trace {
        ring().record(
            t,
            root_id,
            Stage::Serialize,
            serialize_start,
            serialize_start.elapsed(),
            None,
            0,
        );
        ring().record_with_id(t, root_id, 0, Stage::Request, started, total, None, 0);
        slow().observe(u64::try_from(total.as_nanos()).unwrap_or(u64::MAX), t);
    }
    // Service time excludes the admission-queue wait (recorded separately
    // by the batcher), so queue pressure does not read as scoring cost.
    let total_ns = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
    shared
        .metrics
        .record_service_time(total_ns.saturating_sub(queue_wait_ns));
    result
}

/// `GET /debug/trace/{id}`: replays every retained span of a trace from
/// the ring as a JSON span tree, ordered by start offset.
fn handle_trace(
    path: &str,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.debug.inc();
    let raw = path.trim_start_matches("/debug/trace/");
    let Some(trace) = TraceId::parse(raw) else {
        return respond_error(
            stream,
            shared,
            &ApiError::bad_request("invalid_trace_id", format!("'{raw}' is not a hex trace id")),
            close,
        );
    };
    let spans = ring().replay(trace);
    if spans.is_empty() {
        let e = ApiError {
            status: 404,
            code: "trace_not_found",
            message: format!(
                "trace {} has no retained spans (never recorded, or evicted from the ring)",
                trace.to_hex()
            ),
            retry_after_s: None,
            current_epoch: None,
        };
        return respond_error(stream, shared, &e, close);
    }
    let mut body = format!(
        "{{\"trace\":{},\"spans\":[",
        crate::json::quote(&trace.to_hex())
    );
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"stage\":{},\"start_ns\":{},\"dur_ns\":{},\"link\":{},\"meta\":{}}}",
            s.id,
            s.parent,
            crate::json::quote(s.stage.name()),
            s.start_ns,
            s.dur_ns,
            match s.link {
                Some(l) => crate::json::quote(&l.to_hex()),
                None => "null".to_string(),
            },
            s.meta,
        ));
    }
    body.push_str("]}");
    respond_ok(stream, shared, &[], &body, close)
}

/// `GET /debug/slow?n=N`: the up-to-N slowest traced requests (default
/// 10), slowest first, plus span-ring health.
fn handle_slow(
    req: &Request,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.debug.inc();
    let n = req
        .query
        .split('&')
        .find_map(|kv| kv.strip_prefix("n="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10);
    let mut body = String::from("{\"slowest\":[");
    for (i, (trace, total_ns)) in slow().slowest(n).into_iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "{{\"trace\":{},\"total_ns\":{total_ns}}}",
            crate::json::quote(&trace.to_hex()),
        ));
    }
    let ring = ring();
    body.push_str(&format!(
        "],\"ring\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}}}}",
        ring.recorded(),
        ring.dropped(),
        ring.capacity(),
    ));
    respond_ok(stream, shared, &[], &body, close)
}

fn handle_insert(
    req: &Request,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.insert.inc();
    if shared.draining.load(Relaxed) {
        shared.metrics.rejected_shutdown.inc();
        return respond_error(stream, shared, &ApiError::shutting_down(), close);
    }
    let tables = match wire::parse_insert(req) {
        Ok(t) => t,
        Err(e) => return respond_error(stream, shared, &e, close),
    };
    match shared.backend.insert(tables) {
        Ok((epoch, positions)) => {
            let body = wire::insert_body(epoch, &positions);
            let extra = vec![("x-lcdd-epoch", epoch.to_string())];
            respond_ok(stream, shared, &extra, &body, close)
        }
        Err(e) => respond_error(stream, shared, &e, close),
    }
}

fn handle_remove(
    req: &Request,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.remove.inc();
    if shared.draining.load(Relaxed) {
        shared.metrics.rejected_shutdown.inc();
        return respond_error(stream, shared, &ApiError::shutting_down(), close);
    }
    let ids = match wire::parse_remove(req) {
        Ok(ids) => ids,
        Err(e) => return respond_error(stream, shared, &e, close),
    };
    match shared.backend.remove(&ids) {
        Ok((epoch, removed)) => {
            let body = wire::remove_body(epoch, removed);
            let extra = vec![("x-lcdd-epoch", epoch.to_string())];
            respond_ok(stream, shared, &extra, &body, close)
        }
        Err(e) => respond_error(stream, shared, &e, close),
    }
}

fn handle_healthz(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.healthz.inc();
    let backend = &shared.backend;
    let draining = shared.draining.load(Relaxed);
    let mut body = format!(
        "{{\"status\":{},\"backend\":{},\"epoch\":{},\"tables\":{},\"shards\":{},\"uptime_s\":{}",
        crate::json::quote(if draining { "draining" } else { "ok" }),
        crate::json::quote(backend.kind()),
        backend.epoch(),
        backend.tables(),
        backend.shards(),
        crate::json::num(shared.started.elapsed().as_secs_f64()),
    );
    let tier = backend.tier_stats();
    body.push_str(&format!(
        ",\"tier\":{{\"resident_tables\":{},\"mapped_tables\":{}}}",
        tier.resident_tables, tier.mapped_tables,
    ));
    if let Some(wal) = backend.wal_len() {
        body.push_str(&format!(",\"wal_bytes\":{wal}"));
        match backend.last_checkpoint_error() {
            Some(e) => body.push_str(&format!(",\"checkpoint_error\":{}", crate::json::quote(&e))),
            None => body.push_str(",\"checkpoint_error\":null"),
        }
    }
    if let Some((leader_epoch_seen, lag, quarantine)) = backend.replica_health() {
        body.push_str(&format!(
            ",\"replica\":{{\"leader_epoch_seen\":{leader_epoch_seen},\"lag\":{lag},\"quarantined\":{}}}",
            match quarantine {
                Some(reason) => crate::json::quote(&reason),
                None => "null".to_string(),
            }
        ));
    }
    body.push('}');
    respond_ok(stream, shared, &[], &body, close)
}

/// `GET /metrics`: JSON by default; `Accept: text/plain` negotiates the
/// Prometheus text exposition (version 0.0.4).
fn handle_metrics(
    req: &Request,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.metrics.inc();
    let draining = shared.draining.load(Relaxed);
    let wants_prometheus = req
        .header("accept")
        .is_some_and(|a| a.contains("text/plain"));
    if wants_prometheus {
        let body =
            shared
                .metrics
                .to_prometheus(&shared.backend, shared.cfg.queue_capacity, draining);
        shared.metrics.count_status(200);
        return write_response_typed(
            stream,
            200,
            lcdd_obs::prometheus::CONTENT_TYPE,
            &[],
            &body,
            close,
        );
    }
    let body = shared
        .metrics
        .to_json(&shared.backend, shared.cfg.queue_capacity, draining);
    respond_ok(stream, shared, &[], &body, close)
}

/// `GET /snapshot/{epoch}`: 200 when the published epoch matches, 410
/// for an epoch the corpus has moved past (the snapshot is gone — the
/// store keeps state, not history), 404 for an epoch not yet published.
fn handle_snapshot(
    path: &str,
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    close: bool,
) -> std::io::Result<()> {
    shared.metrics.snapshot.inc();
    let raw = path.trim_start_matches("/snapshot/");
    let Ok(requested) = raw.parse::<u64>() else {
        return respond_error(
            stream,
            shared,
            &ApiError::bad_request("invalid_epoch", format!("'{raw}' is not an epoch number")),
            close,
        );
    };
    let pin = shared.backend.pin();
    let current = pin.state.epoch();
    if requested == current {
        let body = format!(
            "{{\"epoch\":{current},\"tables\":{},\"shards\":{}}}",
            pin.state.len(),
            pin.state.shards().len(),
        );
        let extra = vec![("x-lcdd-epoch", current.to_string())];
        respond_ok(stream, shared, &extra, &body, close)
    } else if requested < current {
        let e = ApiError {
            status: 410,
            code: "epoch_gone",
            message: format!("epoch {requested} has been superseded by {current}"),
            retry_after_s: None,
            current_epoch: Some(current),
        };
        respond_error(stream, shared, &e, close)
    } else {
        let e = ApiError {
            status: 404,
            code: "epoch_not_published",
            message: format!("epoch {requested} is ahead of the published {current}"),
            retry_after_s: None,
            current_epoch: Some(current),
        };
        respond_error(stream, shared, &e, close)
    }
}
