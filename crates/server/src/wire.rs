//! Wire-schema validation and response rendering: the boundary where
//! untrusted JSON becomes typed engine inputs.
//!
//! Every limit here exists so that adversarial input maps to a typed 400
//! instead of a panic or an unbounded allocation: series/table/column
//! counts are capped, every number that reaches the engine is finite by
//! construction (the JSON parser already refuses `1e999`-style
//! overflows), ragged tables are refused before [`Table::new`] could
//! panic on them, and conflicting consistency contracts are an error
//! rather than a silent pick.

use std::time::Duration;

use lcdd_engine::{Query, SearchOptions, SearchResponse};
use lcdd_index::IndexStrategy;
use lcdd_table::{Column, Table};

use crate::backend::Consistency;
use crate::error::ApiError;
use crate::http::Request;
use crate::json::{self, opt_usize, quote, Json};

/// Most series one sketch query may carry.
pub const MAX_SERIES: usize = 16;
/// Fewest points a series needs to describe a line.
pub const MIN_SERIES_LEN: usize = 2;
/// Most points accepted per series.
pub const MAX_SERIES_LEN: usize = 65_536;
/// Largest accepted `k`.
pub const MAX_K: usize = 1_000;

/// Upper bound on the `rerank` depth (exact re-rank survivors of the
/// quantized candidate scan) a request may ask for.
pub const MAX_RERANK: usize = 100_000;
/// Most tables per `/insert` call.
pub const MAX_TABLES: usize = 1_024;
/// Most columns per inserted table.
pub const MAX_COLUMNS: usize = 32;
/// Most rows per inserted column.
pub const MAX_ROWS: usize = 65_536;
/// Most ids per `/remove` call.
pub const MAX_REMOVE_IDS: usize = 4_096;

/// A validated `/search` request, ready for the batcher.
#[derive(Debug)]
pub struct SearchRequest {
    pub query: Query,
    pub opts: SearchOptions,
    pub consistency: Consistency,
    /// Validated, clamped deadline.
    pub deadline: Duration,
    pub deadline_ms: u64,
}

fn bad(code: &'static str, message: impl Into<String>) -> ApiError {
    ApiError::bad_request(code, message)
}

/// Parses the request body as a JSON object.
fn parse_object(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| bad("invalid_json", "request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(bad("invalid_json", "request body is empty"));
    }
    let v = json::parse(text).map_err(|e| bad("invalid_json", e))?;
    match v {
        Json::Obj(_) => Ok(v),
        _ => Err(bad("invalid_json", "request body must be a JSON object")),
    }
}

/// A `u64` field, from a header override first, then the body.
fn u64_field(
    req: &Request,
    body: &Json,
    header: &str,
    field: &str,
) -> Result<Option<u64>, ApiError> {
    if let Some(raw) = req.header(header) {
        return raw.parse::<u64>().map(Some).map_err(|_| {
            bad(
                "invalid_header",
                format!("header {header} must be a non-negative integer, got '{raw}'"),
            )
        });
    }
    match body.get(field) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            bad(
                "invalid_field",
                format!("'{field}' must be a non-negative integer"),
            )
        }),
    }
}

/// Validates one `POST /search` request (body plus `x-lcdd-*` header
/// overrides) into a typed [`SearchRequest`].
pub fn parse_search(
    req: &Request,
    default_deadline_ms: u64,
    max_deadline_ms: u64,
) -> Result<SearchRequest, ApiError> {
    let body = parse_object(&req.body)?;

    // --- query series ---
    let series_v = body.get("series").ok_or_else(|| {
        bad(
            "missing_series",
            "'series' is required: an array of numeric arrays",
        )
    })?;
    let outer = series_v.as_arr().ok_or_else(|| {
        bad(
            "invalid_series",
            "'series' must be an array of numeric arrays",
        )
    })?;
    if outer.is_empty() {
        return Err(bad(
            "invalid_series",
            "'series' must contain at least one series",
        ));
    }
    if outer.len() > MAX_SERIES {
        return Err(bad(
            "invalid_series",
            format!("at most {MAX_SERIES} series per query, got {}", outer.len()),
        ));
    }
    let mut series: Vec<Vec<f64>> = Vec::with_capacity(outer.len());
    for (i, s) in outer.iter().enumerate() {
        let vals = s.as_arr().ok_or_else(|| {
            bad(
                "invalid_series",
                format!("series[{i}] must be an array of numbers"),
            )
        })?;
        if vals.len() < MIN_SERIES_LEN || vals.len() > MAX_SERIES_LEN {
            return Err(bad(
                "invalid_series",
                format!(
                    "series[{i}] has {} points; accepted range is {MIN_SERIES_LEN}..={MAX_SERIES_LEN}",
                    vals.len()
                ),
            ));
        }
        let mut out = Vec::with_capacity(vals.len());
        for (j, v) in vals.iter().enumerate() {
            // The parser already refused non-finite numbers; a non-number
            // here is a type error.
            let f = v.as_f64().ok_or_else(|| {
                bad(
                    "invalid_series",
                    format!("series[{i}][{j}] is not a number"),
                )
            })?;
            out.push(f);
        }
        series.push(out);
    }

    // --- options ---
    let k = match body.get("k") {
        None | Some(Json::Null) => SearchOptions::default().k,
        Some(v) => {
            let k = v
                .as_u64()
                .ok_or_else(|| bad("invalid_k", "'k' must be a positive integer"))?;
            if k == 0 {
                return Err(bad("invalid_k", "'k' must be at least 1"));
            }
            if k > MAX_K as u64 {
                return Err(bad("invalid_k", format!("'k' must be at most {MAX_K}")));
            }
            k as usize
        }
    };
    let strategy = match body.get("strategy") {
        None | Some(Json::Null) => IndexStrategy::Hybrid,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| bad("invalid_strategy", "'strategy' must be a string"))?;
            match name {
                "hybrid" => IndexStrategy::Hybrid,
                "interval" => IndexStrategy::IntervalOnly,
                "lsh" => IndexStrategy::LshOnly,
                "none" => IndexStrategy::NoIndex,
                "ivf" => IndexStrategy::Ivf,
                other => {
                    return Err(bad(
                        "invalid_strategy",
                        format!(
                            "unknown strategy '{other}'; expected hybrid|interval|lsh|none|ivf"
                        ),
                    ))
                }
            }
        }
    };
    let min_score = match body.get("min_score") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let f = v
                .as_f64()
                .ok_or_else(|| bad("invalid_min_score", "'min_score' must be a number"))?;
            let f32v = f as f32;
            if !f32v.is_finite() {
                return Err(bad("invalid_min_score", "'min_score' overflows f32"));
            }
            Some(f32v)
        }
    };
    let rerank = match body.get("rerank") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let r = v
                .as_u64()
                .ok_or_else(|| bad("invalid_rerank", "'rerank' must be a positive integer"))?;
            if r == 0 {
                return Err(bad("invalid_rerank", "'rerank' must be at least 1"));
            }
            if r > MAX_RERANK as u64 {
                return Err(bad(
                    "invalid_rerank",
                    format!("'rerank' must be at most {MAX_RERANK}"),
                ));
            }
            Some(r as usize)
        }
    };
    let mut opts = SearchOptions::top_k(k).with_strategy(strategy);
    opts.min_score = min_score;
    opts.rerank = rerank;

    // --- deadline ---
    let deadline_ms = match u64_field(req, &body, "x-lcdd-deadline-ms", "deadline_ms")? {
        None => default_deadline_ms,
        Some(0) => return Err(bad("invalid_deadline", "'deadline_ms' must be at least 1")),
        Some(ms) => ms.min(max_deadline_ms),
    };

    // --- consistency ---
    let min_epoch = u64_field(req, &body, "x-lcdd-min-epoch", "min_epoch")?;
    let max_lag = u64_field(req, &body, "x-lcdd-max-lag", "max_lag")?;
    let consistency = match (min_epoch, max_lag) {
        (Some(_), Some(_)) => {
            return Err(bad(
                "conflicting_consistency",
                "set at most one of 'min_epoch' and 'max_lag'",
            ))
        }
        (Some(epoch), None) => Consistency::AtLeastEpoch(epoch),
        (None, Some(lag)) => Consistency::BoundedLag(lag),
        (None, None) => Consistency::Any,
    };

    Ok(SearchRequest {
        query: Query::from_series(series),
        opts,
        consistency,
        deadline: Duration::from_millis(deadline_ms),
        deadline_ms,
    })
}

/// Validates one `POST /insert` body into engine [`Table`]s. Ragged
/// tables are refused here — [`Table::new`] asserts on them, and network
/// input must never reach an assert.
pub fn parse_insert(req: &Request) -> Result<Vec<Table>, ApiError> {
    let body = parse_object(&req.body)?;
    let tables_v = body.get("tables").ok_or_else(|| {
        bad(
            "missing_tables",
            "'tables' is required: an array of table objects",
        )
    })?;
    let arr = tables_v
        .as_arr()
        .ok_or_else(|| bad("invalid_tables", "'tables' must be an array"))?;
    if arr.is_empty() || arr.len() > MAX_TABLES {
        return Err(bad(
            "invalid_tables",
            format!("1..={MAX_TABLES} tables per insert, got {}", arr.len()),
        ));
    }
    let mut tables = Vec::with_capacity(arr.len());
    for (t_idx, t) in arr.iter().enumerate() {
        let id = t.get("id").and_then(Json::as_u64).ok_or_else(|| {
            bad(
                "invalid_table",
                format!("tables[{t_idx}].id must be a non-negative integer"),
            )
        })?;
        let name = match t.get("name") {
            None | Some(Json::Null) => format!("table-{id}"),
            Some(v) => v
                .as_str()
                .ok_or_else(|| {
                    bad(
                        "invalid_table",
                        format!("tables[{t_idx}].name must be a string"),
                    )
                })?
                .to_string(),
        };
        let cols_v = t.get("columns").and_then(Json::as_arr).ok_or_else(|| {
            bad(
                "invalid_table",
                format!("tables[{t_idx}].columns must be an array"),
            )
        })?;
        if cols_v.is_empty() || cols_v.len() > MAX_COLUMNS {
            return Err(bad(
                "invalid_table",
                format!(
                    "tables[{t_idx}] must have 1..={MAX_COLUMNS} columns, got {}",
                    cols_v.len()
                ),
            ));
        }
        let mut columns: Vec<Column> = Vec::with_capacity(cols_v.len());
        let mut rows: Option<usize> = None;
        for (c_idx, c) in cols_v.iter().enumerate() {
            let cname = match c.get("name") {
                None | Some(Json::Null) => format!("c{c_idx}"),
                Some(v) => v
                    .as_str()
                    .ok_or_else(|| {
                        bad(
                            "invalid_table",
                            format!("tables[{t_idx}].columns[{c_idx}].name must be a string"),
                        )
                    })?
                    .to_string(),
            };
            let vals_v = c.get("values").and_then(Json::as_arr).ok_or_else(|| {
                bad(
                    "invalid_table",
                    format!("tables[{t_idx}].columns[{c_idx}].values must be an array"),
                )
            })?;
            if vals_v.is_empty() || vals_v.len() > MAX_ROWS {
                return Err(bad(
                    "invalid_table",
                    format!(
                        "tables[{t_idx}].columns[{c_idx}] must have 1..={MAX_ROWS} rows, got {}",
                        vals_v.len()
                    ),
                ));
            }
            match rows {
                None => rows = Some(vals_v.len()),
                Some(n) if n != vals_v.len() => {
                    return Err(bad(
                        "ragged_table",
                        format!(
                            "tables[{t_idx}] is ragged: column {c_idx} has {} rows, expected {n}",
                            vals_v.len()
                        ),
                    ))
                }
                Some(_) => {}
            }
            let mut values = Vec::with_capacity(vals_v.len());
            for (r, v) in vals_v.iter().enumerate() {
                values.push(v.as_f64().ok_or_else(|| {
                    bad(
                        "invalid_table",
                        format!("tables[{t_idx}].columns[{c_idx}].values[{r}] is not a number"),
                    )
                })?);
            }
            columns.push(Column::new(cname, values));
        }
        tables.push(Table::new(id, name, columns));
    }
    Ok(tables)
}

/// Validates one `POST /remove` body into table ids.
pub fn parse_remove(req: &Request) -> Result<Vec<u64>, ApiError> {
    let body = parse_object(&req.body)?;
    let ids_v = body
        .get("ids")
        .ok_or_else(|| bad("missing_ids", "'ids' is required: an array of table ids"))?;
    let arr = ids_v
        .as_arr()
        .ok_or_else(|| bad("invalid_ids", "'ids' must be an array"))?;
    if arr.is_empty() || arr.len() > MAX_REMOVE_IDS {
        return Err(bad(
            "invalid_ids",
            format!("1..={MAX_REMOVE_IDS} ids per remove, got {}", arr.len()),
        ));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_u64().ok_or_else(|| {
                bad(
                    "invalid_ids",
                    format!("ids[{i}] must be a non-negative integer"),
                )
            })
        })
        .collect()
}

/// Renders a [`SearchResponse`] plus its coalescing provenance as the
/// `/search` response body.
pub fn search_body(
    resp: &SearchResponse,
    batch_id: u64,
    batch_size: usize,
    batch_unique: usize,
) -> String {
    let hits: Vec<String> = resp
        .hits
        .iter()
        .map(|h| {
            format!(
                "{{\"index\":{},\"table_id\":{},\"table_name\":{},\"score\":{}}}",
                h.index,
                h.table_id,
                quote(&h.table_name),
                json::num(f64::from(h.score))
            )
        })
        .collect();
    let t = &resp.timings;
    format!(
        concat!(
            "{{\"epoch\":{},\"strategy\":{},\"cached\":{},",
            "\"hits\":[{}],",
            "\"counts\":{{\"total\":{},\"after_interval\":{},\"after_lsh\":{},\"after_ann\":{},",
            "\"quant_scanned\":{},\"reranked\":{},\"scored\":{}}},",
            "\"timings_us\":{{\"extract\":{},\"encode\":{},\"prune\":{},\"score\":{},\"total\":{}}},",
            "\"batch\":{{\"id\":{},\"size\":{},\"unique\":{}}}}}"
        ),
        resp.epoch,
        quote(strategy_name(resp.strategy)),
        resp.cached,
        hits.join(","),
        resp.counts.total,
        opt_usize(resp.counts.after_interval),
        opt_usize(resp.counts.after_lsh),
        opt_usize(resp.counts.after_ann),
        opt_usize(resp.counts.quant_scanned),
        opt_usize(resp.counts.reranked),
        resp.counts.scored,
        micros(t.extract_s),
        micros(t.encode_s),
        micros(t.prune_s),
        micros(t.score_s),
        micros(t.total_s),
        batch_id,
        batch_size,
        batch_unique,
    )
}

/// The `/insert` response body: the read-your-writes epoch token plus
/// corpus positions assigned to the new tables.
pub fn insert_body(epoch: u64, positions: &[usize]) -> String {
    let pos: Vec<String> = positions.iter().map(usize::to_string).collect();
    format!(
        "{{\"epoch\":{epoch},\"inserted\":{},\"positions\":[{}]}}",
        positions.len(),
        pos.join(",")
    )
}

/// The `/remove` response body.
pub fn remove_body(epoch: u64, removed: usize) -> String {
    format!("{{\"epoch\":{epoch},\"removed\":{removed}}}")
}

/// Wire name of a strategy (the same tokens `parse_search` accepts).
pub fn strategy_name(s: IndexStrategy) -> &'static str {
    match s {
        IndexStrategy::Hybrid => "hybrid",
        IndexStrategy::IntervalOnly => "interval",
        IndexStrategy::LshOnly => "lsh",
        IndexStrategy::NoIndex => "none",
        IndexStrategy::Ivf => "ivf",
    }
}

fn micros(seconds: f64) -> u64 {
    if seconds.is_finite() && seconds > 0.0 {
        (seconds * 1e6) as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: "/search".into(),
            query: String::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn code(e: ApiError) -> &'static str {
        assert_eq!(e.status, 400);
        e.code
    }

    #[test]
    fn accepts_a_full_search_request() {
        let r = req(
            r#"{"series":[[1.0,2.0,3.0]],"k":5,"strategy":"lsh","min_score":0.2,"deadline_ms":250,"min_epoch":7}"#,
        );
        let s = parse_search(&r, 2000, 30000).unwrap();
        assert_eq!(s.opts.k, 5);
        assert_eq!(s.opts.strategy, IndexStrategy::LshOnly);
        assert_eq!(s.opts.min_score, Some(0.2));
        assert_eq!(s.deadline_ms, 250);
        assert_eq!(s.consistency, Consistency::AtLeastEpoch(7));
    }

    #[test]
    fn headers_override_body() {
        let mut r = req(r#"{"series":[[1.0,2.0]],"deadline_ms":250}"#);
        r.headers.push(("x-lcdd-deadline-ms".into(), "99".into()));
        r.headers.push(("x-lcdd-max-lag".into(), "3".into()));
        let s = parse_search(&r, 2000, 30000).unwrap();
        assert_eq!(s.deadline_ms, 99);
        assert_eq!(s.consistency, Consistency::BoundedLag(3));
    }

    #[test]
    fn rejects_adversarial_searches_with_typed_codes() {
        let max = (2000, 30000);
        assert_eq!(
            code(parse_search(&req("not json"), max.0, max.1).unwrap_err()),
            "invalid_json"
        );
        assert_eq!(
            code(parse_search(&req("[1,2]"), max.0, max.1).unwrap_err()),
            "invalid_json"
        );
        assert_eq!(
            code(parse_search(&req("{}"), max.0, max.1).unwrap_err()),
            "missing_series"
        );
        assert_eq!(
            code(parse_search(&req(r#"{"series":[]}"#), max.0, max.1).unwrap_err()),
            "invalid_series"
        );
        assert_eq!(
            code(parse_search(&req(r#"{"series":[[1.0]]}"#), max.0, max.1).unwrap_err()),
            "invalid_series",
        );
        assert_eq!(
            code(parse_search(&req(r#"{"series":[[1,2]],"k":0}"#), max.0, max.1).unwrap_err()),
            "invalid_k"
        );
        assert_eq!(
            code(parse_search(&req(r#"{"series":[[1,2]],"k":2.5}"#), max.0, max.1).unwrap_err()),
            "invalid_k"
        );
        assert_eq!(
            code(
                parse_search(
                    &req(r#"{"series":[[1,2]],"strategy":"warp"}"#),
                    max.0,
                    max.1
                )
                .unwrap_err()
            ),
            "invalid_strategy"
        );
        assert_eq!(
            code(
                parse_search(
                    &req(r#"{"series":[[1,2]],"min_epoch":1,"max_lag":1}"#),
                    max.0,
                    max.1
                )
                .unwrap_err()
            ),
            "conflicting_consistency"
        );
        // 1e999 dies in the JSON parser, as invalid_json — it can never
        // reach the series.
        assert_eq!(
            code(parse_search(&req(r#"{"series":[[1,1e999]]}"#), max.0, max.1).unwrap_err()),
            "invalid_json"
        );
    }

    #[test]
    fn deadline_is_clamped_to_the_server_maximum() {
        let s = parse_search(
            &req(r#"{"series":[[1.0,2.0]],"deadline_ms":999999}"#),
            2000,
            30000,
        )
        .unwrap();
        assert_eq!(s.deadline_ms, 30000);
    }

    #[test]
    fn insert_validates_shape_and_refuses_ragged() {
        let ok = req(
            r#"{"tables":[{"id":7,"name":"t","columns":[{"name":"a","values":[1,2]},{"values":[3,4]}]}]}"#,
        );
        let tables = parse_insert(&ok).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].id, 7);
        assert_eq!(tables[0].num_cols(), 2);
        assert_eq!(tables[0].columns[1].name, "c1");

        let ragged = req(r#"{"tables":[{"id":1,"columns":[{"values":[1,2]},{"values":[3]}]}]}"#);
        assert_eq!(code(parse_insert(&ragged).unwrap_err()), "ragged_table");

        let no_cols = req(r#"{"tables":[{"id":1,"columns":[]}]}"#);
        assert_eq!(code(parse_insert(&no_cols).unwrap_err()), "invalid_table");
    }

    #[test]
    fn remove_validates_ids() {
        let ids = parse_remove(&req(r#"{"ids":[1,2,3]}"#)).unwrap();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(
            code(parse_remove(&req(r#"{"ids":[]}"#)).unwrap_err()),
            "invalid_ids"
        );
        assert_eq!(
            code(parse_remove(&req(r#"{"ids":[-1]}"#)).unwrap_err()),
            "invalid_ids"
        );
    }
}
