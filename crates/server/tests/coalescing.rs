//! The tentpole invariant, asserted over the real wire: concurrent
//! searches are coalesced into shared batches, and every response that
//! carries the same `x-lcdd-batch-id` carries the same `epoch` — even
//! while a writer churns the corpus and bumps the epoch underneath.

mod util;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

use lcdd_server::ServerConfig;
use lcdd_testkit::load::{insert_body, remove_body, search_body, HttpClient};

fn series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

#[test]
fn coalesced_batches_share_one_epoch_under_churn() {
    let (server, _serving) = util::serving_server(8, ServerConfig::default());
    let addr = server.addr();
    let stop = AtomicBool::new(false);

    // (batch_id, epoch, batch_size) per successful search, across all
    // reader threads.
    let observed: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        // A writer churning inserts/removes so the published epoch moves
        // throughout the run.
        let writer = scope.spawn(|| {
            let Ok(mut c) = HttpClient::connect(addr) else {
                return;
            };
            let mut i = 0u64;
            while !stop.load(Relaxed) {
                let id = 5_000 + (i % 20);
                let inserting = i.is_multiple_of(2);
                let body = if inserting {
                    insert_body(id, &series((id % 5) as usize))
                } else {
                    remove_body(&[5_000 + ((i - 1) % 20)])
                };
                let path = if inserting { "/insert" } else { "/remove" };
                if c.request("POST", path, &[], &body).is_err() {
                    return;
                }
                i += 1;
            }
        });

        let readers: Vec<_> = (0..8)
            .map(|r| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let Ok(mut c) = HttpClient::connect(addr) else {
                        return out;
                    };
                    for i in 0..40 {
                        // A pool of 3 hot queries: concurrent duplicates are
                        // what the batcher dedups.
                        let body = search_body(&[series((r + i) % 3)], 3);
                        let Ok(resp) = c.request("POST", "/search", &[], &body) else {
                            break;
                        };
                        if resp.status != 200 {
                            continue;
                        }
                        let batch_id: u64 = resp
                            .header("x-lcdd-batch-id")
                            .and_then(|v| v.parse().ok())
                            .expect("batch id header");
                        let epoch: u64 = resp
                            .header("x-lcdd-epoch")
                            .and_then(|v| v.parse().ok())
                            .expect("epoch header");
                        assert_eq!(
                            resp.json_u64("epoch"),
                            Some(epoch),
                            "body/header epoch mismatch"
                        );
                        let size = resp.json_u64("size").expect("batch size in body");
                        out.push((batch_id, epoch, size));
                    }
                    out
                })
            })
            .collect();
        let mut all = Vec::new();
        for r in readers {
            all.extend(r.join().expect("reader thread"));
        }
        stop.store(true, Relaxed);
        writer.join().expect("writer thread");
        all
    });

    let report = server.shutdown();
    assert_eq!(
        report.jobs_enqueued, report.jobs_answered,
        "drain must answer everything"
    );
    assert!(
        observed.len() >= 200,
        "expected most searches to succeed, got {}",
        observed.len()
    );

    // The invariant: a shared batch id implies a shared epoch.
    let mut epoch_of: HashMap<u64, u64> = HashMap::new();
    for (batch_id, epoch, _) in &observed {
        if let Some(prev) = epoch_of.insert(*batch_id, *epoch) {
            assert_eq!(
                prev, *epoch,
                "batch {batch_id} served from two epochs ({prev} and {epoch})"
            );
        }
    }

    // Coalescing actually happened: some batch held more than one request.
    let max_size = observed.iter().map(|(_, _, s)| *s).max().unwrap_or(0);
    assert!(
        max_size > 1,
        "8 concurrent readers over 3 hot queries never shared a batch"
    );

    // Churn actually happened: responses span more than one epoch.
    let mut epochs: Vec<u64> = observed.iter().map(|(_, e, _)| *e).collect();
    epochs.sort_unstable();
    epochs.dedup();
    assert!(
        epochs.len() > 1,
        "the writer never moved the epoch during the run"
    );
}
