//! Graceful drain: shutdown mid-traffic answers every admitted request
//! (`jobs_enqueued == jobs_answered`), refuses late arrivals with a
//! typed 503, and never leaves a client holding a truncated response.

mod util;

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

use lcdd_server::ServerConfig;
use lcdd_testkit::load::{search_body, HttpClient};

fn series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

#[test]
fn shutdown_mid_traffic_loses_no_admitted_request() {
    let (server, _serving) = util::serving_server(
        8,
        ServerConfig {
            read_timeout_ms: 200,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let ok = AtomicU64::new(0);
    let refused = AtomicU64::new(0);
    let cut_off = AtomicU64::new(0);

    let report = std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for w in 0..6 {
            let (ok, refused, cut_off) = (&ok, &refused, &cut_off);
            workers.push(scope.spawn(move || {
                let Ok(mut c) = HttpClient::connect(addr) else {
                    return;
                };
                for i in 0..200 {
                    let body = search_body(&[series((w + i) % 4)], 3);
                    match c.request("POST", "/search", &[], &body) {
                        Ok(resp) => match resp.status {
                            200 => {
                                // Every 200 is complete by construction:
                                // the client read Content-Length bytes.
                                assert!(resp.body.contains("\"epoch\":"));
                                ok.fetch_add(1, Relaxed);
                            }
                            503 | 504 => {
                                // Typed refusal during the drain window.
                                assert!(
                                    resp.body.contains("shutting_down")
                                        || resp.body.contains("queue_full")
                                        || resp.body.contains("deadline_exceeded"),
                                    "unexpected refusal: {}",
                                    resp.body
                                );
                                refused.fetch_add(1, Relaxed);
                            }
                            other => panic!("unexpected status {other}: {}", resp.body),
                        },
                        Err(_) => {
                            // The server closed between requests — the
                            // drain's clean end for idle keep-alives. No
                            // partially-written response can look like
                            // this with status 200 (asserted above).
                            cut_off.fetch_add(1, Relaxed);
                            return;
                        }
                    }
                }
            }));
        }
        // Let traffic build, then drain while workers are mid-flight.
        std::thread::sleep(Duration::from_millis(300));
        let report = server.shutdown();
        for t in workers {
            t.join().expect("worker thread");
        }
        report
    });

    assert_eq!(
        report.jobs_enqueued,
        report.jobs_answered,
        "drain lost {} admitted searches",
        report.jobs_enqueued - report.jobs_answered
    );
    assert!(ok.load(Relaxed) > 0, "no search completed before the drain");

    // After shutdown returns, the port no longer serves: a fresh client
    // either fails to connect or gets no response.
    if let Ok(mut c) = HttpClient::connect(addr) {
        let resp = c.request("POST", "/search", &[], &search_body(&[series(0)], 2));
        assert!(
            resp.is_err() || resp.map(|r| r.status).unwrap_or(503) == 503,
            "gateway still serving after shutdown"
        );
    }
}
