//! Endpoint-level integration: routing, health, metrics, snapshots, and
//! the read-your-writes epoch token round-trip.

mod util;

use lcdd_server::ServerConfig;
use lcdd_testkit::load::{insert_body, remove_body, search_body, search_body_with};

fn series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

#[test]
fn search_returns_ranked_hits_with_epoch_headers() {
    let (server, _serving) = util::serving_server(6, ServerConfig::default());
    let mut c = util::client(&server);
    let resp = c
        .request(
            "POST",
            "/search",
            &[],
            &search_body_with(&[series(2)], 10, Some("none")),
        )
        .expect("search must answer");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    // k covers the whole corpus under full scoring, so every table
    // (including table 2) must appear among the ranked hits.
    assert!(resp.body.contains("\"table_id\":2"), "body: {}", resp.body);
    let header_epoch: u64 = resp
        .header("x-lcdd-epoch")
        .expect("epoch header")
        .parse()
        .expect("numeric epoch");
    assert_eq!(resp.json_u64("epoch"), Some(header_epoch));
    assert!(resp.header("x-lcdd-batch-id").is_some());
    let report = server.shutdown();
    assert_eq!(report.jobs_enqueued, report.jobs_answered);
}

#[test]
fn insert_token_round_trips_as_read_your_writes() {
    let (server, _serving) = util::serving_server(4, ServerConfig::default());
    let mut c = util::client(&server);
    let ins = c
        .request("POST", "/insert", &[], &insert_body(77, &series(5)))
        .expect("insert must answer");
    assert_eq!(ins.status, 200, "body: {}", ins.body);
    let token = ins.header("x-lcdd-epoch").expect("epoch token").to_string();
    assert!(ins.json_u64("epoch").unwrap() > 0);

    // The token pins the search at-or-after the write: the new table is
    // visible.
    let resp = c
        .request(
            "POST",
            "/search",
            &[("x-lcdd-min-epoch", &token)],
            &search_body_with(&[series(5)], 10, Some("none")),
        )
        .expect("search must answer");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert!(resp.body.contains("\"table_id\":77"), "body: {}", resp.body);
    assert!(resp.json_u64("epoch").unwrap() >= token.parse::<u64>().unwrap());

    // Remove it again; the remove token moves forward.
    let rem = c
        .request("POST", "/remove", &[], &remove_body(&[77]))
        .expect("remove must answer");
    assert_eq!(rem.status, 200);
    assert_eq!(rem.json_u64("removed"), Some(1));
    assert!(rem.json_u64("epoch").unwrap() > token.parse::<u64>().unwrap());
    server.shutdown();
}

#[test]
fn healthz_metrics_and_snapshot_report_the_engine() {
    let (server, serving) = util::serving_server(5, ServerConfig::default());
    let mut c = util::client(&server);

    let h = c.request("GET", "/healthz", &[], "").expect("healthz");
    assert_eq!(h.status, 200);
    assert!(h.body.contains("\"status\":\"ok\""), "body: {}", h.body);
    assert!(h.body.contains("\"backend\":\"serving\""));
    assert_eq!(h.json_u64("tables"), Some(5));

    // Exercise the batcher once, then scrape.
    let s = c
        .request("POST", "/search", &[], &search_body(&[series(1)], 2))
        .expect("search");
    assert_eq!(s.status, 200);
    let m = c.request("GET", "/metrics", &[], "").expect("metrics");
    assert_eq!(m.status, 200);
    for field in [
        "\"qps\":",
        "\"latency_us\":",
        "\"p50\":",
        "\"p99\":",
        "\"queue\":",
        "\"coalescing\":",
        "\"cache\":",
        "\"jobs\":",
        "\"tier\":",
        "\"ivf_nprobe\":",
    ] {
        assert!(m.body.contains(field), "missing {field} in {}", m.body);
    }
    assert!(m.json_u64("search").unwrap() >= 1);
    // An all-resident serving backend: everything hot, nothing mapped,
    // no quantized scans yet.
    assert_eq!(m.json_u64("resident_tables"), Some(5));
    assert_eq!(m.json_u64("mapped_tables"), Some(0));
    assert_eq!(m.json_u64("quant_scanned"), Some(0));
    assert_eq!(m.json_u64("reranked"), Some(0));
    assert!(h
        .body
        .contains("\"tier\":{\"resident_tables\":5,\"mapped_tables\":0}"));

    // A re-rank search flows into the pipeline counters: 5 candidates
    // proxy-scanned, 3 survivors exactly re-scored.
    let rr = c
        .request(
            "POST",
            "/search",
            &[],
            "{\"series\":[[1.0,2.0,3.0,2.0,1.0]],\"k\":2,\"strategy\":\"none\",\"rerank\":3}",
        )
        .expect("rerank search");
    assert_eq!(rr.status, 200, "body: {}", rr.body);
    let m2 = c.request("GET", "/metrics", &[], "").expect("metrics");
    assert_eq!(m2.json_u64("quant_scanned"), Some(5));
    assert_eq!(m2.json_u64("reranked"), Some(3));

    // Snapshot routing: current → 200, stale → 410, future → 404.
    let current = serving.epoch();
    let ok = c
        .request("GET", &format!("/snapshot/{current}"), &[], "")
        .expect("snapshot");
    assert_eq!(ok.status, 200);
    assert_eq!(ok.json_u64("epoch"), Some(current));
    serving.insert_tables(lcdd_testkit::tiny_corpus(1));
    let gone = c
        .request("GET", &format!("/snapshot/{current}"), &[], "")
        .expect("stale snapshot");
    assert_eq!(gone.status, 410);
    assert!(gone.body.contains("epoch_gone"));
    let future = c
        .request("GET", &format!("/snapshot/{}", current + 100), &[], "")
        .expect("future snapshot");
    assert_eq!(future.status, 404);
    assert!(future.body.contains("epoch_not_published"));
    server.shutdown();
}

#[test]
fn unknown_routes_and_methods_get_typed_404_405() {
    let (server, _serving) = util::serving_server(3, ServerConfig::default());
    let mut c = util::client(&server);
    let nf = c.request("GET", "/nope", &[], "").expect("404");
    assert_eq!(nf.status, 404);
    assert!(nf.body.contains("not_found"));
    let mna = c.request("GET", "/search", &[], "").expect("405");
    assert_eq!(mna.status, 405);
    assert!(mna.body.contains("method_not_allowed"));
    let root = c.request("GET", "/", &[], "").expect("root");
    assert_eq!(root.status, 200);
    assert!(root.body.contains("lcdd-server"));
    server.shutdown();
}
