//! Adversarial wire input: everything malformed maps to a typed 4xx
//! error body — never a panic, never a hung connection — and the server
//! keeps serving afterwards.

mod util;

use lcdd_server::ServerConfig;
use lcdd_testkit::load::search_body;

fn small_body_config() -> ServerConfig {
    ServerConfig {
        max_body_bytes: 2_048,
        // Short stall detection so the byte-soup rounds stay fast.
        read_timeout_ms: 200,
        ..ServerConfig::default()
    }
}

/// Sends a request, expects a 400 with the given error code in the body.
fn expect_400(server: &lcdd_server::Server, body: &str, want_code: &str) {
    let mut c = util::client(server);
    let resp = c
        .request("POST", "/search", &[], body)
        .unwrap_or_else(|e| panic!("no response for {want_code} case: {e}"));
    assert_eq!(resp.status, 400, "body: {} → {}", body, resp.body);
    assert!(
        resp.body.contains(want_code),
        "expected code {want_code} in {}",
        resp.body
    );
}

#[test]
fn malformed_bodies_get_typed_400s_and_the_server_survives() {
    let (server, _serving) = util::serving_server(4, small_body_config());

    // The satellite checklist's rogues gallery.
    expect_400(&server, "not json at all", "invalid_json");
    expect_400(&server, "{\"series\":[[1,2]]", "invalid_json"); // truncated
    expect_400(&server, "[]", "invalid_json"); // not an object
    expect_400(&server, "{}", "missing_series");
    expect_400(&server, "{\"series\":[]}", "invalid_series");
    expect_400(&server, "{\"series\":[[1]]}", "invalid_series"); // 1 point
    expect_400(&server, "{\"series\":[[1,\"x\"]]}", "invalid_series");
    expect_400(&server, "{\"series\":[[1,1e999]]}", "invalid_json"); // inf smuggle
    expect_400(&server, "{\"series\":[[1,2]],\"k\":0}", "invalid_k");
    expect_400(&server, "{\"series\":[[1,2]],\"k\":-3}", "invalid_k");
    expect_400(&server, "{\"series\":[[1,2]],\"k\":1e12}", "invalid_k");
    expect_400(
        &server,
        "{\"series\":[[1,2]],\"strategy\":\"quantum\"}",
        "invalid_strategy",
    );
    expect_400(
        &server,
        "{\"series\":[[1,2]],\"min_epoch\":1,\"max_lag\":2}",
        "conflicting_consistency",
    );
    // Depth bomb: 100 nested arrays.
    let bomb = format!("{{\"series\":{}{}}}", "[".repeat(100), "]".repeat(100));
    expect_400(&server, &bomb, "invalid_json");

    // Insert-side: ragged and empty tables.
    {
        let mut c = util::client(&server);
        let ragged = r#"{"tables":[{"id":1,"columns":[{"values":[1,2]},{"values":[3]}]}]}"#;
        let resp = c.request("POST", "/insert", &[], ragged).expect("ragged");
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("ragged_table"), "body: {}", resp.body);
        let resp = c
            .request("POST", "/remove", &[], r#"{"ids":"all"}"#)
            .expect("bad ids");
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("invalid_ids"));
    }

    // Oversize body: refused from the declared Content-Length, before
    // buffering.
    {
        let mut c = util::client(&server);
        let huge = search_body(&[(0..2000).map(|i| i as f64 + 0.125).collect()], 3);
        assert!(huge.len() > 2_048);
        let resp = c.request("POST", "/search", &[], &huge).expect("oversize");
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("body_too_large"), "body: {}", resp.body);
    }

    // Broken framing: garbage request line, bad content-length. The
    // server answers 400 (and closes) rather than resetting silently.
    {
        let mut c = util::client(&server);
        let resp = c.raw(b"THIS IS NOT HTTP\r\n\r\n").expect("garbage line");
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("malformed_request"));
    }
    {
        let mut c = util::client(&server);
        let resp = c
            .raw(b"POST /search HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
            .expect("bad length");
        assert_eq!(resp.status, 400);
    }
    {
        let mut c = util::client(&server);
        let resp = c
            .raw(b"POST /search HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .expect("chunked refused");
        assert_eq!(resp.status, 400);
    }

    // After all of that, the gateway still serves a clean search.
    let mut c = util::client(&server);
    let good = search_body(
        &[(0..90)
            .map(|j| ((j + 11) as f64 / 6.0).sin() * 2.0)
            .collect()],
        2,
    );
    let resp = c.request("POST", "/search", &[], &good).expect("healthy");
    assert_eq!(
        resp.status, 200,
        "server unhealthy after fuzz: {}",
        resp.body
    );
    let report = server.shutdown();
    assert_eq!(report.jobs_enqueued, report.jobs_answered);
}

#[test]
fn fuzzish_random_bytes_never_crash_the_gateway() {
    let (server, _serving) = util::serving_server(3, small_body_config());
    // Deterministic xorshift byte soup, several shapes: pure garbage,
    // garbage after a valid prefix, and truncated JSON bodies.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..32 {
        let mut c = util::client(&server);
        let len = (next() % 200) as usize + 1;
        let mut bytes: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
        if round % 3 == 1 {
            let mut prefixed = b"POST /search HTTP/1.1\r\nContent-Length: ".to_vec();
            prefixed.extend_from_slice(len.to_string().as_bytes());
            prefixed.extend_from_slice(b"\r\n\r\n");
            prefixed.extend_from_slice(&bytes);
            bytes = prefixed;
        }
        // Any outcome except a hang is acceptable: a typed 4xx, or the
        // server closing the connection on unparseable framing.
        let _ = c.raw(&bytes);
    }
    // Still alive and correct.
    let mut c = util::client(&server);
    let good = search_body(&[(0..90).map(|j| (j as f64 / 6.0).sin()).collect()], 2);
    let resp = c.request("POST", "/search", &[], &good).expect("healthy");
    assert_eq!(resp.status, 200);
    server.shutdown();
}
