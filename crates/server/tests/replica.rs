//! Staleness contracts through the gateway against a real replication
//! follower: an `AtLeastEpoch` token the replica cannot honour is a
//! typed 412 carrying the replica's current epoch; after the follower
//! syncs, the same token answers 200 — the round-trip the issue's
//! satellite demands. Writes against a replica gateway are 405.

mod util;

use std::sync::Arc;

use lcdd_repl::{sync_to_convergence, ChannelTransport, Follower, Leader, RetryPolicy};
use lcdd_server::{Backend, Server, ServerConfig};
use lcdd_store::DurableEngine;
use lcdd_testkit::crash::TempDir;
use lcdd_testkit::load::{insert_body, search_body, search_body_with};
use lcdd_testkit::repl::store_opts;

fn series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

#[test]
fn staleness_token_round_trips_412_then_200_after_sync() {
    let tmp = TempDir::new("server-replica");
    let base = lcdd_testkit::tiny_corpus(5);
    let opts = store_opts(64, 4);
    let leader_store = Arc::new(
        DurableEngine::create(
            tmp.subdir("leader"),
            lcdd_testkit::tiny_engine(base.clone(), 2),
            opts.clone(),
        )
        .expect("leader store"),
    );
    let leader = Leader::new(Arc::clone(&leader_store), RetryPolicy::immediate());
    let follower = Arc::new(
        Follower::create(
            tmp.subdir("follower"),
            lcdd_testkit::tiny_engine(base, 2),
            opts,
        )
        .expect("follower"),
    );
    leader.attach("replica", follower.epoch());
    let transport = ChannelTransport::default();

    // Two gateways: one over the leader's durable store, one over the
    // follower.
    let leader_gw = Server::start(
        Backend::Durable(Arc::clone(&leader_store)),
        ServerConfig::default(),
    )
    .expect("leader gateway");
    let replica_gw = Server::start(
        Backend::Replica(Arc::clone(&follower)),
        ServerConfig::default(),
    )
    .expect("replica gateway");

    // Write through the leader gateway; its response carries the
    // read-your-writes token.
    let mut lc = util::client(&leader_gw);
    let ins = lc
        .request("POST", "/insert", &[], &insert_body(42, &series(3)))
        .expect("leader insert");
    assert_eq!(ins.status, 200, "body: {}", ins.body);
    let token = ins.header("x-lcdd-epoch").expect("token").to_string();
    let token_n: u64 = token.parse().expect("numeric token");

    // The leader's /healthz shows durable-store fields.
    let lh = lc
        .request("GET", "/healthz", &[], "")
        .expect("leader health");
    assert!(lh.body.contains("\"wal_bytes\":"), "body: {}", lh.body);

    // The follower has not synced: the token is unservable → 412 with
    // the replica's current epoch for recalibration.
    let mut rc = util::client(&replica_gw);
    let stale = rc
        .request(
            "POST",
            "/search",
            &[("x-lcdd-min-epoch", &token)],
            &search_body(&[series(3)], 3),
        )
        .expect("stale search");
    assert_eq!(stale.status, 412, "body: {}", stale.body);
    assert!(stale.body.contains("stale_replica"));
    let replica_epoch = stale
        .header("x-lcdd-epoch")
        .and_then(|v| v.parse::<u64>().ok())
        .expect("current epoch on 412");
    assert!(replica_epoch < token_n);

    // An unconstrained read serves the older snapshot meanwhile.
    let any = rc
        .request("POST", "/search", &[], &search_body(&[series(1)], 3))
        .expect("relaxed search");
    assert_eq!(any.status, 200);
    assert!(any.json_u64("epoch").unwrap() < token_n);

    // Writes to a replica gateway are refused with a typed 405.
    let ro = rc
        .request("POST", "/insert", &[], &insert_body(7, &series(1)))
        .expect("replica insert");
    assert_eq!(ro.status, 405);
    assert!(ro.body.contains("read_only_replica"));

    // Replica /healthz surfaces lag fields.
    let rh = rc
        .request("GET", "/healthz", &[], "")
        .expect("replica health");
    assert!(rh.body.contains("\"replica\":"), "body: {}", rh.body);
    assert!(rh.body.contains("\"backend\":\"replica\""));

    // Sync the follower; the same token must now answer 200 at an epoch
    // honouring it, and the new table is visible through the replica.
    sync_to_convergence(&leader, "replica", &transport, &follower, 64).expect("sync must converge");
    let fresh = rc
        .request(
            "POST",
            "/search",
            &[("x-lcdd-min-epoch", &token)],
            &search_body_with(&[series(3)], 10, Some("none")),
        )
        .expect("fresh search");
    assert_eq!(fresh.status, 200, "body: {}", fresh.body);
    assert!(fresh.json_u64("epoch").unwrap() >= token_n);
    assert!(
        fresh.body.contains("\"table_id\":42"),
        "body: {}",
        fresh.body
    );

    // BoundedLag(0) is satisfiable once converged (lag vs last heartbeat
    // is zero).
    let bounded = rc
        .request(
            "POST",
            "/search",
            &[("x-lcdd-max-lag", "0")],
            &search_body(&[series(2)], 3),
        )
        .expect("bounded search");
    assert_eq!(bounded.status, 200, "body: {}", bounded.body);

    let r1 = leader_gw.shutdown();
    let r2 = replica_gw.shutdown();
    assert_eq!(r1.jobs_enqueued, r1.jobs_answered);
    assert_eq!(r2.jobs_enqueued, r2.jobs_answered);
}
