//! The scrape surface under concurrency: Prometheus exposition that
//! lints clean and covers every layer of the stack, scrapes hammered in
//! both formats during write churn, counter monotonicity, and span-ring
//! overflow semantics.

mod util;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lcdd_obs::promlint;
use lcdd_obs::trace::{SpanRing, Stage, TraceId};
use lcdd_repl::{sync_to_convergence, ChannelTransport, Follower, Leader, RetryPolicy};
use lcdd_server::{Backend, Server, ServerConfig};
use lcdd_store::DurableEngine;
use lcdd_testkit::crash::TempDir;
use lcdd_testkit::load::{insert_body, search_body, HttpClient};
use lcdd_testkit::repl::store_opts;

fn series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

/// First sample value of `family` in a Prometheus text body.
fn prom_value(body: &str, family: &str) -> Option<f64> {
    body.lines()
        .find(|l| {
            l.starts_with(family)
                && l.as_bytes()
                    .get(family.len())
                    .is_some_and(|b| *b == b' ' || *b == b'{')
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// The full stack — gateway over a durable store, with a replication
/// pair alive in-process — exposes one linter-clean text exposition
/// covering every layer.
#[test]
fn prometheus_exposition_is_lint_clean_across_the_stack() {
    let tmp = TempDir::new("scrape-stack");
    let base = lcdd_testkit::tiny_corpus(5);
    let opts = store_opts(4, 2);
    let leader_store = Arc::new(
        DurableEngine::create(
            tmp.subdir("leader"),
            lcdd_testkit::tiny_engine(base.clone(), 2),
            opts.clone(),
        )
        .expect("leader store"),
    );
    let leader = Leader::new(Arc::clone(&leader_store), RetryPolicy::immediate());
    let follower = Follower::create(
        tmp.subdir("follower"),
        lcdd_testkit::tiny_engine(base, 2),
        opts,
    )
    .expect("follower");
    leader.attach("replica", follower.epoch());
    let transport = ChannelTransport::default();

    let server = Server::start(
        Backend::Durable(Arc::clone(&leader_store)),
        ServerConfig::default(),
    )
    .expect("gateway");
    let mut c = util::client(&server);

    // Churn every layer: searches (gateway + engine + trace), durable
    // writes (WAL appends) past the checkpoint threshold (rotation), and
    // a replication round (ship + apply).
    for i in 0..6 {
        let ins = c
            .request(
                "POST",
                "/insert",
                &[],
                &insert_body(100 + i, &series(i as usize)),
            )
            .expect("insert");
        assert_eq!(ins.status, 200, "body: {}", ins.body);
    }
    let s = c
        .request("POST", "/search", &[], &search_body(&[series(1)], 3))
        .expect("search");
    assert_eq!(s.status, 200);
    sync_to_convergence(&leader, "replica", &transport, &follower, 32)
        .expect("replication must converge");

    let m = c
        .request("GET", "/metrics", &[("Accept", "text/plain")], "")
        .expect("scrape");
    assert_eq!(m.status, 200);
    assert!(
        m.header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain; version=0.0.4")),
        "content-type: {:?}",
        m.header("content-type")
    );

    let problems = promlint::lint(&m.body);
    assert!(problems.is_empty(), "exposition lint: {problems:?}");

    // One family per layer must be present with real samples.
    for family in [
        "lcdd_gateway_search_requests_total",
        "lcdd_gateway_search_latency_ns",
        "lcdd_engine_epoch",
        "lcdd_trace_spans_recorded_total",
        "lcdd_pool_threads",
        "lcdd_store_wal_appends_total",
        "lcdd_store_wal_rotations_total",
        "lcdd_store_checkpoints_total",
        "lcdd_repl_records_shipped_total",
        "lcdd_repl_frames_applied_total",
        "lcdd_repl_lag_epochs",
    ] {
        assert!(
            m.body.contains(&format!("# TYPE {family} ")),
            "family {family} missing from exposition:\n{}",
            m.body
        );
    }
    // The churn above must actually have moved the cross-layer counters.
    // Global-registry instruments are process totals shared with other
    // tests in this binary, so assert floors, never exact values.
    assert!(prom_value(&m.body, "lcdd_store_wal_appends_total").unwrap_or(0.0) >= 6.0);
    assert!(prom_value(&m.body, "lcdd_store_wal_rotations_total").unwrap_or(0.0) >= 1.0);
    assert!(prom_value(&m.body, "lcdd_repl_frames_applied_total").unwrap_or(0.0) >= 1.0);

    // The JSON default is untouched by content negotiation.
    let j = c.request("GET", "/metrics", &[], "").expect("json scrape");
    assert_eq!(j.status, 200);
    assert!(j.body.starts_with('{'), "JSON default must remain");
    assert!(j.body.contains("\"latency_us\":"));
    server.shutdown();
}

/// Scrapes in both formats and the slow log, hammered from several
/// threads while writers churn, never tear: every exposition lints
/// clean, counters read monotonically, and after a drain the batcher
/// books balance.
#[test]
fn concurrent_scrapes_stay_consistent_during_churn() {
    let (server, _serving) = util::serving_server(6, ServerConfig::default());
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..3)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).expect("writer connect");
                for i in 0..25 {
                    let resp = c
                        .request(
                            "POST",
                            "/search",
                            &[],
                            &search_body(&[series(w * 31 + i)], 3),
                        )
                        .expect("search");
                    assert_eq!(resp.status, 200);
                }
            })
        })
        .collect();

    let scrapers: Vec<_> = (0..2)
        .map(|s| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).expect("scraper connect");
                let mut last_json = 0u64;
                let mut last_text = 0.0f64;
                let mut scrapes = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    if s == 0 {
                        let m = c.request("GET", "/metrics", &[], "").expect("json");
                        assert_eq!(m.status, 200);
                        let searches = m.json_u64("search").expect("search counter");
                        assert!(
                            searches >= last_json,
                            "counter went backwards: {searches} < {last_json}"
                        );
                        last_json = searches;
                    } else {
                        let m = c
                            .request("GET", "/metrics", &[("Accept", "text/plain")], "")
                            .expect("text");
                        assert_eq!(m.status, 200);
                        let problems = promlint::lint(&m.body);
                        assert!(problems.is_empty(), "mid-churn lint: {problems:?}");
                        let v = prom_value(&m.body, "lcdd_gateway_search_requests_total")
                            .expect("search family");
                        assert!(v >= last_text, "counter went backwards: {v} < {last_text}");
                        last_text = v;
                    }
                    scrapes += 1;
                }
                assert!(scrapes > 0);
            })
        })
        .collect();

    let slow_poller = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = HttpClient::connect(addr).expect("poller connect");
            while !stop.load(Ordering::Relaxed) {
                let r = c.request("GET", "/debug/slow?n=4", &[], "").expect("slow");
                assert_eq!(r.status, 200);
                assert!(r.body.contains("\"ring\":{\"recorded\":"));
            }
        })
    };

    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    for s in scrapers {
        s.join().expect("scraper");
    }
    slow_poller.join().expect("poller");

    let report = server.shutdown();
    assert_eq!(
        report.jobs_enqueued, report.jobs_answered,
        "drain must balance the batcher books"
    );
    assert!(report.jobs_enqueued >= 75, "all writer searches admitted");
}

/// Overflowing the span ring overwrites oldest-first and never corrupts
/// what survives: after lapping, the newest spans replay intact and the
/// evicted ones are simply absent.
#[test]
fn span_ring_overflow_drops_oldest_first_without_corruption() {
    let ring = SpanRing::with_capacity(64);
    let old = TraceId::mint();
    let new = TraceId::mint();
    let t0 = Instant::now();
    for i in 0..64u64 {
        ring.record(
            old,
            0,
            Stage::Request,
            t0,
            Duration::from_nanos(100 + i),
            None,
            i,
        );
    }
    assert_eq!(ring.replay(old).len(), 64);

    // Lap half the ring with a second trace: the OLDEST half of `old`
    // must be evicted, the newest half retained bit-exact.
    for i in 0..32u64 {
        ring.record(
            new,
            0,
            Stage::Batch,
            t0,
            Duration::from_nanos(500 + i),
            None,
            i,
        );
    }
    let survivors = ring.replay(old);
    assert_eq!(survivors.len(), 32, "exactly the newest half survives");
    let metas: Vec<u64> = survivors.iter().map(|s| s.meta).collect();
    assert_eq!(
        metas,
        (32..64).collect::<Vec<u64>>(),
        "oldest-first eviction"
    );
    for s in &survivors {
        assert_eq!(s.stage, Stage::Request);
        assert_eq!(s.dur_ns, 100 + s.meta);
        assert_eq!(s.trace, old);
    }
    let fresh = ring.replay(new);
    assert_eq!(fresh.len(), 32);
    for s in &fresh {
        assert_eq!(s.stage, Stage::Batch);
        assert_eq!(s.dur_ns, 500 + s.meta);
    }
    // Single-threaded lapping is overwrite, not collision: nothing
    // counted as dropped, everything recorded.
    assert_eq!(ring.recorded(), 96);
    assert_eq!(ring.dropped(), 0);
}
