//! End-to-end request tracing through the gateway: trace-id echo, the
//! `/debug/trace/{id}` span tree, the span-accounting contract (direct
//! children of the root cover its duration within 10%), and the
//! member-trace → batch-trace link under coalescing.

mod util;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use lcdd_server::ServerConfig;
use lcdd_testkit::load::{search_body, search_body_with, HttpClient};

fn series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

// ---- tiny span-JSON scraping helpers (the bodies are flat and ours) ----

/// Splits the `"spans":[{...},{...}]` array into object strings.
fn span_objects(body: &str) -> Vec<String> {
    let arr = body
        .split("\"spans\":[")
        .nth(1)
        .expect("spans array")
        .rsplit_once(']')
        .expect("closing bracket")
        .0;
    arr.split("},{")
        .map(|s| s.trim_start_matches('{').trim_end_matches('}').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn field_u64(obj: &str, key: &str) -> Option<u64> {
    let rest = obj.split(&format!("\"{key}\":")).nth(1)?;
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str(obj: &str, key: &str) -> Option<String> {
    let rest = obj.split(&format!("\"{key}\":\"")).nth(1)?;
    Some(rest.split('"').next()?.to_string())
}

fn fetch_spans(c: &mut HttpClient, trace: &str) -> Vec<String> {
    let resp = c
        .request("GET", &format!("/debug/trace/{trace}"), &[], "")
        .expect("trace replay");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    span_objects(&resp.body)
}

#[test]
fn supplied_trace_id_is_echoed_and_replayable() {
    let (server, _serving) = util::serving_server(6, ServerConfig::default());
    let mut c = util::client(&server);
    let id = "00000000000000010000000000000002";
    let resp = c
        .request(
            "POST",
            "/search",
            &[("x-lcdd-trace-id", id)],
            &search_body(&[series(1)], 3),
        )
        .expect("search");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.header("x-lcdd-trace-id"), Some(id));

    let spans = fetch_spans(&mut c, id);
    let stages: Vec<String> = spans.iter().filter_map(|s| field_str(s, "stage")).collect();
    for want in [
        "request",
        "parse",
        "queue_wait",
        "await",
        "serialize",
        "batch_member",
    ] {
        assert!(
            stages.iter().any(|s| s == want),
            "stage {want} missing from {stages:?}"
        );
    }
    server.shutdown();
}

#[test]
fn minted_trace_id_round_trips_and_feeds_the_slow_log() {
    let (server, _serving) = util::serving_server(5, ServerConfig::default());
    let mut c = util::client(&server);
    let resp = c
        .request("POST", "/search", &[], &search_body(&[series(2)], 3))
        .expect("search");
    assert_eq!(resp.status, 200);
    let id = resp
        .header("x-lcdd-trace-id")
        .expect("minted trace id")
        .to_string();
    assert_eq!(id.len(), 32, "trace id must be 32 hex chars: {id}");
    assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));

    let spans = fetch_spans(&mut c, &id);
    assert!(!spans.is_empty());

    let slow = c
        .request("GET", "/debug/slow?n=8", &[], "")
        .expect("slow log");
    assert_eq!(slow.status, 200);
    assert!(slow.body.contains(&id), "slow log must list the trace");
    assert!(slow.body.contains("\"ring\":{\"recorded\":"));
    server.shutdown();
}

#[test]
fn bad_and_unknown_trace_ids_are_typed_errors() {
    let (server, _serving) = util::serving_server(4, ServerConfig::default());
    let mut c = util::client(&server);
    let bad = c
        .request("GET", "/debug/trace/not-hex", &[], "")
        .expect("bad id");
    assert_eq!(bad.status, 400);
    assert!(bad.body.contains("invalid_trace_id"));
    let unknown = c
        .request(
            "GET",
            "/debug/trace/deadbeefdeadbeefdeadbeefdeadbeef",
            &[],
            "",
        )
        .expect("unknown id");
    assert_eq!(unknown.status, 404);
    assert!(unknown.body.contains("trace_not_found"));
    server.shutdown();
}

#[test]
fn tracing_off_suppresses_trace_ids() {
    let cfg = ServerConfig {
        tracing: false,
        ..ServerConfig::default()
    };
    let (server, _serving) = util::serving_server(4, cfg);
    let mut c = util::client(&server);
    let resp = c
        .request("POST", "/search", &[], &search_body(&[series(1)], 2))
        .expect("search");
    assert_eq!(resp.status, 200);
    assert!(resp.header("x-lcdd-trace-id").is_none());
    server.shutdown();
}

/// The accounting contract: the root request span's direct children
/// (parse → await → serialize) are contiguous measured intervals, so
/// their durations must sum to the root duration within 10%.
#[test]
fn direct_children_account_for_the_request_within_ten_percent() {
    let (server, _serving) = util::serving_server(6, ServerConfig::default());
    let mut c = util::client(&server);
    // Warm the path once so lazy initialization doesn't land inside the
    // measured request.
    let warm = c
        .request("POST", "/search", &[], &search_body(&[series(0)], 3))
        .expect("warmup");
    assert_eq!(warm.status, 200);

    let id = "0000000000000003000000000000000a";
    let resp = c
        .request(
            "POST",
            "/search",
            &[("x-lcdd-trace-id", id)],
            &search_body_with(&[series(1), series(2)], 5, Some("none")),
        )
        .expect("search");
    assert_eq!(resp.status, 200);

    let spans = fetch_spans(&mut c, id);
    let root = spans
        .iter()
        .find(|s| field_str(s, "stage").as_deref() == Some("request"))
        .expect("root span");
    let root_id = field_u64(root, "id").expect("root id");
    let root_dur = field_u64(root, "dur_ns").expect("root dur");
    assert!(field_u64(root, "parent") == Some(0));

    let child_sum: u64 = spans
        .iter()
        .filter(|s| field_u64(s, "parent") == Some(root_id))
        .filter_map(|s| field_u64(s, "dur_ns"))
        .sum();
    assert!(
        child_sum <= root_dur,
        "children ({child_sum} ns) cannot exceed the root ({root_dur} ns)"
    );
    assert!(
        child_sum * 10 >= root_dur * 9,
        "children cover {child_sum} of {root_dur} ns — more than 10% unaccounted"
    );
    server.shutdown();
}

/// Under coalescing, each member trace carries a `batch_member` span
/// linking to the shared batch trace, whose own tree holds the engine
/// stages (encode → candidate_gen → exact_score → merge).
#[test]
fn member_traces_link_to_a_batch_trace_with_engine_stages() {
    let (server, _serving) = util::serving_server(8, ServerConfig::default());
    let addr = server.addr();

    // Concurrent traced searches so the window has something to coalesce.
    let done = Arc::new(AtomicUsize::new(0));
    let ids: Vec<String> = (0..4)
        .map(|i| format!("00000000000000{i:02x}00000000000000ff"))
        .collect();
    let handles: Vec<_> = ids
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, id)| {
            let done = Arc::clone(&done);
            // Distinct queries per thread: identical queries would be
            // deduplicated in-flight or served from the query cache,
            // leaving later batch traces with a `cache_hit` span instead
            // of the engine pipeline this test asserts on.
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr).expect("connect");
                let resp = c
                    .request(
                        "POST",
                        "/search",
                        &[("x-lcdd-trace-id", &id)],
                        &search_body(&[series(3 + i)], 3),
                    )
                    .expect("search");
                assert_eq!(resp.status, 200);
                done.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("searcher thread");
    }
    assert_eq!(done.load(Ordering::SeqCst), 4);

    let mut c = util::client(&server);
    let mut linked = 0;
    for id in &ids {
        let spans = fetch_spans(&mut c, id);
        let member = spans
            .iter()
            .find(|s| field_str(s, "stage").as_deref() == Some("batch_member"))
            .expect("batch_member span");
        let link = field_str(member, "link").expect("batch link");
        let batch_spans = fetch_spans(&mut c, &link);
        let batch_stages: Vec<String> = batch_spans
            .iter()
            .filter_map(|s| field_str(s, "stage"))
            .collect();
        assert!(
            batch_stages.iter().any(|s| s == "batch"),
            "{batch_stages:?}"
        );
        for want in ["encode", "candidate_gen", "exact_score", "merge"] {
            assert!(
                batch_stages.iter().any(|s| s == want),
                "stage {want} missing from batch trace {batch_stages:?}"
            );
        }
        linked += 1;
    }
    assert_eq!(linked, 4);
    server.shutdown();
}
