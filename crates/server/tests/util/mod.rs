//! Shared setup for the gateway integration suites.

// Each integration bin compiles this module separately and uses a
// different subset of it.
#![allow(dead_code)]

use std::sync::Arc;

use lcdd_engine::ServingEngine;
use lcdd_server::{Backend, Server, ServerConfig};
use lcdd_testkit::load::HttpClient;

/// A gateway over a fresh in-memory serving engine; returns the serving
/// handle too so tests can churn the corpus from the inside.
pub fn serving_server(n_tables: usize, cfg: ServerConfig) -> (Server, Arc<ServingEngine>) {
    let serving = Arc::new(ServingEngine::new(lcdd_testkit::tiny_engine(
        lcdd_testkit::tiny_corpus(n_tables),
        2,
    )));
    let server =
        Server::start(Backend::Serving(Arc::clone(&serving)), cfg).expect("server must start");
    (server, serving)
}

/// A connected client for a server.
pub fn client(server: &Server) -> HttpClient {
    HttpClient::connect(server.addr()).expect("client must connect")
}
