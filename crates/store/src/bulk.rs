//! Bulk store fabrication: write an openable checkpoint store directly
//! from a stream of pre-encoded tables, bypassing live ingest entirely.
//!
//! Live ingest holds the whole corpus resident and re-derives global
//! statistics per batch — fine for thousands of tables, hopeless for a
//! million. This path instead streams slots straight into `LCDDSEG2`
//! segment images (one table in memory at a time per shard), writes an
//! empty WAL and a manifest, and hands the result to
//! [`crate::DurableEngine::open`] — typically with
//! [`crate::StoreOptions::cold_open`] set, so the fabricated corpus
//! serves queries without ever being resident in full.
//!
//! The generator contract mirrors recovery, not ingest: table `i` of
//! `n_tables` lands in shard `i % n_shards` at slot `i / n_shards`, and
//! the manifest's global order records exactly that, so the opened
//! engine is indistinguishable from one that ingested the same tables
//! round-robin.

use std::path::Path;

use lcdd_engine::persist::{meta_bytes, segment_image_bytes};
use lcdd_engine::{EncodedSlot, Engine, EngineError};

use crate::codec::write_framed;
use crate::durable::{
    segment_file_name, wal_file_name, META_FILE, META_MAGIC, SEGMENT_MAGIC, SEGMENT_VERSION,
    STORE_FILE_VERSION,
};
use crate::fault::FaultPoint;
use crate::manifest::{latest_manifest, write_manifest, Manifest};
use crate::wal::{WalWriter, WAL_HEADER_LEN};

/// Creates a store at `dir` holding `n_tables` generated tables spread
/// round-robin over `n_shards` shards. `template` supplies the serving
/// configuration (model weights + index config) — its own corpus, if
/// any, is ignored; the generator is called once per table index in
/// `0..n_tables`, shard-major (all of shard 0's tables, then shard 1's),
/// and each produced slot is encoded into the segment image immediately,
/// so peak memory is one segment image plus one slot — never the corpus.
///
/// Fails if `dir` already holds a store. The result recovers through the
/// ordinary [`crate::DurableEngine::open`] path, eager or cold.
pub fn create_bulk(
    dir: impl AsRef<Path>,
    template: &Engine,
    n_shards: usize,
    n_tables: u64,
    mut make: impl FnMut(u64) -> EncodedSlot,
) -> Result<(), EngineError> {
    if n_shards == 0 {
        return Err(EngineError::Store(
            "create_bulk: shard count must be at least 1".into(),
        ));
    }
    let dir = dir.as_ref().to_path_buf();
    std::fs::create_dir_all(&dir)?;
    if latest_manifest(&dir)?.is_some() {
        return Err(EngineError::Store(format!(
            "{} already holds a store; refusing to fabricate over it",
            dir.display()
        )));
    }
    let embed_dim = template.model().config.embed_dim;
    let epoch = 0u64;
    write_framed(
        &dir.join(META_FILE),
        META_MAGIC,
        STORE_FILE_VERSION,
        &meta_bytes(template)?,
        &None,
        FaultPoint::SegmentWrite,
    )?;
    let mut segments = Vec::with_capacity(n_shards);
    for shard in 0..n_shards {
        let image = segment_image_bytes(
            (shard as u64..n_tables).step_by(n_shards).map(&mut make),
            embed_dim,
        )?;
        let name = segment_file_name(epoch, shard);
        write_framed(
            &dir.join(&name),
            SEGMENT_MAGIC,
            SEGMENT_VERSION,
            &image,
            &None,
            FaultPoint::SegmentWrite,
        )?;
        segments.push(name);
    }
    let wal_file = wal_file_name(epoch);
    WalWriter::create(&dir.join(&wal_file), true)?;
    let order = (0..n_tables)
        .map(|i| ((i % n_shards as u64) as u32, (i / n_shards as u64) as u32))
        .collect();
    let manifest = Manifest {
        epoch,
        meta_file: META_FILE.to_string(),
        segments,
        wal_file,
        wal_offset: WAL_HEADER_LEN,
        order,
    };
    write_manifest(&dir, &manifest, &None)?;
    Ok(())
}
