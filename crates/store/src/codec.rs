//! Little-endian primitive codecs and the framed-file container every
//! store file uses.
//!
//! A *framed file* is `magic (8 bytes) | version u32 | payload_len u64 |
//! payload_hash u64 (FNV-1a) | payload` — the same envelope `LCDDSNP2`
//! snapshots carry, so every store artifact (segment, meta section,
//! manifest) gets total corruption detection: truncation and bit flips
//! anywhere surface as typed [`EngineError`]s, never a panic and never
//! silently different state.
//!
//! These primitives deliberately do *not* reuse the `lcdd_engine`
//! snapshot codec helpers: those operate on `impl Read` and classify
//! failures as `Io`/`Snapshot`, while store files want slice-bounded
//! reads with offset-carrying [`EngineError::Store`] messages. The only
//! contract the two sides share is the little-endian layout and
//! [`fnv1a64`] (imported from `lcdd_engine::persist`, the single
//! implementation); that bit-compatibility is pinned by the round-trip
//! and corruption suites.

use std::io::Read;
use std::path::Path;

use lcdd_engine::persist::fnv1a64;
use lcdd_fcm::EngineError;

use crate::fault::{self, FaultHook, FaultPoint};

/// Upper bound on any framed payload / variable-length field. Headers are
/// untrusted: without a cap a corrupt length would trigger a multi-GB
/// allocation before the read ever fails. Strictly below `u32::MAX` so
/// the `rstr` guard over a `u32` length can actually fire, and within
/// `usize` on 32-bit targets.
pub(crate) const MAX_PAYLOAD_BYTES: usize = 1 << 31;

pub(crate) fn wu32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn wu64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn wf64(w: &mut Vec<u8>, v: f64) {
    w.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn wstr(w: &mut Vec<u8>, s: &str) {
    wu32(w, s.len() as u32);
    w.extend_from_slice(s.as_bytes());
}

/// Reader over a byte slice with typed short-read errors (the closure
/// callers wrap the message with file context).
pub(crate) struct SliceReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        SliceReader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], EngineError> {
        if self.remaining() < n {
            return Err(EngineError::Store(format!(
                "payload ended early: wanted {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn ru32(&mut self) -> Result<u32, EngineError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn ru64(&mut self) -> Result<u64, EngineError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn rf64(&mut self) -> Result<f64, EngineError> {
        Ok(f64::from_bits(self.ru64()?))
    }

    pub(crate) fn rstr(&mut self) -> Result<String, EngineError> {
        let len = self.ru32()? as usize;
        if len > MAX_PAYLOAD_BYTES {
            return Err(EngineError::Store(format!(
                "string length {len} exceeds the payload cap"
            )));
        }
        let b = self.take(len)?;
        String::from_utf8(b.to_vec())
            .map_err(|e| EngineError::Store(format!("non-UTF-8 string: {e}")))
    }
}

/// Writes `payload` to `path` under a checksummed frame. The file is
/// written whole and fsynced; callers needing atomic replacement write to
/// a temp name and rename (see [`crate::manifest`]). The fault hook
/// (`point` names which instrumented operation this write counts as) is
/// consulted *before* any byte lands, so an injected failure is a write
/// that never happened.
pub(crate) fn write_framed(
    path: &Path,
    magic: &[u8; 8],
    version: u32,
    payload: &[u8],
    hook: &FaultHook,
    point: FaultPoint,
) -> Result<(), EngineError> {
    fault::check(hook, point)?;
    let mut buf = Vec::with_capacity(payload.len() + 28);
    buf.extend_from_slice(magic);
    wu32(&mut buf, version);
    wu64(&mut buf, payload.len() as u64);
    wu64(&mut buf, fnv1a64(payload));
    buf.extend_from_slice(payload);
    let mut f = std::fs::File::create(path)?;
    std::io::Write::write_all(&mut f, &buf)?;
    f.sync_all()?;
    Ok(())
}

/// Reads and verifies a framed file, returning its payload. Bad magic,
/// version, truncation or checksum mismatch surface as
/// [`EngineError::Store`] carrying the file name.
pub(crate) fn read_framed(
    path: &Path,
    magic: &[u8; 8],
    version: u32,
) -> Result<Vec<u8>, EngineError> {
    let name = path.display();
    let mut f = std::fs::File::open(path)
        .map_err(|e| EngineError::Store(format!("{name}: cannot open: {e}")))?;
    let mut head = [0u8; 28];
    f.read_exact(&mut head)
        .map_err(|e| EngineError::Store(format!("{name}: header ended early: {e}")))?;
    if &head[0..8] != magic {
        return Err(EngineError::Store(format!("{name}: bad magic")));
    }
    let got_version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    if got_version != version {
        return Err(EngineError::Store(format!(
            "{name}: unsupported version {got_version} (expected {version})"
        )));
    }
    let payload_len = u64::from_le_bytes([
        head[12], head[13], head[14], head[15], head[16], head[17], head[18], head[19],
    ]) as usize;
    if payload_len > MAX_PAYLOAD_BYTES {
        return Err(EngineError::Store(format!(
            "{name}: implausible payload length {payload_len}"
        )));
    }
    let expect_hash = u64::from_le_bytes([
        head[20], head[21], head[22], head[23], head[24], head[25], head[26], head[27],
    ]);
    // Bounded read: the buffer grows only as bytes arrive, so a corrupt
    // length cannot trigger an up-front allocation.
    let mut payload = Vec::new();
    std::io::Read::take(f, payload_len as u64)
        .read_to_end(&mut payload)
        .map_err(EngineError::Io)?;
    if payload.len() != payload_len {
        return Err(EngineError::Store(format!(
            "{name}: truncated: payload {} of {payload_len} bytes",
            payload.len()
        )));
    }
    let got = fnv1a64(&payload);
    if got != expect_hash {
        return Err(EngineError::Store(format!(
            "{name}: checksum mismatch: expected {expect_hash:#018x}, got {got:#018x}"
        )));
    }
    Ok(payload)
}

/// Best-effort directory fsync (required on some filesystems for renames
/// and new files to be durable; a failure is not actionable here).
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(f) = std::fs::File::open(dir) {
        let _ = f.sync_all();
    }
}
