//! [`DurableEngine`]: the serving engine with a durability contract.
//!
//! Wraps a [`ServingEngine`] so that every corpus mutation is **logged
//! before it is published**: the op (with its already-encoded FCM delta)
//! is appended to the WAL and — under the default [`StoreOptions`] —
//! fsynced *before* the new epoch becomes visible to readers. A process
//! that crashes at any instant recovers its exact corpus from
//! {latest checkpoint segments + WAL tail}, without re-running the
//! encoder on a single resident table.
//!
//! The lock-free read path is untouched: [`DurableEngine::search`] /
//! `search_batch` delegate straight to the serving engine's epoch
//! snapshot machinery and never take the store's writer lock.
//!
//! ## Write path
//!
//! ```text
//! insert/remove/compact/reshard
//!   '- writer lock ─ encode delta (inserts only)
//!        '- WAL append (+ fdatasync)      <- durability point
//!             '- apply + publish epoch    <- visibility point
//!                  '- checkpoint policy (ops/bytes since last)
//! ```
//!
//! No-ops are not logged: an insert of zero tables, a removal matching no
//! live id, a compact with no tombstones all return without touching the
//! WAL, so every logged record bumps the epoch by exactly one — which is
//! what lets each record carry `epoch_after` and recovery reproduce the
//! uncrashed engine's epoch numbering exactly.
//!
//! ## Checkpoints
//!
//! A checkpoint writes **only the shards dirtied since the previous
//! checkpoint** (detected by `Arc` identity — the serving engine's
//! copy-on-write mutation replaces the `Arc` of every shard it touches),
//! plus a fresh WAL file and a small manifest committed by atomic rename.
//! Clean shards are carried forward by file reference, so checkpoint cost
//! is proportional to the write working set, not the corpus.
//!
//! ## Recovery
//!
//! [`DurableEngine::open`] loads the newest valid manifest, reassembles
//! the engine from its segments, replays the WAL tail (pinning each
//! replayed epoch to the logged `epoch_after`), truncates a torn final
//! record if the crash left one, and resumes serving. Corrupt files
//! surface as typed [`EngineError::Wal`] / [`EngineError::Store`] /
//! [`EngineError::Snapshot`] values — never a panic.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use lcdd_engine::persist::{
    self, assemble_engine, encode_batch, live_order, meta_bytes, segment_bytes, EncodedTableBatch,
};
use lcdd_engine::{
    CacheStats, EngineError, EngineShard, EngineState, Query, SearchOptions, SearchResponse,
    ServingEngine, DEFAULT_COMPACTION_THRESHOLD,
};
use lcdd_fcm::FcmModel;
use lcdd_table::Table;

use crate::codec::{read_framed, sync_dir, write_framed, wstr, wu64, SliceReader};
use crate::fault::{FaultHook, FaultPoint};
use crate::instruments;
use crate::manifest::{
    latest_manifest, latest_manifest_impl, read_manifest, write_manifest, Manifest, MANIFEST_PREFIX,
};
use crate::wal::{self, WalOp, WalRecord, WalWriter, WAL_HEADER_LEN};

pub(crate) const META_MAGIC: &[u8; 8] = b"LCDDMET1";
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"LCDDSEG1";
pub(crate) const STORE_FILE_VERSION: u32 = 1;
/// Segment files carry their own version: bumped to 2 when the payload
/// became the memory-mappable `LCDDSEG2` image (fixed-layout summary +
/// aligned f32 blob), which is what makes [`StoreOptions::cold_open`]
/// possible. Meta and manifest files stay at [`STORE_FILE_VERSION`].
pub(crate) const SEGMENT_VERSION: u32 = 2;
pub(crate) const META_FILE: &str = "meta.seg";

/// Durability policy knobs.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// `fdatasync` the WAL after every append (and `fsync` every
    /// checkpoint artifact). `true` — the default — makes an acknowledged
    /// op survive power loss; `false` trades that for append throughput
    /// while keeping *process-crash* consistency (recovery yields a clean
    /// op prefix). Under power loss without fsync, out-of-order page
    /// writeback can instead surface as a typed corruption error at
    /// recovery — never a silently wrong corpus.
    pub sync_writes: bool,
    /// Checkpoint automatically after this many logged ops (0 disables
    /// the op trigger).
    pub checkpoint_every_ops: u64,
    /// Checkpoint automatically once this many WAL bytes accumulate since
    /// the last checkpoint (0 disables the byte trigger).
    pub checkpoint_every_bytes: u64,
    /// How many checkpoints (manifest + referenced files) to retain for
    /// fallback; older ones are garbage-collected. Clamped to at least 1.
    pub keep_checkpoints: usize,
    /// Injected-failure schedule for the robustness suites (see
    /// [`crate::fault::FaultPlan`]): fail or short-write the Nth WAL
    /// append/fsync, segment write or manifest write. `None` — the
    /// default and the only sensible production value — costs one
    /// `Option` test per instrumented operation.
    pub fault: FaultHook,
    /// Open checkpoint segments as memory-mapped cold tiers instead of
    /// decoding them into RAM. Recovery then costs one checksum pass per
    /// segment (after which the pages are handed back to the OS) plus the
    /// summary decode; table payloads page in on demand as queries score
    /// them. Search results are hit-for-hit identical to an eager open —
    /// only residency changes. `false` (the default) preserves the
    /// all-resident behaviour.
    pub cold_open: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            sync_writes: true,
            checkpoint_every_ops: 64,
            checkpoint_every_bytes: 8 << 20,
            keep_checkpoints: 2,
            fault: None,
            cold_open: false,
        }
    }
}

/// What one checkpoint wrote (and avoided writing) — the write-
/// amplification evidence `bench_store` reports.
#[derive(Clone, Debug)]
pub struct CheckpointStats {
    /// Epoch the checkpoint captured.
    pub epoch: u64,
    /// Shards in the captured state.
    pub shards_total: usize,
    /// Shards whose segment was rewritten (dirtied since the previous
    /// checkpoint).
    pub shards_written: usize,
    /// Bytes of segment payload written.
    pub bytes_written: u64,
    /// Bytes of clean segment files carried forward by reference.
    pub bytes_reused: u64,
}

/// What recovery found and did.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint recovery started from.
    pub checkpoint_epoch: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_ops: usize,
    /// Epoch the recovered engine serves at (equals the crashed engine's
    /// last acknowledged epoch).
    pub recovered_epoch: u64,
    /// Present when a torn final record was truncated away; describes
    /// what was dropped.
    pub truncated_tail: Option<String>,
    /// True when the newest manifest failed validation and recovery fell
    /// back to an older checkpoint. **Acknowledged ops logged after the
    /// newer (corrupt) checkpoint are NOT recovered** — they live in that
    /// checkpoint's WAL/segment files, which GC deliberately preserves
    /// (never deleting files newer than the retained manifests) so an
    /// operator can attempt manual salvage.
    pub fallback: bool,
}

/// A position in a store's WAL chain: the log file a reader has reached
/// and the byte offset just past the last record frame it consumed.
/// Cursors are handed out by [`DurableEngine::wal_tail_cursor`] /
/// [`DurableEngine::wal_cursor_for_epoch`] and advanced by
/// [`DurableEngine::wal_records_since`] — the leader half of WAL-shipping
/// replication uses them to resume a follower from exactly where it left
/// off.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalCursor {
    /// WAL file name within the store directory (`wal-<epoch>.log`).
    pub file: String,
    /// Byte offset just past the last consumed record frame.
    pub offset: u64,
}

/// Outcome of [`DurableEngine::apply_replicated`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicatedApply {
    /// The record advanced this replica by exactly one epoch (logged to
    /// the replica's own WAL first, then applied and published).
    Applied,
    /// The record's `epoch_after` was at or below the replica's epoch — a
    /// duplicate delivery, skipped idempotently without logging.
    AlreadyApplied,
}

/// A full checkpoint captured for shipping to a follower that cannot be
/// caught up record-by-record (first attach, or a resync after checksum
/// mismatch / WAL-chain truncation). Carries the manifest plus the raw
/// framed bytes of every file it references; each file keeps its own
/// checksum frame, so corruption in transit is caught at install or open
/// time, never served.
#[derive(Clone, Debug)]
pub struct CheckpointPackage {
    /// The checkpoint's manifest, normalized to replay from an empty WAL
    /// (records after the checkpoint arrive through the stream instead).
    pub manifest: Manifest,
    /// `(file name, raw framed contents)` for the meta section and every
    /// segment the manifest references.
    pub files: Vec<(String, Vec<u8>)>,
}

impl CheckpointPackage {
    /// Total payload bytes across the packaged files.
    pub fn payload_bytes(&self) -> u64 {
        self.files.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Serializes the package for shipping.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        let man = self.manifest.to_payload();
        wu64(&mut p, man.len() as u64);
        p.extend_from_slice(&man);
        wu64(&mut p, self.files.len() as u64);
        for (name, bytes) in &self.files {
            wstr(&mut p, name);
            wu64(&mut p, bytes.len() as u64);
            p.extend_from_slice(bytes);
        }
        p
    }

    /// Parses bytes produced by [`CheckpointPackage::to_bytes`].
    /// Malformed input is [`EngineError::Replication`] — the receiver's
    /// response is to request the package again, not to crash.
    pub fn from_bytes(bytes: &[u8]) -> Result<CheckpointPackage, EngineError> {
        let repl = |e: EngineError| EngineError::Replication(format!("checkpoint package: {e}"));
        let cap = |n: usize, what: &str| {
            if n > crate::codec::MAX_PAYLOAD_BYTES {
                Err(EngineError::Replication(format!(
                    "checkpoint package: implausible {what} length {n}"
                )))
            } else {
                Ok(n)
            }
        };
        let mut r = SliceReader::new(bytes);
        let man_len = cap(r.ru64().map_err(repl)? as usize, "manifest")?;
        let man_bytes = r.take(man_len).map_err(repl)?;
        let manifest = Manifest::from_payload(man_bytes, "shipped manifest").map_err(repl)?;
        let n_files = r.ru64().map_err(repl)? as usize;
        if n_files == 0 || n_files > 65_537 {
            return Err(EngineError::Replication(format!(
                "checkpoint package: implausible file count {n_files}"
            )));
        }
        let mut files = Vec::with_capacity(n_files);
        for _ in 0..n_files {
            let name = r.rstr().map_err(repl)?;
            let len = cap(r.ru64().map_err(repl)? as usize, "file")?;
            files.push((name, r.take(len).map_err(repl)?.to_vec()));
        }
        if r.remaining() != 0 {
            return Err(EngineError::Replication(format!(
                "checkpoint package: {} trailing bytes",
                r.remaining()
            )));
        }
        Ok(CheckpointPackage { manifest, files })
    }
}

struct StoreInner {
    wal: WalWriter,
    /// Ops logged since the last checkpoint.
    ops_since: u64,
    /// WAL bytes appended since the last checkpoint.
    bytes_since: u64,
    /// The authoritative (newest durable) manifest.
    current: Manifest,
    /// The shard `Arc`s as of the last checkpoint — `Arc::ptr_eq` against
    /// the live state identifies dirty shards. `None` forces the next
    /// checkpoint to rewrite everything (recovery with replayed ops).
    ckpt_shards: Option<Vec<Arc<EngineShard>>>,
    /// The failure of the most recent *automatic* checkpoint attempt, if
    /// any. Auto-checkpoints are best-effort: the triggering op is already
    /// logged and durable, so its result must not report a checkpoint
    /// problem as an op failure (see [`DurableEngine::last_checkpoint_error`]).
    checkpoint_error: Option<String>,
}

/// A [`ServingEngine`] whose corpus mutations are durable: WAL-logged
/// before publication, checkpointed incrementally, crash-recoverable via
/// [`DurableEngine::open`].
///
/// All mutation must go through this handle (the wrapped serving engine is
/// deliberately not exposed — a direct mutation would bypass the log and
/// silently void the recovery guarantee). Reads are lock-free exactly as
/// on [`ServingEngine`].
pub struct DurableEngine {
    serving: ServingEngine,
    dir: PathBuf,
    opts: StoreOptions,
    inner: Mutex<StoreInner>,
}

impl DurableEngine {
    // ---- lifecycle -------------------------------------------------------

    /// Initialises a fresh store at `dir` (created if absent) around
    /// `engine`: writes the meta section, a full checkpoint of every
    /// shard, an empty WAL and the first manifest. Fails with
    /// [`EngineError::Store`] if `dir` already holds a store — use
    /// [`DurableEngine::open`] to recover one.
    pub fn create(
        dir: impl AsRef<Path>,
        engine: lcdd_engine::Engine,
        opts: StoreOptions,
    ) -> Result<DurableEngine, EngineError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if latest_manifest(&dir)?.is_some() {
            return Err(EngineError::Store(format!(
                "{} already holds a store; open it instead of creating over it",
                dir.display()
            )));
        }
        let epoch = engine.epoch();
        write_framed(
            &dir.join(META_FILE),
            META_MAGIC,
            STORE_FILE_VERSION,
            &meta_bytes(&engine)?,
            &opts.fault,
            FaultPoint::SegmentWrite,
        )?;
        let state = engine.state();
        let mut segments = Vec::with_capacity(state.shards().len());
        for i in 0..state.shards().len() {
            let name = segment_file_name(epoch, i);
            write_framed(
                &dir.join(&name),
                SEGMENT_MAGIC,
                SEGMENT_VERSION,
                &segment_bytes(state, i)?,
                &opts.fault,
                FaultPoint::SegmentWrite,
            )?;
            segments.push(name);
        }
        let wal_file = wal_file_name(epoch);
        let mut wal = WalWriter::create(&dir.join(&wal_file), opts.sync_writes)?;
        wal.set_fault(opts.fault.clone());
        let manifest = Manifest {
            epoch,
            meta_file: META_FILE.to_string(),
            segments,
            wal_file,
            wal_offset: WAL_HEADER_LEN,
            order: live_order(state)?,
        };
        write_manifest(&dir, &manifest, &opts.fault)?;
        let serving = ServingEngine::new(engine);
        let ckpt_shards = Some(serving.snapshot().shards().to_vec());
        Ok(DurableEngine {
            serving,
            dir,
            opts,
            inner: Mutex::new(StoreInner {
                wal,
                ops_since: 0,
                bytes_since: 0,
                current: manifest,
                ckpt_shards,
                checkpoint_error: None,
            }),
        })
    }

    /// Recovers the store at `dir`: newest valid manifest → segments →
    /// WAL-tail replay → torn-tail truncation → serving. Replay splices
    /// the logged encodings back in without invoking the FCM encoder
    /// (`lcdd_fcm::table_encode_count` is flat across this call).
    ///
    /// Like [`lcdd_engine::Engine::load`], serving configuration is not
    /// corpus state: the recovered engine uses the oracle extractor and
    /// the default compaction threshold.
    pub fn open(
        dir: impl AsRef<Path>,
        opts: StoreOptions,
    ) -> Result<(DurableEngine, RecoveryReport), EngineError> {
        let recovery_start = std::time::Instant::now();
        let dir = dir.as_ref().to_path_buf();
        let (_, manifest, fallback) = latest_manifest_impl(&dir)?.ok_or_else(|| {
            EngineError::Store(format!("{}: no manifest (not a store?)", dir.display()))
        })?;
        let meta = read_framed(
            &dir.join(&manifest.meta_file),
            META_MAGIC,
            STORE_FILE_VERSION,
        )?;
        let mut engine = if opts.cold_open {
            // Cold tier: segments are mapped, checksum-verified and
            // summary-parsed, but no slot payload is decoded here — nor
            // anywhere below: WAL replay splices logged encodings in as
            // *new* resident slots and only an eviction that crosses the
            // compaction threshold materializes a mapped shard.
            let paths: Vec<PathBuf> = manifest.segments.iter().map(|n| dir.join(n)).collect();
            persist::assemble_engine_mapped(
                &meta,
                manifest.order.clone(),
                &paths,
                manifest.epoch,
                SEGMENT_MAGIC,
                SEGMENT_VERSION,
            )?
        } else {
            let segments: Vec<Vec<u8>> = manifest
                .segments
                .iter()
                .map(|name| read_framed(&dir.join(name), SEGMENT_MAGIC, SEGMENT_VERSION))
                .collect::<Result<_, _>>()?;
            assemble_engine(&meta, manifest.order.clone(), &segments, manifest.epoch)?
        };
        // Captured *before* replay: these Arcs mirror the segment files on
        // disk, so the next checkpoint's dirty detection stays exact even
        // for the shards replay is about to touch.
        let ckpt_shards: Vec<Arc<EngineShard>> = engine.state().shards().to_vec();

        let wal_path = dir.join(&manifest.wal_file);
        let scan = wal::scan(&wal_path, manifest.wal_offset)?;
        for (offset, record) in &scan.records {
            apply_record(&mut engine, record).map_err(|e| match e {
                EngineError::Wal(m) => {
                    EngineError::Wal(format!("replay of record ending at {offset}: {m}"))
                }
                other => other,
            })?;
        }
        engine.set_compaction_threshold(DEFAULT_COMPACTION_THRESHOLD);
        let recovered_epoch = engine.epoch();
        let mut wal = WalWriter::open(&wal_path, scan.valid_len, opts.sync_writes)?;
        wal.set_fault(opts.fault.clone());
        let report = RecoveryReport {
            checkpoint_epoch: manifest.epoch,
            replayed_ops: scan.records.len(),
            recovered_epoch,
            truncated_tail: scan.torn.clone(),
            fallback,
        };
        let bytes_since = scan.valid_len - manifest.wal_offset;
        let ops_since = scan.records.len() as u64;
        instruments::recoveries_total().inc();
        instruments::replayed_records().set(report.replayed_ops as u64);
        instruments::recovery_ms().set(recovery_start.elapsed().as_millis() as u64);
        Ok((
            DurableEngine {
                serving: ServingEngine::new(engine),
                dir,
                opts,
                inner: Mutex::new(StoreInner {
                    wal,
                    ops_since,
                    bytes_since,
                    current: manifest,
                    ckpt_shards: Some(ckpt_shards),
                    checkpoint_error: None,
                }),
            },
            report,
        ))
    }

    /// Tears the durable wrapper down to the inner serving engine (the
    /// store files stay on disk and can be [`DurableEngine::open`]ed
    /// again; further mutation through the returned engine is NOT logged).
    pub fn into_serving(self) -> ServingEngine {
        self.serving
    }

    // ---- read side (lock-free, delegating to the serving engine) --------

    /// Answers one typed query against the current published snapshot.
    pub fn search(
        &self,
        query: &Query,
        opts: &SearchOptions,
    ) -> Result<SearchResponse, EngineError> {
        self.serving.search(query, opts)
    }

    /// Answers a batch of queries from one snapshot (single epoch).
    pub fn search_batch(
        &self,
        queries: &[Query],
        opts: &SearchOptions,
    ) -> Vec<Result<SearchResponse, EngineError>> {
        self.serving.search_batch(queries, opts)
    }

    /// Pins the current corpus snapshot (see [`ServingEngine::snapshot`]).
    pub fn snapshot(&self) -> Arc<EngineState> {
        self.serving.snapshot()
    }

    /// Answers a query against a pinned snapshot (see
    /// [`ServingEngine::search_at`]).
    pub fn search_at(
        &self,
        state: &EngineState,
        query: &Query,
        opts: &SearchOptions,
    ) -> Result<SearchResponse, EngineError> {
        self.serving.search_at(state, query, opts)
    }

    /// Answers a batch against a pinned snapshot, through the query cache
    /// (see [`ServingEngine::search_batch_at`] — the gateway's coalesced
    /// single-epoch batch path).
    pub fn search_batch_at(
        &self,
        state: &Arc<EngineState>,
        queries: &[Query],
        opts: &SearchOptions,
    ) -> Vec<Result<SearchResponse, EngineError>> {
        self.serving.search_batch_at(state, queries, opts)
    }

    /// Query-cache counters of the underlying serving engine (lock-free
    /// atomics — the gateway's `/metrics` path reads them on every scrape).
    pub fn cache_stats(&self) -> CacheStats {
        self.serving.cache_stats()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> u64 {
        self.serving.epoch()
    }

    /// Number of live tables in the published state.
    pub fn len(&self) -> usize {
        self.serving.len()
    }

    /// True when the published state holds no live tables.
    pub fn is_empty(&self) -> bool {
        self.serving.is_empty()
    }

    /// The trained model serving this engine.
    pub fn model(&self) -> &FcmModel {
        self.serving.model()
    }

    /// The serving index configuration (observability pass-through).
    pub fn hybrid_config(&self) -> &lcdd_engine::HybridConfig {
        self.serving.hybrid_config()
    }

    /// Exports the published state as a plain `LCDDSNP2` snapshot file
    /// (readable by [`lcdd_engine::Engine::load`] — a portable backup,
    /// independent of the store directory).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), EngineError> {
        self.serving.save(path)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes (including the file header).
    pub fn wal_len(&self) -> u64 {
        self.lock().wal.len()
    }

    /// The durability policy in effect.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }

    // ---- write side ------------------------------------------------------

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Logs `record`, applies `apply`, updates the checkpoint policy
    /// counters. The WAL append (with fsync under the default options)
    /// strictly precedes the publish inside `apply` — the crash-
    /// consistency invariant everything else rests on.
    fn log_then_apply<T>(
        &self,
        inner: &mut StoreInner,
        record: WalRecord,
        apply: impl FnOnce() -> T,
    ) -> Result<T, EngineError> {
        let before = inner.wal.len();
        inner.wal.append(&record)?;
        let out = apply();
        inner.ops_since += 1;
        inner.bytes_since += inner.wal.len() - before;
        Ok(out)
    }

    /// Runs the checkpoint policy. Best-effort by design: the op that
    /// triggered it is already logged and durable, so a checkpoint failure
    /// is stashed (read it via [`DurableEngine::last_checkpoint_error`])
    /// instead of being misreported as an op failure — the store keeps
    /// running WAL-heavy and retries at the next trigger.
    fn maybe_checkpoint(&self, inner: &mut StoreInner) {
        let by_ops =
            self.opts.checkpoint_every_ops > 0 && inner.ops_since >= self.opts.checkpoint_every_ops;
        let by_bytes = self.opts.checkpoint_every_bytes > 0
            && inner.bytes_since >= self.opts.checkpoint_every_bytes;
        if by_ops || by_bytes {
            if let Err(e) = self.checkpoint_locked(inner) {
                inner.checkpoint_error = Some(e.to_string());
            }
        }
    }

    /// The failure message of the most recent automatic checkpoint
    /// attempt, if it failed; cleared by the next successful checkpoint.
    pub fn last_checkpoint_error(&self) -> Option<String> {
        self.lock().checkpoint_error.clone()
    }

    /// Ingests new tables durably: encodes the delta, logs the encoded
    /// batch, then splices it in and publishes. Returns the assigned
    /// global positions. On error the corpus is unchanged.
    pub fn insert_tables(&self, tables: Vec<Table>) -> Result<Vec<usize>, EngineError> {
        if tables.is_empty() {
            return Ok(Vec::new());
        }
        // Encode outside the store lock: the encoder reads only the
        // immutable model, and it dominates insert latency — other
        // mutations and wal_len()-style probes need not wait behind it.
        let batch = encode_batch(self.serving.model(), &tables);
        let batch_bytes = batch.to_bytes()?;
        let mut inner = self.lock();
        let record = WalRecord {
            epoch_after: self.serving.epoch() + 1,
            op: WalOp::Insert { batch: batch_bytes },
        };
        let assigned =
            self.log_then_apply(&mut inner, record, || self.serving.insert_encoded(batch))?;
        self.maybe_checkpoint(&mut inner);
        Ok(assigned)
    }

    /// Evicts live tables by id durably. Returns the number removed. A
    /// removal matching no live table is a no-op and is not logged.
    pub fn remove_tables(&self, ids: &[u64]) -> Result<usize, EngineError> {
        let mut inner = self.lock();
        let state = self.serving.snapshot();
        // Liveness pre-check so a no-op removal is never logged (the
        // epoch_after invariant requires every record to bump by one).
        // Short-circuits on the first live hit; only a fully no-op call
        // pays a complete scan on top of the removal's own pass.
        let id_set: HashSet<u64> = ids.iter().copied().collect();
        let any_live = (0..state.len()).any(|i| id_set.contains(&state.table_meta(i).id));
        if !any_live {
            return Ok(0);
        }
        let record = WalRecord {
            epoch_after: state.epoch() + 1,
            op: WalOp::Remove {
                ids: ids.to_vec(),
                threshold: self.serving.compaction_threshold(),
            },
        };
        let removed =
            self.log_then_apply(&mut inner, record, || self.serving.remove_tables(ids))?;
        self.maybe_checkpoint(&mut inner);
        Ok(removed)
    }

    /// Compacts tombstoned shards durably. A compact with nothing to
    /// reclaim is a no-op and is not logged.
    pub fn compact(&self) -> Result<(), EngineError> {
        let mut inner = self.lock();
        let state = self.serving.snapshot();
        if state.shards().iter().all(|sh| sh.n_dead() == 0) {
            return Ok(());
        }
        let record = WalRecord {
            epoch_after: state.epoch() + 1,
            op: WalOp::Compact,
        };
        self.log_then_apply(&mut inner, record, || self.serving.compact())?;
        self.maybe_checkpoint(&mut inner);
        Ok(())
    }

    /// Redistributes the corpus across `n_shards` durably.
    pub fn reshard(&self, n_shards: usize) -> Result<(), EngineError> {
        if n_shards == 0 {
            return Err(EngineError::InvalidConfig(
                "reshard: shard count must be at least 1".into(),
            ));
        }
        let mut inner = self.lock();
        let record = WalRecord {
            epoch_after: self.serving.epoch() + 1,
            op: WalOp::Reshard { n_shards },
        };
        self.log_then_apply(&mut inner, record, || self.serving.reshard(n_shards))??;
        self.maybe_checkpoint(&mut inner);
        Ok(())
    }

    /// Sets the auto-compaction threshold for future removals. Not logged
    /// by itself — each removal record captures the threshold in effect.
    pub fn set_compaction_threshold(&self, frac: f64) {
        let _guard = self.lock();
        self.serving.set_compaction_threshold(frac);
    }

    /// Takes a checkpoint now: writes segments for every shard dirtied
    /// since the last checkpoint, starts a fresh WAL, and commits a new
    /// manifest atomically. Old checkpoints beyond
    /// [`StoreOptions::keep_checkpoints`] are garbage-collected.
    pub fn checkpoint(&self) -> Result<CheckpointStats, EngineError> {
        let mut inner = self.lock();
        self.checkpoint_locked(&mut inner)
    }

    /// Instrumented wrapper around the checkpoint body: counts
    /// successes/failures and records duration and bytes written into the
    /// process-wide registry.
    fn checkpoint_locked(&self, inner: &mut StoreInner) -> Result<CheckpointStats, EngineError> {
        let start = std::time::Instant::now();
        let out = self.checkpoint_body(inner);
        match &out {
            Ok(stats) => {
                instruments::checkpoints_total().inc();
                instruments::checkpoint_bytes_written_total().add(stats.bytes_written);
                instruments::checkpoint_duration_ms().record(start.elapsed().as_millis() as u64);
            }
            Err(_) => instruments::checkpoint_failures_total().inc(),
        }
        out
    }

    fn checkpoint_body(&self, inner: &mut StoreInner) -> Result<CheckpointStats, EngineError> {
        let state = self.serving.snapshot();
        let epoch = state.epoch();
        let shards = state.shards();
        if epoch == inner.current.epoch {
            // Nothing was logged since the last checkpoint captured this
            // epoch; the manifest on disk is already exact.
            inner.ops_since = 0;
            inner.bytes_since = 0;
            inner.checkpoint_error = None;
            return Ok(CheckpointStats {
                epoch,
                shards_total: shards.len(),
                shards_written: 0,
                bytes_written: 0,
                bytes_reused: 0,
            });
        }
        let mut stats = CheckpointStats {
            epoch,
            shards_total: shards.len(),
            shards_written: 0,
            bytes_written: 0,
            bytes_reused: 0,
        };
        let mut segments = Vec::with_capacity(shards.len());
        for (i, sh) in shards.iter().enumerate() {
            let clean = inner.ckpt_shards.as_ref().is_some_and(|old| {
                old.len() == shards.len()
                    && inner.current.segments.len() == shards.len()
                    && Arc::ptr_eq(&old[i], sh)
            });
            if clean {
                let name = inner.current.segments[i].clone();
                stats.bytes_reused += std::fs::metadata(self.dir.join(&name))
                    .map(|m| m.len())
                    .unwrap_or(0);
                segments.push(name);
            } else {
                let name = segment_file_name(epoch, i);
                let payload = segment_bytes(&state, i)?;
                stats.bytes_written += payload.len() as u64;
                stats.shards_written += 1;
                write_framed(
                    &self.dir.join(&name),
                    SEGMENT_MAGIC,
                    SEGMENT_VERSION,
                    &payload,
                    &self.opts.fault,
                    FaultPoint::SegmentWrite,
                )?;
                segments.push(name);
            }
        }
        // Fresh WAL per checkpoint: the new manifest's replay starts at an
        // empty log, and the old WAL file stays untouched for fallback
        // recovery from the previous manifest.
        let wal_file = wal_file_name(epoch);
        let mut new_wal = WalWriter::create(&self.dir.join(&wal_file), self.opts.sync_writes)?;
        new_wal.set_fault(self.opts.fault.clone());
        let manifest = Manifest {
            epoch,
            meta_file: inner.current.meta_file.clone(),
            segments,
            wal_file,
            wal_offset: WAL_HEADER_LEN,
            order: live_order(&state)?,
        };
        write_manifest(&self.dir, &manifest, &self.opts.fault)?;
        inner.wal = new_wal;
        instruments::wal_rotations_total().inc();
        inner.ops_since = 0;
        inner.bytes_since = 0;
        inner.current = manifest;
        inner.ckpt_shards = Some(shards.to_vec());
        inner.checkpoint_error = None;
        self.collect_garbage(inner);
        Ok(stats)
    }

    /// Deletes manifests beyond the retention count and any `seg-` /
    /// `wal-` / temp file no retained manifest references. Only manifests
    /// that *validate* count toward retention — an unreadable manifest
    /// cannot protect its data files, so keeping it would silently evict
    /// an older, still-usable fallback checkpoint. Files from epochs
    /// **newer** than the newest retained manifest are never deleted:
    /// after a manifest-corruption fallback they are the only copy of
    /// acknowledged ops, kept for manual salvage (a later checkpoint
    /// reaching that epoch overwrites them in place). Best effort: GC
    /// failures never fail the checkpoint that triggered them.
    fn collect_garbage(&self, inner: &StoreInner) {
        let keep = self.opts.keep_checkpoints.max(1);
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let names: Vec<String> = entries
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .collect();
        let mut valid_manifests: Vec<(String, Manifest)> = names
            .iter()
            .filter(|n| n.starts_with(MANIFEST_PREFIX))
            .filter_map(|n| {
                read_manifest(&self.dir.join(n))
                    .ok()
                    .map(|m| (n.clone(), m))
            })
            .collect();
        // Newest first (names embed the epoch in fixed-width hex).
        valid_manifests.sort_by(|a, b| b.0.cmp(&a.0));
        let mut referenced: HashSet<String> = HashSet::new();
        referenced.insert(inner.current.meta_file.clone());
        let mut retained: HashSet<&String> = HashSet::new();
        let mut newest_retained_epoch = 0u64;
        for (name, man) in valid_manifests.iter().take(keep) {
            retained.insert(name);
            newest_retained_epoch = newest_retained_epoch.max(man.epoch);
            referenced.insert(man.meta_file.clone());
            referenced.insert(man.wal_file.clone());
            referenced.extend(man.segments.iter().cloned());
        }
        let superseded = |name: &str| file_epoch(name).is_some_and(|e| e <= newest_retained_epoch);
        for name in &names {
            let stale_manifest =
                name.starts_with(MANIFEST_PREFIX) && !retained.contains(name) && superseded(name);
            let stale_data = (name.starts_with("seg-") || name.starts_with("wal-"))
                && !referenced.contains(name)
                && superseded(name);
            let stale_tmp = name.starts_with(".tmp-");
            if stale_manifest || stale_data || stale_tmp {
                let _ = std::fs::remove_file(self.dir.join(name));
            }
        }
        sync_dir(&self.dir);
    }

    // ---- replication side ------------------------------------------------
    //
    // The leader half of WAL shipping (`lcdd_repl`) tails this store's own
    // log files through the cursor APIs below; the follower half applies
    // shipped records through [`DurableEngine::apply_replicated`], so a
    // replica is itself a fully crash-recoverable store. Errors meaning
    // "this cursor or stream is unusable as-is — resync" are typed
    // [`EngineError::Replication`]; the shipping layer reacts with
    // resume-from-offset or a full checkpoint transfer, never a panic.

    /// The cursor one past the last durable record — where a freshly
    /// attached follower that is already at [`DurableEngine::epoch`]
    /// starts tailing.
    pub fn wal_tail_cursor(&self) -> WalCursor {
        let inner = self.lock();
        WalCursor {
            file: inner.current.wal_file.clone(),
            offset: inner.wal.len(),
        }
    }

    /// Every record logged after `cursor`, in log order, with the cursor
    /// just past the last one. Walks the chain of rotated WAL files
    /// (checkpoints start a fresh log), holding the store lock so
    /// rotation and GC cannot race the read. A cursor the chain no longer
    /// covers (its file was garbage-collected, or its offset does not lie
    /// on a record boundary) is [`EngineError::Replication`] — the
    /// follower needs a checkpoint transfer instead.
    pub fn wal_records_since(
        &self,
        cursor: &WalCursor,
    ) -> Result<(Vec<WalRecord>, WalCursor), EngineError> {
        let inner = self.lock();
        self.collect_chain(&inner, cursor.clone(), None)
    }

    /// The cursor just past the record that produced `target` — where a
    /// follower already at epoch `target` resumes tailing. Starts from
    /// the newest on-disk checkpoint at or below `target` and walks
    /// forward. [`EngineError::Replication`] when the history needed is
    /// gone (garbage-collected) or `target` is beyond this store's
    /// durable epoch.
    pub fn wal_cursor_for_epoch(&self, target: u64) -> Result<WalCursor, EngineError> {
        let inner = self.lock();
        let mut base: Option<Manifest> = None;
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| EngineError::Replication(format!("cannot list store dir: {e}")))?;
        for entry in entries.flatten() {
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if !name.starts_with(MANIFEST_PREFIX) {
                continue;
            }
            let Ok(m) = read_manifest(&self.dir.join(&name)) else {
                continue;
            };
            if m.epoch <= target && base.as_ref().is_none_or(|b| m.epoch > b.epoch) {
                base = Some(m);
            }
        }
        let Some(base) = base else {
            return Err(EngineError::Replication(format!(
                "no checkpoint at or below epoch {target} (history garbage-collected)"
            )));
        };
        let cursor = WalCursor {
            file: base.wal_file.clone(),
            offset: base.wal_offset,
        };
        if base.epoch == target {
            return Ok(cursor);
        }
        let (records, cursor) = self.collect_chain(&inner, cursor, Some(target))?;
        match records.last() {
            Some(r) if r.epoch_after == target => Ok(cursor),
            _ => Err(EngineError::Replication(format!(
                "epoch {target} is beyond this store's durable history"
            ))),
        }
    }

    /// Walks the WAL chain from `cursor`, collecting records until the
    /// live log is exhausted or (with `stop_at`) a record reaches that
    /// epoch. Caller holds the store lock (`inner` witnesses it), so the
    /// chain is stable underneath.
    fn collect_chain(
        &self,
        inner: &StoreInner,
        mut cursor: WalCursor,
        stop_at: Option<u64>,
    ) -> Result<(Vec<WalRecord>, WalCursor), EngineError> {
        let mut out = Vec::new();
        loop {
            let path = self.dir.join(&cursor.file);
            if !path.exists() {
                return Err(EngineError::Replication(format!(
                    "WAL file {} no longer exists (chain garbage-collected past the cursor)",
                    cursor.file
                )));
            }
            let scan = wal::scan(&path, cursor.offset)
                .map_err(|e| EngineError::Replication(format!("tailing {}: {e}", cursor.file)))?;
            for (end, record) in scan.records {
                let epoch = record.epoch_after;
                out.push(record);
                cursor.offset = end;
                if stop_at == Some(epoch) {
                    return Ok((out, cursor));
                }
            }
            if cursor.file == inner.current.wal_file {
                return Ok((out, cursor));
            }
            // This file was rotated out by a checkpoint; move to the
            // next log in the chain (smallest epoch above this file's).
            let cur_epoch = file_epoch(&cursor.file).ok_or_else(|| {
                EngineError::Replication(format!("unparseable WAL file name {}", cursor.file))
            })?;
            cursor = WalCursor {
                file: self.next_wal_file(cur_epoch)?,
                offset: WAL_HEADER_LEN,
            };
        }
    }

    /// The WAL file with the smallest embedded epoch above `after`, or
    /// [`EngineError::Replication`] if the chain is broken there.
    fn next_wal_file(&self, after: u64) -> Result<String, EngineError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| EngineError::Replication(format!("cannot list store dir: {e}")))?;
        let mut best: Option<(u64, String)> = None;
        for entry in entries.flatten() {
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if !name.starts_with("wal-") {
                continue;
            }
            let Some(epoch) = file_epoch(&name) else {
                continue;
            };
            if epoch > after && best.as_ref().is_none_or(|(b, _)| epoch < *b) {
                best = Some((epoch, name));
            }
        }
        best.map(|(_, name)| name).ok_or_else(|| {
            EngineError::Replication(format!(
                "WAL chain broken: no successor log after epoch {after}"
            ))
        })
    }

    /// Captures the current checkpoint for shipping to a follower: the
    /// authoritative manifest plus the raw bytes of every file it
    /// references, read under the store lock so a concurrent checkpoint
    /// or GC cannot swap files out mid-read. The shipped manifest is
    /// normalized to replay from an empty WAL — records logged after the
    /// checkpoint travel through the record stream instead.
    pub fn export_checkpoint(&self) -> Result<CheckpointPackage, EngineError> {
        let inner = self.lock();
        let manifest = Manifest {
            wal_offset: WAL_HEADER_LEN,
            ..inner.current.clone()
        };
        let mut names: Vec<String> = Vec::with_capacity(manifest.segments.len() + 1);
        names.push(manifest.meta_file.clone());
        names.extend(manifest.segments.iter().cloned());
        names.dedup();
        let mut files = Vec::with_capacity(names.len());
        for name in names {
            let bytes = std::fs::read(self.dir.join(&name)).map_err(|e| {
                EngineError::Store(format!("export checkpoint: cannot read {name}: {e}"))
            })?;
            files.push((name, bytes));
        }
        Ok(CheckpointPackage { manifest, files })
    }

    /// Materializes a shipped checkpoint into `dir` (created if absent).
    /// Write order is crash-safe: data files first, then a fresh empty
    /// WAL, then the manifest — the commit point. A crash at any earlier
    /// instant leaves no manifest, so the directory is simply not (yet) a
    /// store; after this returns, [`DurableEngine::open`] on `dir`
    /// recovers exactly the packaged epoch.
    pub fn install_checkpoint(
        dir: impl AsRef<Path>,
        package: &CheckpointPackage,
    ) -> Result<(), EngineError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let have = |name: &String| package.files.iter().any(|(n, _)| n == name);
        for name in
            std::iter::once(&package.manifest.meta_file).chain(package.manifest.segments.iter())
        {
            if !have(name) {
                return Err(EngineError::Replication(format!(
                    "checkpoint package does not carry {name}, which its manifest references"
                )));
            }
        }
        for (name, bytes) in &package.files {
            // File names come off the wire: only bare names may touch
            // the target directory.
            if name.is_empty() || name.contains('/') || name.contains('\\') || name.contains("..") {
                return Err(EngineError::Replication(format!(
                    "checkpoint package file name {name:?} is not a bare file name"
                )));
            }
            let mut f = std::fs::File::create(dir.join(name))?;
            std::io::Write::write_all(&mut f, bytes)?;
            f.sync_all()?;
        }
        WalWriter::create(&dir.join(&package.manifest.wal_file), true)?;
        write_manifest(dir, &package.manifest, &None)?;
        Ok(())
    }

    /// Applies one record shipped from a leader. The replica logs the
    /// record to its **own** WAL first (so it is itself crash-
    /// recoverable), then applies and publishes — the same
    /// log-before-publish discipline as local mutation, and replay never
    /// re-runs the encoder because insert records carry the leader's
    /// already-encoded batch.
    ///
    /// Sequencing by `epoch_after` (every logged record bumps the epoch
    /// by exactly one): a duplicate delivery is skipped idempotently, a
    /// gap is [`EngineError::Replication`] — the caller resumes from its
    /// real offset or requests a checkpoint transfer.
    pub fn apply_replicated(&self, record: &WalRecord) -> Result<ReplicatedApply, EngineError> {
        let mut inner = self.lock();
        let current = self.serving.epoch();
        if record.epoch_after <= current {
            return Ok(ReplicatedApply::AlreadyApplied);
        }
        if record.epoch_after != current + 1 {
            return Err(EngineError::Replication(format!(
                "sequence gap: replica at epoch {current}, record jumps to {}",
                record.epoch_after
            )));
        }
        // Validate before logging: a record that cannot apply must never
        // enter this replica's WAL (replay would hit the same wall).
        let parsed_batch = match &record.op {
            WalOp::Insert { batch } => Some(EncodedTableBatch::from_bytes(batch).map_err(|e| {
                EngineError::Replication(format!("shipped insert batch does not parse: {e}"))
            })?),
            WalOp::Reshard { n_shards } if *n_shards == 0 => {
                return Err(EngineError::Replication(
                    "shipped reshard to zero shards".into(),
                ));
            }
            _ => None,
        };
        self.log_then_apply(&mut inner, record.clone(), || -> Result<(), EngineError> {
            match &record.op {
                WalOp::Insert { .. } => {
                    if let Some(batch) = parsed_batch {
                        self.serving.insert_encoded(batch);
                    }
                }
                WalOp::Remove { ids, threshold } => {
                    self.serving.set_compaction_threshold(*threshold);
                    self.serving.remove_tables(ids);
                }
                WalOp::Compact => {
                    self.serving.compact();
                }
                WalOp::Reshard { n_shards } => self.serving.reshard(*n_shards)?,
            }
            // Apply semantics can differ benignly from the leader's (a
            // logged compact that finds nothing to reclaim here); the
            // published epoch must not.
            self.serving.pin_epoch(record.epoch_after);
            Ok(())
        })??;
        self.maybe_checkpoint(&mut inner);
        Ok(ReplicatedApply::Applied)
    }
}

/// Applies one replayed record to a recovering engine, then pins the
/// epoch to the logged value (replay semantics can differ benignly — e.g.
/// a logged `compact` that is a no-op on the already-compacted recovered
/// state — but epochs must not).
fn apply_record(engine: &mut lcdd_engine::Engine, record: &WalRecord) -> Result<(), EngineError> {
    match &record.op {
        WalOp::Insert { batch } => {
            let batch = EncodedTableBatch::from_bytes(batch)?;
            engine.insert_encoded(batch);
        }
        WalOp::Remove { ids, threshold } => {
            engine.set_compaction_threshold(*threshold);
            engine.remove_tables(ids);
        }
        WalOp::Compact => {
            engine.compact();
        }
        WalOp::Reshard { n_shards } => {
            engine
                .reshard(*n_shards)
                .map_err(|e| EngineError::Wal(format!("reshard({n_shards}): {e}")))?;
        }
    }
    persist::force_epoch(engine, record.epoch_after);
    Ok(())
}

pub(crate) fn segment_file_name(epoch: u64, shard: usize) -> String {
    format!("seg-{epoch:016x}-{shard:04}.seg")
}

pub(crate) fn wal_file_name(epoch: u64) -> String {
    format!("wal-{epoch:016x}.log")
}

/// Extracts the 16-hex-digit epoch every store data file embeds
/// (`seg-<epoch>-<shard>.seg`, `wal-<epoch>.log`, `MANIFEST-<epoch>`).
fn file_epoch(name: &str) -> Option<u64> {
    let hex = name
        .strip_prefix("seg-")
        .or_else(|| name.strip_prefix("wal-"))
        .or_else(|| name.strip_prefix(MANIFEST_PREFIX))?;
    u64::from_str_radix(hex.get(..16)?, 16).ok()
}
