//! Fault-point injection for store I/O — the shim the robustness suites
//! use to fail the Nth write or fsync *deterministically* and prove the
//! store degrades into typed errors, never panics and never inconsistent
//! in-memory state.
//!
//! A [`FaultPlan`] is an `Arc`-shared schedule handed to the store via
//! [`crate::StoreOptions::fault`]. Each instrumented operation kind (a
//! [`FaultPoint`]) carries its own 1-based counter; a scheduled entry
//! `(point, nth)` trips exactly once, when that point's counter reaches
//! `nth`, and then disarms. Three trip modes:
//!
//! * **Error** — the operation fails up front with an injected
//!   `io::Error` before touching the file (a full write that never
//!   happened, a failed `fdatasync`).
//! * **Short write** ([`FaultPlan::short_write_at`], WAL appends only) —
//!   a *prefix* of the frame reaches the file before the error, the shape
//!   a crash or full disk leaves. Exercises the append rollback path: the
//!   writer must truncate the partial frame away or poison itself.
//!
//! Production code never constructs a plan; with `StoreOptions::fault ==
//! None` every check compiles down to an `Option` test. The plan is
//! internally synchronized, so one plan can be shared across the writer
//! thread and a checkpoint running elsewhere.

use std::io;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An instrumented store operation kind. Counters are per-point: the
/// "3rd `WalAppend`" and the "3rd `SegmentWrite`" are independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// One WAL record append (the frame write, before any fsync).
    WalAppend,
    /// One WAL `fdatasync` after a record append.
    WalSync,
    /// One checkpoint segment or meta-section file write.
    SegmentWrite,
    /// One manifest file write (the temp-file write before the rename).
    ManifestWrite,
}

impl FaultPoint {
    fn idx(self) -> usize {
        match self {
            FaultPoint::WalAppend => 0,
            FaultPoint::WalSync => 1,
            FaultPoint::SegmentWrite => 2,
            FaultPoint::ManifestWrite => 3,
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultPoint::WalAppend => "WAL append",
            FaultPoint::WalSync => "WAL fdatasync",
            FaultPoint::SegmentWrite => "segment write",
            FaultPoint::ManifestWrite => "manifest write",
        }
    }
}

/// What an armed entry does when its counter matches.
#[derive(Clone, Copy, Debug)]
enum TripMode {
    Error,
    /// Let `keep` bytes of the payload through, then error.
    Short {
        keep: usize,
    },
}

#[derive(Debug)]
struct Scheduled {
    point: FaultPoint,
    /// 1-based operation ordinal at which this entry trips.
    nth: u64,
    mode: TripMode,
}

#[derive(Debug, Default)]
struct PlanState {
    /// Operations seen so far, per [`FaultPoint::idx`].
    counts: [u64; 4],
    armed: Vec<Scheduled>,
    trips: u64,
}

/// What a consulted fault point should do. Only WAL appends honour
/// `Short`; every other point treats it as `Error`.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FaultDecision {
    Proceed,
    Fail,
    ShortWrite { keep: usize },
}

/// A deterministic schedule of injected store-I/O failures. See the
/// module docs; construct with [`FaultPlan::new`], arm with
/// [`FaultPlan::fail_at`] / [`FaultPlan::short_write_at`], hand to the
/// store via [`crate::StoreOptions::fault`].
#[derive(Debug, Default)]
pub struct FaultPlan {
    state: Mutex<PlanState>,
}

impl FaultPlan {
    /// An empty (never-tripping) plan, ready to arm and share.
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    fn lock(&self) -> MutexGuard<'_, PlanState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms an error at the `nth` (1-based) operation of `point`,
    /// counting from the plan's creation. Trips once, then disarms.
    pub fn fail_at(&self, point: FaultPoint, nth: u64) {
        self.lock().armed.push(Scheduled {
            point,
            nth,
            mode: TripMode::Error,
        });
    }

    /// Arms a short write at the `nth` (1-based) WAL append: `keep` bytes
    /// of the frame reach the file, then the append errors — the torn
    /// shape a crash or full disk leaves mid-write. Trips once.
    pub fn short_write_at(&self, nth: u64, keep: usize) {
        self.lock().armed.push(Scheduled {
            point: FaultPoint::WalAppend,
            nth,
            mode: TripMode::Short { keep },
        });
    }

    /// How many injected failures have actually fired so far.
    pub fn trips(&self) -> u64 {
        self.lock().trips
    }

    /// Operations of `point` observed so far (whether or not any tripped).
    pub fn count(&self, point: FaultPoint) -> u64 {
        self.lock().counts[point.idx()]
    }

    /// The error every tripped fault surfaces (`io::ErrorKind::Other`
    /// with an `"injected fault"` message — tests match on it).
    pub(crate) fn injected_error(point: FaultPoint) -> io::Error {
        io::Error::other(format!("injected fault: {}", point.label()))
    }

    /// Counts one operation of `point` and reports what it should do.
    pub(crate) fn consult(&self, point: FaultPoint) -> FaultDecision {
        let mut st = self.lock();
        st.counts[point.idx()] += 1;
        let n = st.counts[point.idx()];
        let Some(i) = st.armed.iter().position(|s| s.point == point && s.nth == n) else {
            return FaultDecision::Proceed;
        };
        let entry = st.armed.swap_remove(i);
        st.trips += 1;
        match entry.mode {
            TripMode::Error => FaultDecision::Fail,
            TripMode::Short { keep } => FaultDecision::ShortWrite { keep },
        }
    }
}

/// The optional shared plan a store carries. `None` (production) costs an
/// `Option` test per instrumented operation.
pub type FaultHook = Option<Arc<FaultPlan>>;

/// Consults `hook` at `point`; returns the injected error when the plan
/// says to fail outright. Short-write decisions are only meaningful for
/// WAL appends, which call [`FaultPlan::consult`] directly.
pub(crate) fn check(hook: &FaultHook, point: FaultPoint) -> io::Result<()> {
    match hook.as_deref().map(|p| p.consult(point)) {
        None | Some(FaultDecision::Proceed) => Ok(()),
        Some(FaultDecision::Fail) | Some(FaultDecision::ShortWrite { .. }) => {
            Err(FaultPlan::injected_error(point))
        }
    }
}
