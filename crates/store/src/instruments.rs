//! Store telemetry: named instruments in the process-wide
//! [`lcdd_obs::registry`].
//!
//! Every accessor is a get-or-register against the global registry, so
//! the Arcs are shared across all [`crate::DurableEngine`] instances in
//! the process (a test harness or an embedded replica set may hold
//! several). Consumers must therefore treat the counters as process
//! totals — assert monotone deltas, never absolute values.
//!
//! Hot-path instruments (the WAL append/fsync histograms) are fetched
//! once at [`crate::wal::WalWriter`] construction and held as fields;
//! cold paths (checkpoint, recovery) fetch on use.

use lcdd_obs::registry::{global, Counter, Gauge, Histogram};
use std::sync::Arc;

/// Nanoseconds per durable WAL append (frame write + fsync when enabled).
pub(crate) fn wal_append_ns() -> Arc<Histogram> {
    global().histogram(
        "lcdd_store_wal_append_ns",
        "WAL append latency in nanoseconds (frame write plus fsync when sync_writes is on).",
    )
}

/// Nanoseconds per WAL `fdatasync`.
pub(crate) fn wal_fsync_ns() -> Arc<Histogram> {
    global().histogram(
        "lcdd_store_wal_fsync_ns",
        "WAL fdatasync latency in nanoseconds.",
    )
}

/// Records appended to any WAL in this process.
pub(crate) fn wal_appends_total() -> Arc<Counter> {
    global().counter(
        "lcdd_store_wal_appends_total",
        "WAL records durably appended.",
    )
}

/// Fresh WAL files started by checkpoints.
pub(crate) fn wal_rotations_total() -> Arc<Counter> {
    global().counter(
        "lcdd_store_wal_rotations_total",
        "Fresh WAL files started by completed checkpoints.",
    )
}

/// Checkpoints that committed a manifest.
pub(crate) fn checkpoints_total() -> Arc<Counter> {
    global().counter(
        "lcdd_store_checkpoints_total",
        "Checkpoints completed (including no-op checkpoints at an unchanged epoch).",
    )
}

/// Checkpoint attempts that failed (stashed, store keeps running).
pub(crate) fn checkpoint_failures_total() -> Arc<Counter> {
    global().counter(
        "lcdd_store_checkpoint_failures_total",
        "Checkpoint attempts that failed; the store continues WAL-heavy and retries.",
    )
}

/// Segment bytes written by checkpoints (dirty shards only).
pub(crate) fn checkpoint_bytes_written_total() -> Arc<Counter> {
    global().counter(
        "lcdd_store_checkpoint_bytes_written_total",
        "Segment bytes written by checkpoints (clean shards are reused, not rewritten).",
    )
}

/// Wall-clock milliseconds per checkpoint.
pub(crate) fn checkpoint_duration_ms() -> Arc<Histogram> {
    global().histogram(
        "lcdd_store_checkpoint_duration_ms",
        "Checkpoint wall-clock duration in milliseconds.",
    )
}

/// Completed crash recoveries.
pub(crate) fn recoveries_total() -> Arc<Counter> {
    global().counter(
        "lcdd_store_recoveries_total",
        "Crash recoveries completed by DurableEngine::open.",
    )
}

/// Wall-clock milliseconds of the most recent recovery.
pub(crate) fn recovery_ms() -> Arc<Gauge> {
    global().gauge(
        "lcdd_store_recovery_ms",
        "Wall-clock milliseconds spent by the most recent recovery.",
    )
}

/// WAL records replayed by the most recent recovery.
pub(crate) fn replayed_records() -> Arc<Gauge> {
    global().gauge(
        "lcdd_store_replayed_records",
        "WAL records replayed by the most recent recovery.",
    )
}
