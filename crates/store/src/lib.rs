//! # lcdd-store
//!
//! Durability for the serving engine: a write-ahead log, a segmented
//! snapshot store with incremental checkpoints, and crash recovery — so a
//! crashed or restarted discovery server recovers its **exact** corpus
//! (hit-for-hit, bit-identical scores) without re-encoding a single
//! table.
//!
//! ```text
//! store-dir/
//!   meta.seg              configs + model weights   (written once)
//!   MANIFEST-<epoch>      checkpoint commit point   (atomic rename)
//!   seg-<epoch>-<shard>   one shard's live slots    (dirty shards only)
//!   wal-<epoch>.log       ops since that checkpoint (append + fsync)
//! ```
//!
//! Three layers, bottom up:
//!
//! * [`wal`] — an append-only log of corpus mutations, each record
//!   length-prefixed and FNV-1a-checksummed. Insert records carry the
//!   *already-encoded* FCM delta, so replay never re-runs the encoder.
//!   A torn final record (crash mid-append) is truncated on recovery;
//!   anything else malformed is a typed [`EngineError::Wal`].
//! * [`manifest`] — small framed files mapping a checkpoint epoch to its
//!   {meta section, per-shard segment files, WAL file + replay offset,
//!   global table order}, committed by atomic rename. Recovery takes the
//!   newest manifest that validates.
//! * [`DurableEngine`] — the serving facade: every mutation is WAL-logged
//!   (and fsynced, under default [`StoreOptions`]) **before** its epoch
//!   is published; a background checkpoint policy (ops/bytes since last)
//!   rewrites only the shards dirtied since the previous checkpoint. The
//!   lock-free read path of [`lcdd_engine::ServingEngine`] is untouched.
//!
//! The codecs live in [`lcdd_engine::persist`]. Segments carry the
//! memory-mappable `LCDDSEG2` image (summary + aligned f32 blob), so they
//! restore bit-identically whether decoded eagerly or served as a mapped
//! cold tier ([`StoreOptions::cold_open`]) — the recovery equivalence
//! suite asserts recovered == uncrashed at every record-boundary crash
//! point, and [`bulk::create_bulk`] fabricates million-table stores by
//! streaming slots straight into segment images.
//!
//! Production code in this crate is `unwrap`-free (lint enforced in CI):
//! corrupt stores surface as [`EngineError`] values, never panics.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bulk;
pub mod durable;
pub mod fault;
pub mod manifest;
pub mod wal;

mod codec;
mod instruments;

pub use bulk::create_bulk;
pub use durable::{
    CheckpointPackage, CheckpointStats, DurableEngine, RecoveryReport, ReplicatedApply,
    StoreOptions, WalCursor,
};
pub use fault::{FaultPlan, FaultPoint};
pub use lcdd_fcm::EngineError;
pub use manifest::{latest_manifest, read_manifest, Manifest};
pub use wal::{WalOp, WalRecord, WalScan, WalWriter, WAL_HEADER_LEN};
