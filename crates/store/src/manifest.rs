//! The checkpoint manifest: one small framed file per checkpoint mapping
//! an epoch to {meta section, one segment file per shard, the WAL file +
//! offset replay resumes from, the global table order}.
//!
//! Manifests are written to a temp name, fsynced, then renamed into
//! `MANIFEST-<epoch>` (rename is the atomic commit point — a crash
//! mid-checkpoint leaves the previous manifest authoritative and at most
//! an orphaned temp/segment file, which the next GC sweeps).
//!
//! [`latest_manifest`] scans the directory for the highest-epoch manifest
//! that *validates*; a corrupt newest manifest falls back to the next one
//! (best-effort: the fallback checkpoint plus its own WAL tail — ops
//! logged after a later checkpoint live in later WAL files and are not
//! chained). No valid manifest at all is [`EngineError::Store`].

use std::path::{Path, PathBuf};

use lcdd_fcm::EngineError;

use crate::codec::{read_framed, sync_dir, write_framed, wstr, wu32, wu64, SliceReader};
use crate::fault::{FaultHook, FaultPoint};

pub(crate) const MANIFEST_MAGIC: &[u8; 8] = b"LCDDMAN1";
pub(crate) const MANIFEST_VERSION: u32 = 1;
pub(crate) const MANIFEST_PREFIX: &str = "MANIFEST-";

/// Everything recovery needs to reassemble an engine at one checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Engine epoch the checkpointed state was at.
    pub epoch: u64,
    /// File the meta section (configs + model weights) lives in.
    pub meta_file: String,
    /// One segment file per shard, shard order.
    pub segments: Vec<String>,
    /// WAL file ops after this checkpoint append to.
    pub wal_file: String,
    /// Byte offset in `wal_file` replay resumes from.
    pub wal_offset: u64,
    /// Global ingest order in compacted slot coordinates.
    pub order: Vec<(u32, u32)>,
}

impl Manifest {
    /// The canonical file name for this manifest's epoch.
    pub fn file_name(&self) -> String {
        manifest_file_name(self.epoch)
    }

    pub(crate) fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        wu64(&mut p, self.epoch);
        wstr(&mut p, &self.meta_file);
        wstr(&mut p, &self.wal_file);
        wu64(&mut p, self.wal_offset);
        wu64(&mut p, self.segments.len() as u64);
        for s in &self.segments {
            wstr(&mut p, s);
        }
        wu64(&mut p, self.order.len() as u64);
        for &(s, l) in &self.order {
            wu32(&mut p, s);
            wu32(&mut p, l);
        }
        p
    }

    pub(crate) fn from_payload(payload: &[u8], name: &str) -> Result<Manifest, EngineError> {
        let ctx = |e: EngineError| match e {
            EngineError::Store(m) => EngineError::Store(format!("{name}: {m}")),
            other => other,
        };
        let mut r = SliceReader::new(payload);
        let epoch = r.ru64().map_err(ctx)?;
        let meta_file = r.rstr().map_err(ctx)?;
        let wal_file = r.rstr().map_err(ctx)?;
        let wal_offset = r.ru64().map_err(ctx)?;
        let n_segments = r.ru64().map_err(ctx)? as usize;
        if n_segments == 0 || n_segments > 65_536 {
            return Err(EngineError::Store(format!(
                "{name}: implausible segment count {n_segments}"
            )));
        }
        let mut segments = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            segments.push(r.rstr().map_err(ctx)?);
        }
        let n_order = r.ru64().map_err(ctx)? as usize;
        if n_order > crate::codec::MAX_PAYLOAD_BYTES / 8 {
            return Err(EngineError::Store(format!(
                "{name}: implausible order length {n_order}"
            )));
        }
        let mut order = Vec::with_capacity(n_order.min(65_536));
        for _ in 0..n_order {
            let s = r.ru32().map_err(ctx)?;
            let l = r.ru32().map_err(ctx)?;
            order.push((s, l));
        }
        if r.remaining() != 0 {
            return Err(EngineError::Store(format!(
                "{name}: {} trailing payload bytes",
                r.remaining()
            )));
        }
        Ok(Manifest {
            epoch,
            meta_file,
            segments,
            wal_file,
            wal_offset,
            order,
        })
    }
}

/// `MANIFEST-<epoch as 16 hex digits>` — lexicographic order is epoch
/// order, so directory listings sort newest-last.
pub(crate) fn manifest_file_name(epoch: u64) -> String {
    format!("{MANIFEST_PREFIX}{epoch:016x}")
}

/// Atomically publishes `manifest` into `dir`: temp write + fsync +
/// rename + directory fsync. After this returns, recovery will prefer it.
pub(crate) fn write_manifest(
    dir: &Path,
    manifest: &Manifest,
    hook: &FaultHook,
) -> Result<PathBuf, EngineError> {
    let final_path = dir.join(manifest.file_name());
    let tmp_path = dir.join(format!(".tmp-{}", manifest.file_name()));
    write_framed(
        &tmp_path,
        MANIFEST_MAGIC,
        MANIFEST_VERSION,
        &manifest.to_payload(),
        hook,
        FaultPoint::ManifestWrite,
    )?;
    std::fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir);
    Ok(final_path)
}

/// Reads and validates one manifest file.
pub fn read_manifest(path: &Path) -> Result<Manifest, EngineError> {
    let payload = read_framed(path, MANIFEST_MAGIC, MANIFEST_VERSION)?;
    Manifest::from_payload(&payload, &path.display().to_string())
}

/// True for exactly the names [`manifest_file_name`] produces — a
/// `MANIFEST-` prefix followed by 16 hex digits. Strays like
/// `MANIFEST-old.bak` are neither candidates nor evidence of a skipped
/// checkpoint.
fn is_manifest_name(name: &str) -> bool {
    name.strip_prefix(MANIFEST_PREFIX)
        .is_some_and(|hex| hex.len() == 16 && hex.bytes().all(|b| b.is_ascii_hexdigit()))
}

/// Scans `dir` for the newest manifest that validates, falling back past
/// corrupt ones. `Ok(None)` when no `MANIFEST-*` file exists at all;
/// [`EngineError::Store`] when manifests exist but none validates (the
/// error carries every per-file failure).
pub fn latest_manifest(dir: &Path) -> Result<Option<(PathBuf, Manifest)>, EngineError> {
    Ok(latest_manifest_impl(dir)?.map(|(path, manifest, _)| (path, manifest)))
}

/// [`latest_manifest`] plus whether any *newer* manifest was skipped as
/// corrupt — the signal recovery surfaces as
/// [`crate::RecoveryReport::fallback`] (acknowledged ops logged after the
/// skipped checkpoint are not recovered).
pub(crate) fn latest_manifest_impl(
    dir: &Path,
) -> Result<Option<(PathBuf, Manifest, bool)>, EngineError> {
    let mut candidates: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| EngineError::Store(format!("cannot list {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(is_manifest_name)
        })
        .collect();
    if candidates.is_empty() {
        return Ok(None);
    }
    // Newest first (names embed the epoch in fixed-width hex).
    candidates.sort();
    candidates.reverse();
    let mut failures = Vec::new();
    for path in candidates {
        match read_manifest(&path) {
            Ok(m) => return Ok(Some((path, m, !failures.is_empty()))),
            Err(e) => failures.push(format!("{e}")),
        }
    }
    Err(EngineError::Store(format!(
        "no valid manifest: {}",
        failures.join("; ")
    )))
}
