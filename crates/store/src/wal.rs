//! The write-ahead log: an append-only stream of corpus mutations, each
//! record length-prefixed and FNV-1a-checksummed.
//!
//! ## File layout
//!
//! ```text
//! magic   "LCDDWAL1"  (8 bytes)
//! version u32 (currently 1)
//! records, each:
//!   payload_len  u32
//!   payload_hash u64 (FNV-1a over the payload bytes)
//!   payload:
//!     kind        u8  (1 insert | 2 remove | 3 compact | 4 reshard)
//!     epoch_after u64 (the engine epoch once this op is applied)
//!     body        (kind-specific, see [`WalOp`])
//! ```
//!
//! Insert bodies carry the **already-encoded** FCM delta
//! ([`lcdd_engine::persist::EncodedTableBatch`] bytes), so replay splices
//! cached encodings back in and never re-runs the encoder.
//!
//! ## Torn tails vs corruption
//!
//! A crash mid-append leaves an *incomplete* final record (the frame
//! promises more bytes than the file holds). [`scan`] reports it as a torn
//! tail: replay stops at the last complete record and the writer truncates
//! the tail away — that is normal crash recovery, not an error.
//!
//! A *complete* record whose checksum does not match, whose length prefix
//! is implausible, or whose payload does not parse, is corruption —
//! surfaced as [`EngineError::Wal`], never a panic. One narrow ambiguity
//! is inherent to the format: damage to the final record's length prefix
//! that keeps it plausible but pushes it past the end of the file is
//! indistinguishable from a genuine torn write, and is resolved in favor
//! of truncation (the choice every length-prefixed WAL makes).
//!
//! ## fsync discipline
//!
//! [`WalWriter::append`] with `sync = true` (the default store policy)
//! issues `fdatasync` after every record: an acknowledged op survives
//! power loss. With `sync = false` the OS page cache decides. A *process*
//! crash (the page cache survives) still recovers a clean prefix — a
//! suffix of acknowledged records may be lost, never reordered. Under
//! *power loss*, unsynced pages can persist out of order, which can leave
//! a complete-looking mid-file record with a bad checksum; recovery
//! reports that as a typed [`EngineError::Wal`] rather than silently
//! picking a prefix — choosing what to salvage is then the operator's
//! call (an older checkpoint remains on disk).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lcdd_engine::persist::fnv1a64;
use lcdd_fcm::EngineError;
use lcdd_obs::registry::{Counter, Histogram};

use crate::codec::{wf64, wu64, SliceReader};
use crate::fault::{FaultDecision, FaultHook, FaultPlan, FaultPoint};
use crate::instruments;

pub(crate) const WAL_MAGIC: &[u8; 8] = b"LCDDWAL1";
pub(crate) const WAL_VERSION: u32 = 1;
/// Byte length of the WAL file header (magic + version).
pub const WAL_HEADER_LEN: u64 = 12;

/// Largest accepted record payload. A corrupt length prefix beyond this is
/// classified by position: at EOF it is a torn tail, mid-file it is
/// corruption.
const MAX_RECORD_BYTES: usize = 1 << 31;

/// One logged corpus mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// Ingest of an encoded batch ([`lcdd_engine::persist::EncodedTableBatch`]
    /// bytes — parsed lazily at replay).
    Insert { batch: Vec<u8> },
    /// Eviction by table id, with the auto-compaction threshold that was
    /// in effect (replay must compact at the same point).
    Remove { ids: Vec<u64>, threshold: f64 },
    /// Explicit compaction of every tombstoned shard.
    Compact,
    /// Redistribution across `n_shards`.
    Reshard { n_shards: usize },
}

/// A [`WalOp`] plus the epoch the engine reached by applying it — replay
/// pins recovered epochs to these values so recovered and uncrashed
/// engines agree epoch-for-epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct WalRecord {
    pub epoch_after: u64,
    pub op: WalOp,
}

impl WalRecord {
    /// Serializes the record to its WAL payload bytes (kind + epoch +
    /// body, **without** the length/checksum frame — the container adds
    /// its own). This is the wire format replication ships verbatim: a
    /// follower receiving these bytes appends and applies them without
    /// re-encoding anything.
    pub fn encode_payload(&self) -> Vec<u8> {
        self.payload()
    }

    /// Parses payload bytes produced by [`WalRecord::encode_payload`].
    /// Used by the replication transport, where the payload arrives in a
    /// stream frame rather than at a WAL file offset (error context
    /// therefore reports offset 0).
    pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, EngineError> {
        WalRecord::parse(payload, 0)
    }

    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match &self.op {
            WalOp::Insert { batch } => {
                p.push(1u8);
                wu64(&mut p, self.epoch_after);
                p.extend_from_slice(batch);
            }
            WalOp::Remove { ids, threshold } => {
                p.push(2u8);
                wu64(&mut p, self.epoch_after);
                wf64(&mut p, *threshold);
                wu64(&mut p, ids.len() as u64);
                for &id in ids {
                    wu64(&mut p, id);
                }
            }
            WalOp::Compact => {
                p.push(3u8);
                wu64(&mut p, self.epoch_after);
            }
            WalOp::Reshard { n_shards } => {
                p.push(4u8);
                wu64(&mut p, self.epoch_after);
                wu64(&mut p, *n_shards as u64);
            }
        }
        p
    }

    fn parse(payload: &[u8], offset: u64) -> Result<WalRecord, EngineError> {
        let wal_err = |m: String| EngineError::Wal(format!("record at offset {offset}: {m}"));
        let remap = |e: EngineError| match e {
            EngineError::Store(m) | EngineError::Snapshot(m) => wal_err(m),
            other => other,
        };
        if payload.is_empty() {
            return Err(wal_err("empty payload".into()));
        }
        let kind = payload[0];
        let mut r2 = SliceReader::new(&payload[1..]);
        let epoch_after = r2.ru64().map_err(remap)?;
        let op = match kind {
            1 => WalOp::Insert {
                batch: payload[1 + 8..].to_vec(),
            },
            2 => {
                let threshold = r2.rf64().map_err(remap)?;
                let n = r2.ru64().map_err(remap)? as usize;
                if n > MAX_RECORD_BYTES / 8 {
                    return Err(wal_err(format!("implausible id count {n}")));
                }
                let mut ids = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    ids.push(r2.ru64().map_err(remap)?);
                }
                if r2.remaining() != 0 {
                    return Err(wal_err(format!(
                        "{} trailing bytes in remove record",
                        r2.remaining()
                    )));
                }
                WalOp::Remove { ids, threshold }
            }
            3 => {
                if r2.remaining() != 0 {
                    return Err(wal_err(format!(
                        "{} trailing bytes in compact record",
                        r2.remaining()
                    )));
                }
                WalOp::Compact
            }
            4 => {
                let n_shards = r2.ru64().map_err(remap)? as usize;
                if r2.remaining() != 0 {
                    return Err(wal_err(format!(
                        "{} trailing bytes in reshard record",
                        r2.remaining()
                    )));
                }
                WalOp::Reshard { n_shards }
            }
            other => return Err(wal_err(format!("unknown op kind {other}"))),
        };
        Ok(WalRecord { epoch_after, op })
    }
}

/// Append handle over a WAL file.
pub struct WalWriter {
    file: File,
    len: u64,
    sync: bool,
    /// Set when a failed append could not be rolled back: the file may
    /// hold a partial frame, so further appends would write garbage after
    /// it and corrupt the log. A poisoned writer refuses to append.
    poisoned: bool,
    /// Injected-failure schedule (tests only; `None` in production).
    fault: FaultHook,
    /// Process-wide append-latency histogram, held as a field so the hot
    /// append path never touches the registry lock.
    append_ns: Arc<Histogram>,
    /// Process-wide `fdatasync`-latency histogram.
    fsync_ns: Arc<Histogram>,
    /// Process-wide count of records durably appended.
    appends: Arc<Counter>,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating any existing file),
    /// writes the header and makes it durable.
    pub fn create(path: &Path, sync: bool) -> Result<WalWriter, EngineError> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            len: WAL_HEADER_LEN,
            sync,
            poisoned: false,
            fault: None,
            append_ns: instruments::wal_append_ns(),
            fsync_ns: instruments::wal_fsync_ns(),
            appends: instruments::wal_appends_total(),
        })
    }

    /// Opens an existing WAL for appending at `valid_len`, truncating
    /// everything past it (the torn tail a [`scan`] identified).
    pub fn open(path: &Path, valid_len: u64, sync: bool) -> Result<WalWriter, EngineError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        if valid_len < WAL_HEADER_LEN {
            return Err(EngineError::Wal(format!(
                "valid length {valid_len} is shorter than the header"
            )));
        }
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        if sync {
            file.sync_all()?;
        }
        Ok(WalWriter {
            file,
            len: valid_len,
            sync,
            poisoned: false,
            fault: None,
            append_ns: instruments::wal_append_ns(),
            fsync_ns: instruments::wal_fsync_ns(),
            appends: instruments::wal_appends_total(),
        })
    }

    /// Attaches an injected-failure schedule consulted on every append
    /// and fsync (see [`crate::fault::FaultPlan`]). `None` detaches.
    pub fn set_fault(&mut self, fault: FaultHook) {
        self.fault = fault;
    }

    /// Bytes in the log up to and including the last appended record.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN
    }

    /// Appends one record; returns the log length after it. With
    /// `sync = true` the record is on stable storage when this returns —
    /// the durability point an acknowledged op gets.
    ///
    /// A failed append (short write, failed `fdatasync`) is rolled back by
    /// truncating the file to its pre-append length, so the log never
    /// accumulates a partial frame that a later successful append would
    /// bury mid-file. If even the rollback fails the writer poisons
    /// itself and refuses further appends.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, EngineError> {
        if self.poisoned {
            return Err(EngineError::Wal(
                "writer poisoned by an earlier failed append that could not be rolled back".into(),
            ));
        }
        let payload = record.payload();
        if payload.len() > MAX_RECORD_BYTES {
            return Err(EngineError::Wal(format!(
                "record payload of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let append_start = Instant::now();
        // Consult the fault schedule (tests only): a `Fail` decision
        // errors before any byte is written; a `ShortWrite` lands a
        // prefix of the frame — the torn shape a crash leaves — and then
        // errors, exercising the rollback path below for real.
        let append_decision = match self.fault.as_deref() {
            Some(plan) => plan.consult(FaultPoint::WalAppend),
            None => FaultDecision::Proceed,
        };
        let wrote = match append_decision {
            FaultDecision::Fail => Err(FaultPlan::injected_error(FaultPoint::WalAppend)),
            FaultDecision::ShortWrite { keep } => self
                .file
                .write_all(&frame[..keep.min(frame.len())])
                .and_then(|()| Err(FaultPlan::injected_error(FaultPoint::WalAppend))),
            FaultDecision::Proceed => self.file.write_all(&frame).and_then(|()| {
                if self.sync {
                    match self
                        .fault
                        .as_deref()
                        .map(|p| p.consult(FaultPoint::WalSync))
                    {
                        None | Some(FaultDecision::Proceed) => {
                            let fsync_start = Instant::now();
                            let synced = self.file.sync_data();
                            self.fsync_ns.record_duration(fsync_start.elapsed());
                            synced
                        }
                        Some(_) => Err(FaultPlan::injected_error(FaultPoint::WalSync)),
                    }
                } else {
                    Ok(())
                }
            }),
        };
        if let Err(e) = wrote {
            // Undo whatever partial frame (or unapplied complete frame —
            // a record whose fsync failed is never applied) hit the file.
            let rollback = self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.seek(SeekFrom::End(0)).map(|_| ()));
            if rollback.is_err() {
                self.poisoned = true;
            }
            return Err(EngineError::Wal(format!("append failed: {e}")));
        }
        self.len += frame.len() as u64;
        self.append_ns.record_duration(append_start.elapsed());
        self.appends.inc();
        Ok(self.len)
    }
}

/// Result of scanning a WAL from a byte offset.
#[derive(Debug)]
pub struct WalScan {
    /// Complete, checksum-valid records in log order, each with the log
    /// offset *after* its frame (the crash harness enumerates these as
    /// crash points).
    pub records: Vec<(u64, WalRecord)>,
    /// Log length through the last complete record — where an appender
    /// should truncate to.
    pub valid_len: u64,
    /// Present when the file ended inside a record (a torn tail cut off
    /// by a crash); describes what was dropped.
    pub torn: Option<String>,
}

/// Scans the WAL at `path` from byte offset `from` (typically a
/// manifest's WAL offset), validating the header and every record frame.
///
/// Complete-but-invalid records (checksum mismatch, unparseable payload)
/// are [`EngineError::Wal`]; an incomplete final record is a torn tail,
/// reported in [`WalScan::torn`] rather than as an error.
pub fn scan(path: &Path, from: u64) -> Result<WalScan, EngineError> {
    let mut bytes = Vec::new();
    File::open(path)
        .map_err(|e| EngineError::Wal(format!("cannot open WAL: {e}")))?
        .read_to_end(&mut bytes)?;
    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(EngineError::Wal(format!(
            "file of {} bytes is shorter than the header",
            bytes.len()
        )));
    }
    if &bytes[0..8] != WAL_MAGIC {
        return Err(EngineError::Wal("bad magic".into()));
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != WAL_VERSION {
        return Err(EngineError::Wal(format!(
            "unsupported version {version} (expected {WAL_VERSION})"
        )));
    }
    if from < WAL_HEADER_LEN || from as usize > bytes.len() {
        return Err(EngineError::Wal(format!(
            "replay offset {from} is outside the {}-byte log",
            bytes.len()
        )));
    }
    let mut pos = from as usize;
    let mut records = Vec::new();
    let mut torn = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 12 {
            torn = Some(format!(
                "{remaining}-byte partial frame at offset {pos} (crash mid-append)"
            ));
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        let expect_hash = u64::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]);
        // A crash mid-append writes a prefix of one frame, so a record
        // with >= 12 bytes present carries its true length; a length
        // beyond the cap is therefore corruption, not a tear.
        if len > MAX_RECORD_BYTES {
            return Err(EngineError::Wal(format!(
                "record at offset {pos}: implausible length prefix {len}"
            )));
        }
        if remaining - 12 < len {
            torn = Some(format!(
                "record at offset {pos} promises {len} payload bytes, {} remain (crash mid-append)",
                remaining - 12
            ));
            break;
        }
        let payload = &bytes[pos + 12..pos + 12 + len];
        let got = fnv1a64(payload);
        if got != expect_hash {
            return Err(EngineError::Wal(format!(
                "record at offset {pos}: checksum mismatch: expected {expect_hash:#018x}, got {got:#018x}"
            )));
        }
        let record = WalRecord::parse(payload, pos as u64)?;
        pos += 12 + len;
        records.push((pos as u64, record));
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        torn,
    })
}
