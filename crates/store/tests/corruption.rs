//! Corruption sweeps over the store's on-disk formats: bit flips and
//! truncations of WAL files, manifests and segments must surface as typed
//! [`EngineError`] values (`Wal` / `Store` / `Snapshot`) or recover to a
//! valid op prefix — **never** a panic and never a silently different
//! corpus.
//!
//! The sweep verdict for each damaged store:
//!
//! * `Err(EngineError::{Wal, Store, Snapshot, Io})` — corruption detected
//!   and typed; or
//! * `Ok(engine)` — the damage fell in a region recovery legitimately
//!   drops (a torn tail) or repairs around (manifest fallback); then the
//!   recovered engine must equal the serial replay of *some* prefix of
//!   the op script.

use lcdd_fcm::EngineError;
use lcdd_store::{latest_manifest, DurableEngine, StoreOptions};
use lcdd_testkit::crash::{
    apply_durable, apply_serial, assert_recovered_equals_serial, copy_dir, random_script,
    truncate_file, TempDir,
};
use lcdd_testkit::{corpus, query_like, tiny_engine, CorpusSpec};

const SEED: u64 = 0x57e9_a11d;
const N_BASE: usize = 5;
const N_SHARDS: usize = 2;
const N_OPS: usize = 5;

/// Sweep density: every byte of small files; strided samples plus all
/// structural offsets for the WAL.
const WAL_FLIP_SAMPLES: usize = if cfg!(debug_assertions) { 96 } else { 512 };

fn opts() -> StoreOptions {
    StoreOptions {
        sync_writes: false,
        checkpoint_every_ops: 0,
        checkpoint_every_bytes: 0,
        keep_checkpoints: 1,
        ..StoreOptions::default()
    }
}

struct SweepWorld {
    tmp: TempDir,
    base: Vec<lcdd_table::Table>,
    script: Vec<lcdd_testkit::crash::ScriptedOp>,
    /// The pristine store directory after the full script ran.
    golden: std::path::PathBuf,
}

fn build_world(tag: &str) -> SweepWorld {
    let tmp = TempDir::new(tag);
    let golden = tmp.subdir("golden");
    let base = corpus(&CorpusSpec::sized(SEED, N_BASE));
    let durable = DurableEngine::create(&golden, tiny_engine(base.clone(), N_SHARDS), opts())
        .expect("store creation");
    let base_ids: Vec<u64> = base.iter().map(|t| t.id).collect();
    let script = random_script(SEED, N_OPS, &base_ids);
    for op in &script {
        apply_durable(&durable, op);
    }
    SweepWorld {
        tmp,
        base,
        script,
        golden,
    }
}

/// The verdict for one damaged store: typed error, or equality with some
/// serial op prefix.
fn assert_error_or_prefix(world: &SweepWorld, dir: &std::path::Path, what: &str) {
    match DurableEngine::open(dir, opts()) {
        Err(
            EngineError::Wal(_)
            | EngineError::Store(_)
            | EngineError::Snapshot(_)
            | EngineError::Io(_),
        ) => {}
        Err(other) => panic!("{what}: expected a Wal/Store/Snapshot/Io error, got {other}"),
        Ok((recovered, _)) => {
            let queries = [query_like(&world.base[0]), query_like(&world.base[2])];
            let mut serial = tiny_engine(world.base.clone(), N_SHARDS);
            for cut in 0..=world.script.len() {
                if cut > 0 {
                    apply_serial(&mut serial, &world.script[cut - 1]);
                }
                if serial.epoch() != recovered.epoch() || serial.len() != recovered.len() {
                    continue;
                }
                // Candidate prefix: require full hit equivalence.
                assert_recovered_equals_serial(
                    &format!("{what}: as op prefix 0..{cut}"),
                    &recovered,
                    &serial,
                    &queries,
                );
                return;
            }
            panic!("{what}: recovered engine matches no serial op prefix");
        }
    }
}

fn flip_bit(path: &std::path::Path, byte: u64, bit: u8) {
    use std::io::{Read, Seek, SeekFrom, Write};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("flip: open");
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(byte)).expect("flip: seek");
    f.read_exact(&mut b).expect("flip: read");
    b[0] ^= 1 << bit;
    f.seek(SeekFrom::Start(byte)).expect("flip: seek back");
    f.write_all(&b).expect("flip: write");
}

fn file_len(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).expect("metadata").len()
}

#[test]
fn wal_bit_flip_sweep_is_typed_or_prefix_recoverable() {
    let world = build_world("walflip");
    let (_, manifest) = latest_manifest(&world.golden)
        .expect("manifest readable")
        .expect("manifest present");
    let wal_name = manifest.wal_file.clone();
    let wal_len = file_len(&world.golden.join(&wal_name));

    // Structural offsets (header + every record frame) plus an even
    // stride across the payload bytes.
    let scan = lcdd_store::wal::scan(&world.golden.join(&wal_name), manifest.wal_offset)
        .expect("pristine WAL scans");
    let mut offsets: Vec<u64> = (0..manifest.wal_offset.min(wal_len)).collect();
    let mut boundary = manifest.wal_offset;
    for &(end, _) in &scan.records {
        offsets.extend(boundary..(boundary + 12).min(wal_len));
        boundary = end;
    }
    let stride = (wal_len.max(1) / WAL_FLIP_SAMPLES as u64).max(1);
    offsets.extend((0..wal_len).step_by(stride as usize));
    offsets.sort_unstable();
    offsets.dedup();

    for &off in &offsets {
        for bit in [0u8, 5] {
            let dir = world.tmp.subdir(&format!("flip-{off}-{bit}"));
            copy_dir(&world.golden, &dir);
            flip_bit(&dir.join(&wal_name), off, bit);
            assert_error_or_prefix(&world, &dir, &format!("WAL flip byte {off} bit {bit}"));
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn wal_truncation_sweep_is_typed_or_prefix_recoverable() {
    let world = build_world("waltrunc");
    let (_, manifest) = latest_manifest(&world.golden)
        .expect("manifest readable")
        .expect("manifest present");
    let wal_name = manifest.wal_file.clone();
    let wal_len = file_len(&world.golden.join(&wal_name));
    let stride = (wal_len.max(1) / WAL_FLIP_SAMPLES as u64).max(1);
    let mut cuts: Vec<u64> = (0..wal_len).step_by(stride as usize).collect();
    cuts.extend(0..16.min(wal_len)); // header region byte-by-byte
    cuts.sort_unstable();
    cuts.dedup();
    for &cut in &cuts {
        let dir = world.tmp.subdir(&format!("cut-{cut}"));
        copy_dir(&world.golden, &dir);
        truncate_file(&dir.join(&wal_name), cut);
        assert_error_or_prefix(&world, &dir, &format!("WAL truncated to {cut} bytes"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn manifest_bit_flip_and_truncation_sweep_is_typed() {
    let world = build_world("manflip");
    let (man_path, _) = latest_manifest(&world.golden)
        .expect("manifest readable")
        .expect("manifest present");
    let man_name = man_path
        .file_name()
        .and_then(|n| n.to_str())
        .expect("manifest name")
        .to_string();
    let len = file_len(&man_path);
    // Manifests are small: flip every byte, truncate at every eighth.
    for off in 0..len {
        let dir = world.tmp.subdir(&format!("mflip-{off}"));
        copy_dir(&world.golden, &dir);
        flip_bit(&dir.join(&man_name), off, 3);
        // keep_checkpoints = 1 leaves a single manifest: any flip must be
        // a typed Store error (nothing to fall back to).
        match DurableEngine::open(&dir, opts()) {
            Err(EngineError::Store(_)) => {}
            Err(other) => panic!("manifest flip byte {off}: expected Store error, got {other}"),
            Ok(_) => panic!("manifest flip byte {off}: corrupt manifest accepted"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
    for cut in (0..len).step_by(8) {
        let dir = world.tmp.subdir(&format!("mcut-{cut}"));
        copy_dir(&world.golden, &dir);
        truncate_file(&dir.join(&man_name), cut);
        match DurableEngine::open(&dir, opts()) {
            Err(EngineError::Store(_)) => {}
            Err(other) => panic!("manifest cut at {cut}: expected Store error, got {other}"),
            Ok(_) => panic!("manifest cut at {cut}: truncated manifest accepted"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn segment_and_meta_corruption_is_typed() {
    let world = build_world("segflip");
    let (_, manifest) = latest_manifest(&world.golden)
        .expect("manifest readable")
        .expect("manifest present");
    let mut files = manifest.segments.clone();
    files.push(manifest.meta_file.clone());
    for name in &files {
        let len = file_len(&world.golden.join(name));
        let stride = (len.max(1) / 64).max(1);
        for off in (0..len).step_by(stride as usize) {
            let dir = world.tmp.subdir(&format!("seg-{name}-{off}"));
            copy_dir(&world.golden, &dir);
            flip_bit(&dir.join(name), off, 6);
            match DurableEngine::open(&dir, opts()) {
                Err(EngineError::Store(_) | EngineError::Snapshot(_) | EngineError::Wal(_)) => {}
                Err(other) => {
                    panic!("{name} flip byte {off}: expected typed store error, got {other}")
                }
                Ok(_) => panic!("{name} flip byte {off}: corrupt file accepted"),
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

#[test]
fn corrupt_newest_manifest_falls_back_to_previous_checkpoint() {
    let tmp = TempDir::new("fallback");
    let dir = tmp.subdir("store");
    let base = corpus(&CorpusSpec::sized(SEED ^ 1, N_BASE));
    let durable = DurableEngine::create(
        &dir,
        tiny_engine(base.clone(), N_SHARDS),
        StoreOptions {
            sync_writes: false,
            checkpoint_every_ops: 0,
            checkpoint_every_bytes: 0,
            keep_checkpoints: 2,
            ..StoreOptions::default()
        },
    )
    .expect("store creation");
    let extra = {
        let mut t = corpus(&CorpusSpec::sized(SEED ^ 2, 1));
        t[0].id = 777;
        t[0].name = "fallback-extra".into();
        t
    };
    durable
        .insert_tables(extra)
        .expect("insert before checkpoint");
    durable.checkpoint().expect("manual checkpoint");
    let (newest, _) = latest_manifest(&dir)
        .expect("manifest readable")
        .expect("manifest present");
    flip_bit(&newest, 40, 2);
    // The newest manifest is damaged; recovery must fall back to the
    // creation checkpoint + its WAL (which still holds the insert) and
    // reach the same final corpus.
    let (recovered, report) = DurableEngine::open(&dir, opts()).expect("fallback recovery");
    assert!(
        report.fallback,
        "skipping a corrupt newer manifest must be reported"
    );
    assert_eq!(
        report.replayed_ops, 1,
        "the insert replays from the old WAL"
    );
    assert_eq!(recovered.len(), N_BASE + 1);
    assert_eq!(recovered.epoch(), 1);
}
