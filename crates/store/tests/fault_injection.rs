//! Fault-point injection on store I/O (via `StoreOptions::fault`):
//! proves that a failed WAL append/fsync, a short (torn) write, or a
//! failed checkpoint segment/manifest write surfaces as a **typed
//! error** — never a panic — and that the failure is *invisible*: the
//! serving epoch and cache stay untouched, the log stays clean for the
//! appends around the failure, and recovery replays exactly the
//! acknowledged ops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lcdd_engine::SearchOptions;
use lcdd_fcm::EngineError;
use lcdd_store::{latest_manifest, wal, DurableEngine, FaultPlan, FaultPoint, StoreOptions};
use lcdd_table::Table;
use lcdd_testkit::crash::{assert_recovered_equals_serial, assert_same_hits_bitwise, TempDir};
use lcdd_testkit::{corpus, queries_for, query_like, tiny_engine, CorpusSpec};

fn opts_with(plan: &Arc<FaultPlan>, sync_writes: bool, checkpoint_every_ops: u64) -> StoreOptions {
    StoreOptions {
        sync_writes,
        checkpoint_every_ops,
        keep_checkpoints: 2,
        fault: Some(plan.clone()),
        ..StoreOptions::default()
    }
}

/// A small batch of fresh tables with ids disjoint from the base corpus.
fn fresh_tables(tag: u64, n: usize, next_id: &mut u64) -> Vec<Table> {
    let mut tables = corpus(&CorpusSpec {
        seed: 0xFA_u64 ^ (tag << 8),
        n_tables: n,
        series_len: 48,
        near_dup_every: 0,
    });
    for t in &mut tables {
        t.id = *next_id;
        t.name = format!("fresh{tag}-{}", t.id);
        *next_id += 1;
    }
    tables
}

/// The shape all single-fault tests share: op 1 succeeds, op 2 hits the
/// armed fault and must be typed + invisible, op 3 succeeds, and recovery
/// replays exactly ops 1 and 3 (the serial oracle).
fn run_invisible_failure_case(tag: &str, sync_writes: bool, arm: impl Fn(&Arc<FaultPlan>)) {
    let tmp = TempDir::new(tag);
    let base = corpus(&CorpusSpec::sized(0xF417, 6));
    let plan = FaultPlan::new();
    let opts = opts_with(&plan, sync_writes, 10_000);
    let dir = tmp.subdir("store");
    let store = DurableEngine::create(&dir, tiny_engine(base.clone(), 2), opts.clone())
        .expect("store create");
    let mut serial = tiny_engine(base.clone(), 2);
    let mut next_id = 1000;

    // Op 1: clean.
    let t1 = fresh_tables(1, 2, &mut next_id);
    store.insert_tables(t1.clone()).expect("clean insert");
    serial.insert_tables(t1);

    // Op 2: the armed fault. Typed error, nothing observable changes.
    arm(&plan);
    let epoch = store.epoch();
    let len = store.len();
    let wal_len = store.wal_len();
    let probe = query_like(&base[0]);
    let sopts = SearchOptions::default();
    let before = store.search(&probe, &sopts).expect("probe before");
    let t2 = fresh_tables(2, 2, &mut next_id);
    let err = store
        .insert_tables(t2)
        .expect_err("the armed fault must fail the op");
    assert!(
        matches!(err, EngineError::Wal(_)),
        "{tag}: append-path faults must surface as EngineError::Wal, got {err:?}"
    );
    assert!(
        err.to_string().contains("injected fault"),
        "{tag}: unexpected error text {err}"
    );
    assert_eq!(plan.trips(), 1, "{tag}: exactly the armed fault fired");
    assert_eq!(
        store.epoch(),
        epoch,
        "{tag}: a failed append must not publish an epoch"
    );
    assert_eq!(store.len(), len, "{tag}: live count must be untouched");
    assert_eq!(
        store.wal_len(),
        wal_len,
        "{tag}: the log must be rolled back"
    );
    let after = store.search(&probe, &sopts).expect("probe after");
    assert_same_hits_bitwise(
        &format!("{tag}: cache untouched by failed append"),
        &before,
        &after,
    );

    // Op 3: the log accepts the next append, and replay reads it.
    let t3 = fresh_tables(3, 2, &mut next_id);
    store
        .insert_tables(t3.clone())
        .expect("append after the error");
    serial.insert_tables(t3);
    drop(store);
    let (recovered, report) = DurableEngine::open(&dir, opts).expect("recovery");
    assert_eq!(
        report.replayed_ops, 2,
        "{tag}: exactly the acknowledged ops replay"
    );
    assert!(
        report.truncated_tail.is_none(),
        "{tag}: rollback left no torn frame"
    );
    let queries = queries_for(&base, 4);
    assert_recovered_equals_serial(&format!("{tag}: recovered"), &recovered, &serial, &queries);
}

#[test]
fn failed_wal_append_is_typed_and_invisible() {
    run_invisible_failure_case("fi-append", false, |plan| {
        // The seed engine's create doesn't append; op 2 is the 2nd append.
        plan.fail_at(FaultPoint::WalAppend, 2);
    });
}

#[test]
fn failed_fsync_never_publishes_the_epoch() {
    run_invisible_failure_case("fi-fsync", true, |plan| {
        plan.fail_at(FaultPoint::WalSync, 2);
    });
}

#[test]
fn short_write_rolls_back_to_a_clean_log() {
    run_invisible_failure_case("fi-short", false, |plan| {
        // 7 bytes of the frame land before the error — the torn shape a
        // crash or full disk leaves mid-write.
        plan.short_write_at(2, 7);
    });
}

#[test]
fn short_write_leaves_no_partial_frame_buried_in_the_log() {
    // Beyond recovery equality: scan the log bytes directly and prove the
    // rolled-back partial frame is gone (a later append would otherwise
    // bury it mid-file where every replay would trip on it).
    let tmp = TempDir::new("fi-scan");
    let base = corpus(&CorpusSpec::sized(0x5CA9, 4));
    let plan = FaultPlan::new();
    let opts = opts_with(&plan, false, 10_000);
    let dir = tmp.subdir("store");
    let store =
        DurableEngine::create(&dir, tiny_engine(base.clone(), 2), opts).expect("store create");
    let mut next_id = 1000;
    store
        .insert_tables(fresh_tables(1, 1, &mut next_id))
        .expect("clean insert");
    plan.short_write_at(2, 9);
    store
        .insert_tables(fresh_tables(2, 1, &mut next_id))
        .expect_err("short write fails the op");
    store
        .insert_tables(fresh_tables(3, 1, &mut next_id))
        .expect("the log accepts the next append");
    let (_, manifest) = latest_manifest(dir.as_path())
        .expect("manifest readable")
        .expect("store has a manifest");
    let scan = wal::scan(&dir.join(&manifest.wal_file), manifest.wal_offset)
        .expect("the log must scan cleanly end to end");
    assert_eq!(
        scan.records.len(),
        2,
        "exactly the two acknowledged appends"
    );
    assert!(scan.torn.is_none(), "no torn frame mid-log");
    assert_eq!(scan.valid_len, store.wal_len(), "every byte accounted for");
}

#[test]
fn segment_write_fault_is_stashed_and_the_next_checkpoint_heals() {
    let tmp = TempDir::new("fi-segment");
    let base = corpus(&CorpusSpec::sized(0x5E6, 6));
    let plan = FaultPlan::new();
    // Checkpoint every op: each insert triggers the checkpoint policy.
    let opts = opts_with(&plan, false, 1);
    let dir = tmp.subdir("store");
    let store = DurableEngine::create(&dir, tiny_engine(base.clone(), 2), opts.clone())
        .expect("store create");
    let mut serial = tiny_engine(base.clone(), 2);
    let mut next_id = 1000;

    // Arm the next segment write (create already consumed a few).
    plan.fail_at(
        FaultPoint::SegmentWrite,
        plan.count(FaultPoint::SegmentWrite) + 1,
    );
    let manifest_epoch_before = latest_manifest(dir.as_path())
        .expect("manifest readable")
        .expect("manifest present")
        .1
        .epoch;
    let t1 = fresh_tables(1, 2, &mut next_id);
    // The op itself succeeds — it was logged and is durable; only the
    // best-effort checkpoint behind it failed, and that is stashed.
    store.insert_tables(t1.clone()).expect("op must not fail");
    serial.insert_tables(t1);
    let stashed = store
        .last_checkpoint_error()
        .expect("failed checkpoint must be stashed");
    assert!(stashed.contains("injected fault"), "stashed: {stashed}");
    let manifest_epoch_after = latest_manifest(dir.as_path())
        .expect("manifest readable")
        .expect("manifest present")
        .1
        .epoch;
    assert_eq!(
        manifest_epoch_before, manifest_epoch_after,
        "a failed checkpoint must not commit a manifest"
    );

    // The next trigger retries and heals.
    let t2 = fresh_tables(2, 2, &mut next_id);
    store.insert_tables(t2.clone()).expect("next op");
    serial.insert_tables(t2);
    assert_eq!(
        store.last_checkpoint_error(),
        None,
        "a successful checkpoint clears the stash"
    );
    assert_eq!(
        latest_manifest(dir.as_path()).unwrap().unwrap().1.epoch,
        store.epoch(),
        "the healed checkpoint commits at the live epoch"
    );

    // The WAL-heavy window (op durable, checkpoint failed) must recover.
    drop(store);
    let (recovered, _) = DurableEngine::open(&dir, opts).expect("recovery");
    let queries = queries_for(&base, 4);
    assert_recovered_equals_serial("fi-segment: recovered", &recovered, &serial, &queries);
}

#[test]
fn manifest_write_fault_recovers_from_the_newest_valid_manifest() {
    let tmp = TempDir::new("fi-manifest");
    let base = corpus(&CorpusSpec::sized(0x3A11, 6));
    let plan = FaultPlan::new();
    let opts = opts_with(&plan, false, 1);
    let dir = tmp.subdir("store");
    let store = DurableEngine::create(&dir, tiny_engine(base.clone(), 2), opts.clone())
        .expect("store create");
    let mut serial = tiny_engine(base.clone(), 2);
    let mut next_id = 1000;

    // Op 1 checkpoints cleanly; its manifest is the fallback.
    let t1 = fresh_tables(1, 2, &mut next_id);
    store.insert_tables(t1.clone()).expect("clean op");
    serial.insert_tables(t1);
    assert_eq!(store.last_checkpoint_error(), None);

    // Op 2's checkpoint dies at the manifest write — after segments and
    // the fresh WAL already landed. Nothing may be half-committed: the
    // newest *valid* manifest is still op 1's, and op 2 lives in that
    // manifest's WAL.
    plan.fail_at(
        FaultPoint::ManifestWrite,
        plan.count(FaultPoint::ManifestWrite) + 1,
    );
    let t2 = fresh_tables(2, 2, &mut next_id);
    store
        .insert_tables(t2.clone())
        .expect("op is durable regardless");
    serial.insert_tables(t2);
    let stashed = store.last_checkpoint_error().expect("stashed failure");
    assert!(stashed.contains("injected fault"), "stashed: {stashed}");

    // Crash here: recovery must fall back to op 1's manifest and replay
    // op 2 from its WAL — the no-half-committed-manifest guarantee.
    drop(store);
    let (recovered, report) = DurableEngine::open(&dir, opts).expect("fallback recovery");
    assert!(
        report.replayed_ops >= 1,
        "op 2 must replay from the fallback manifest's WAL (report: {report:?})"
    );
    let queries = queries_for(&base, 4);
    assert_recovered_equals_serial("fi-manifest: recovered", &recovered, &serial, &queries);
}

#[test]
fn concurrent_checkpoints_never_expose_a_half_committed_manifest_to_resync() {
    // A churn+checkpoint thread races checkpoint exports (the follower
    // resync path). Every exported package must install and open at
    // exactly its manifest's epoch — the newest-valid-manifest contract
    // observed concurrently, not just at rest.
    let tmp = TempDir::new("fi-race");
    let base = corpus(&CorpusSpec::sized(0xACE5, 6));
    let opts = StoreOptions {
        sync_writes: false,
        checkpoint_every_ops: 3,
        keep_checkpoints: 2,
        ..StoreOptions::default()
    };
    let store = Arc::new(
        DurableEngine::create(
            tmp.subdir("store"),
            tiny_engine(base.clone(), 2),
            opts.clone(),
        )
        .expect("store create"),
    );
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let churner = {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut next_id = 1000;
                let mut tag = 0;
                while !stop.load(Ordering::Acquire) {
                    tag += 1;
                    store
                        .insert_tables(fresh_tables(tag, 1, &mut next_id))
                        .expect("churn insert");
                    if tag % 5 == 0 {
                        store.checkpoint().expect("explicit checkpoint");
                    }
                }
            })
        };
        for i in 0..12 {
            let package = store.export_checkpoint().expect("export under churn");
            let dir = tmp.subdir(&format!("resync-{i}"));
            DurableEngine::install_checkpoint(&dir, &package).expect("install");
            let (replica, _) = DurableEngine::open(&dir, opts.clone())
                .expect("an exported checkpoint must always open");
            assert_eq!(
                replica.epoch(),
                package.manifest.epoch,
                "resync {i}: installed store must land exactly at the packaged epoch"
            );
        }
        stop.store(true, Ordering::Release);
        churner.join().expect("churn thread");
    });
}
