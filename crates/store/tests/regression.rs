//! Regression pinning the tombstone/compaction recovery semantics: an
//! engine saved (or checkpointed, or WAL-recovered) after `remove_tables`
//! but **before** `compact()` must serve identical results on every
//! recovery path, even though the paths disagree about physical layout —
//! WAL replay reconstructs the tombstoned engine, while snapshots and
//! checkpoint segments are live-only (tombstones compacted away on
//! write).
//!
//! Identical means: hit-for-hit, bit-identical scores, identical
//! per-stage provenance counts — and *staying* identical as further
//! mutations (including the deferred `compact`) land on each recovered
//! engine.

use lcdd_engine::{Engine, IndexStrategy, Query, SearchOptions, SearchResponse};
use lcdd_store::{DurableEngine, StoreOptions};
use lcdd_testkit::crash::{assert_same_hits_bitwise, copy_dir, TempDir};
use lcdd_testkit::{corpus, query_like, tiny_engine, CorpusSpec};

const SEED: u64 = 0x0070_b570;
const N_BASE: usize = 8;
const N_SHARDS: usize = 2;

fn opts() -> StoreOptions {
    StoreOptions {
        sync_writes: false,
        checkpoint_every_ops: 0,
        checkpoint_every_bytes: 0,
        ..StoreOptions::default()
    }
}

fn extras(n: usize) -> Vec<lcdd_table::Table> {
    let mut tables = corpus(&CorpusSpec::sized(SEED ^ 0xe11a, n));
    for (i, t) in tables.iter_mut().enumerate() {
        t.id = 500 + i as u64;
        t.name = format!("extra-{i}");
    }
    tables
}

fn battery(base: &[lcdd_table::Table], removed: &[u64]) -> Vec<Query> {
    let mut qs: Vec<Query> = base.iter().take(3).map(query_like).collect();
    // Queries shaped like removed tables are the sharp edge: a stale
    // index entry would surface them.
    for &id in removed {
        if let Some(t) = base.iter().find(|t| t.id == id) {
            qs.push(query_like(t));
        }
    }
    qs
}

fn respond(
    search: impl Fn(&Query, &SearchOptions) -> Result<SearchResponse, lcdd_fcm::EngineError>,
    queries: &[Query],
    k: usize,
) -> Vec<SearchResponse> {
    let mut out = Vec::new();
    for q in queries {
        for strategy in [
            IndexStrategy::Hybrid,
            IndexStrategy::IntervalOnly,
            IndexStrategy::LshOnly,
            IndexStrategy::NoIndex,
        ] {
            out.push(
                search(q, &SearchOptions::top_k(k).with_strategy(strategy))
                    .expect("regression battery queries are well-formed"),
            );
        }
    }
    out
}

fn assert_all_same(context: &str, a: &[SearchResponse], b: &[SearchResponse]) {
    assert_eq!(a.len(), b.len(), "{context}: response counts differ");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_same_hits_bitwise(&format!("{context}: response {i}"), ra, rb);
    }
}

#[test]
fn save_after_remove_before_compact_recovers_identically_on_every_path() {
    let tmp = TempDir::new("tombstone-regression");
    let live_dir = tmp.subdir("live");
    let base = corpus(&CorpusSpec::sized(SEED, N_BASE));
    let durable = DurableEngine::create(&live_dir, tiny_engine(base.clone(), N_SHARDS), opts())
        .expect("store creation");
    // Disable auto-compaction so the tombstones are guaranteed to be
    // pending when the saves happen.
    durable.set_compaction_threshold(1.0);

    durable.insert_tables(extras(3)).expect("insert extras");
    let removed = [base[1].id, 501u64];
    assert_eq!(durable.remove_tables(&removed).expect("remove"), 2);
    assert!(
        durable.snapshot().shards().iter().any(|sh| sh.n_dead() > 0),
        "the scenario requires pending tombstones"
    );

    // Serial oracle: same ops on a plain engine (keeps its tombstones).
    let mut oracle = tiny_engine(base.clone(), N_SHARDS);
    oracle.set_compaction_threshold(1.0);
    oracle.insert_tables(extras(3));
    oracle.remove_tables(&removed);

    let queries = battery(&base, &removed);
    let k = durable.len();
    let want = respond(|q, o| oracle.search(q, o), &queries, k);

    // Path A: crash here -> recovery goes through WAL replay (the
    // recovered engine carries the tombstones).
    let crash_dir = tmp.subdir("crash");
    copy_dir(&live_dir, &crash_dir);
    let (via_wal, report) = DurableEngine::open(&crash_dir, opts()).expect("WAL recovery");
    assert_eq!(report.replayed_ops, 2);
    assert_eq!(via_wal.epoch(), oracle.epoch(), "WAL recovery keeps epochs");

    // Path B: plain snapshot save/load (live-only bytes, tombstones
    // compacted away).
    let snap_path = tmp.subdir("snapshot.lcdd");
    durable.save(&snap_path).expect("snapshot save");
    let mut via_snapshot = Engine::load(&snap_path).expect("snapshot load");
    assert!(
        via_snapshot.shards().iter().all(|sh| sh.n_dead() == 0),
        "snapshots are live-only by design"
    );

    // Path C: checkpoint then recover from segments (live-only, empty WAL).
    durable.checkpoint().expect("checkpoint");
    let ckpt_dir = tmp.subdir("ckpt-crash");
    copy_dir(&live_dir, &ckpt_dir);
    let (via_ckpt, report) = DurableEngine::open(&ckpt_dir, opts()).expect("checkpoint recovery");
    assert_eq!(report.replayed_ops, 0);
    assert_eq!(via_ckpt.epoch(), oracle.epoch());

    assert_all_same(
        "WAL replay vs live",
        &respond(|q, o| via_wal.search(q, o), &queries, k),
        &want,
    );
    assert_all_same(
        "snapshot load vs live",
        &respond(|q, o| via_snapshot.search(q, o), &queries, k),
        &want,
    );
    assert_all_same(
        "checkpoint recovery vs live",
        &respond(|q, o| via_ckpt.search(q, o), &queries, k),
        &want,
    );

    // The deferred compact — and further churn — must keep all recovered
    // engines in lockstep even though their physical layouts differ
    // (tombstoned vs already-compacted).
    let more = {
        let mut t = extras(2);
        for (i, x) in t.iter_mut().enumerate() {
            x.id = 900 + i as u64;
            x.name = format!("late-{i}");
        }
        t
    };
    let churn = |d: &DurableEngine| {
        d.compact().expect("compact");
        d.insert_tables(more.clone()).expect("late insert");
        d.remove_tables(&[more[0].id]).expect("late remove");
    };
    let churn_plain = |e: &mut Engine| {
        e.compact();
        e.insert_tables(more.clone());
        e.remove_tables(&[more[0].id]);
    };
    churn(&via_wal);
    churn(&via_ckpt);
    churn_plain(&mut via_snapshot);
    churn_plain(&mut oracle);

    let k = oracle.len();
    let want = respond(|q, o| oracle.search(q, o), &queries, k);
    assert_all_same(
        "WAL replay after churn",
        &respond(|q, o| via_wal.search(q, o), &queries, k),
        &want,
    );
    assert_all_same(
        "checkpoint recovery after churn",
        &respond(|q, o| via_ckpt.search(q, o), &queries, k),
        &want,
    );
    assert_all_same(
        "snapshot load after churn",
        &respond(|q, o| via_snapshot.search(q, o), &queries, k),
        &want,
    );
}
