//! Unit-level behaviour of the store layers: WAL framing and torn-tail
//! semantics, manifest selection, checkpoint dirty-shard accounting, GC,
//! and lifecycle errors.

use lcdd_fcm::EngineError;
use lcdd_store::wal::{scan, WalOp, WalRecord, WalWriter, WAL_HEADER_LEN};
use lcdd_store::{latest_manifest, DurableEngine, StoreOptions};
use lcdd_testkit::crash::{truncate_file, TempDir};
use lcdd_testkit::{corpus, tiny_engine, CorpusSpec};

fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord {
            epoch_after: 1,
            op: WalOp::Insert {
                batch: vec![1, 2, 3, 4, 5],
            },
        },
        WalRecord {
            epoch_after: 2,
            op: WalOp::Remove {
                ids: vec![7, 42],
                threshold: 0.25,
            },
        },
        WalRecord {
            epoch_after: 3,
            op: WalOp::Compact,
        },
        WalRecord {
            epoch_after: 4,
            op: WalOp::Reshard { n_shards: 3 },
        },
    ]
}

#[test]
fn wal_records_roundtrip_through_append_and_scan() {
    let tmp = TempDir::new("wal-roundtrip");
    let path = tmp.subdir("wal.log");
    let mut w = WalWriter::create(&path, true).unwrap();
    assert!(w.is_empty());
    let records = sample_records();
    for r in &records {
        w.append(r).unwrap();
    }
    assert_eq!(w.len(), std::fs::metadata(&path).unwrap().len());

    let got = scan(&path, WAL_HEADER_LEN).unwrap();
    assert!(got.torn.is_none());
    assert_eq!(got.valid_len, w.len());
    let ops: Vec<WalRecord> = got.records.into_iter().map(|(_, r)| r).collect();
    assert_eq!(ops, records);

    // Scanning from a later boundary yields the suffix.
    let first_end = {
        let full = scan(&path, WAL_HEADER_LEN).unwrap();
        full.records[0].0
    };
    let tail = scan(&path, first_end).unwrap();
    assert_eq!(tail.records.len(), records.len() - 1);
    assert_eq!(tail.records[0].1, records[1]);
}

#[test]
fn wal_torn_tail_is_reported_not_errored() {
    let tmp = TempDir::new("wal-torn");
    let path = tmp.subdir("wal.log");
    let mut w = WalWriter::create(&path, false).unwrap();
    for r in sample_records() {
        w.append(&r).unwrap();
    }
    let full = scan(&path, WAL_HEADER_LEN).unwrap();
    let last_start = full.records[full.records.len() - 2].0;
    // Cut inside the final record: scan keeps the prefix and reports the
    // tear; an appender reopened at valid_len truncates it away.
    truncate_file(&path, last_start + 5);
    let torn = scan(&path, WAL_HEADER_LEN).unwrap();
    assert_eq!(torn.records.len(), full.records.len() - 1);
    assert_eq!(torn.valid_len, last_start);
    assert!(torn.torn.is_some());

    let w = WalWriter::open(&path, torn.valid_len, false).unwrap();
    assert_eq!(w.len(), last_start);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), last_start);
}

#[test]
fn wal_mid_log_corruption_is_a_typed_wal_error() {
    use std::io::{Read, Seek, SeekFrom, Write};
    let tmp = TempDir::new("wal-midflip");
    let path = tmp.subdir("wal.log");
    let mut w = WalWriter::create(&path, false).unwrap();
    for r in sample_records() {
        w.append(&r).unwrap();
    }
    // Flip one payload byte of the FIRST record: a complete record that
    // fails its checksum is corruption, not a torn tail.
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&path)
        .unwrap();
    let off = WAL_HEADER_LEN + 12 + 1;
    let mut b = [0u8; 1];
    f.seek(SeekFrom::Start(off)).unwrap();
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0x10;
    f.seek(SeekFrom::Start(off)).unwrap();
    f.write_all(&b).unwrap();
    drop(f);
    match scan(&path, WAL_HEADER_LEN) {
        Err(EngineError::Wal(msg)) => assert!(msg.contains("checksum"), "got: {msg}"),
        other => panic!("expected a Wal checksum error, got {other:?}"),
    }
}

#[test]
fn open_on_a_non_store_directory_is_a_typed_error() {
    let tmp = TempDir::new("not-a-store");
    match DurableEngine::open(tmp.path(), StoreOptions::default()) {
        Err(EngineError::Store(msg)) => assert!(msg.contains("no manifest"), "got: {msg}"),
        other => panic!("expected Store error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn create_refuses_to_clobber_an_existing_store() {
    let tmp = TempDir::new("no-clobber");
    let dir = tmp.subdir("store");
    let base = corpus(&CorpusSpec::sized(7, 4));
    DurableEngine::create(&dir, tiny_engine(base.clone(), 1), StoreOptions::default()).unwrap();
    match DurableEngine::create(&dir, tiny_engine(base, 1), StoreOptions::default()) {
        Err(EngineError::Store(msg)) => assert!(msg.contains("already holds"), "got: {msg}"),
        other => panic!("expected Store error, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn incremental_checkpoints_rewrite_only_dirty_shards_and_gc_old_files() {
    let tmp = TempDir::new("incremental");
    let dir = tmp.subdir("store");
    let base = corpus(&CorpusSpec::sized(0xabc, 12));
    let opts = StoreOptions {
        sync_writes: false,
        checkpoint_every_ops: 0,
        checkpoint_every_bytes: 0,
        keep_checkpoints: 1,
        ..StoreOptions::default()
    };
    let durable = DurableEngine::create(&dir, tiny_engine(base, 4), opts).unwrap();

    // One insert dirties exactly one (least-loaded) shard.
    let mut extra = corpus(&CorpusSpec::sized(0xdef, 1));
    extra[0].id = 400;
    durable.insert_tables(extra).unwrap();
    let stats = durable.checkpoint().unwrap();
    assert_eq!(stats.shards_total, 4);
    assert_eq!(
        stats.shards_written, 1,
        "an insert into one shard must rewrite one segment"
    );
    assert!(stats.bytes_reused > 0, "clean shards carry forward");
    assert!(stats.bytes_written > 0);

    // A no-op checkpoint writes nothing.
    let stats = durable.checkpoint().unwrap();
    assert_eq!(stats.shards_written, 0);
    assert_eq!(stats.bytes_written, 0);

    // keep_checkpoints = 1: the creation checkpoint's manifest is GC'd,
    // its now-unreferenced segment + WAL files with it.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.unwrap().file_name().into_string().ok())
        .collect();
    let manifests = names.iter().filter(|n| n.starts_with("MANIFEST-")).count();
    let wals = names.iter().filter(|n| n.starts_with("wal-")).count();
    assert_eq!(manifests, 1, "files: {names:?}");
    assert_eq!(wals, 1, "files: {names:?}");
    let (_, manifest) = latest_manifest(&dir).unwrap().unwrap();
    for name in names
        .iter()
        .filter(|n| n.starts_with("seg-") || n.starts_with("wal-"))
    {
        assert!(
            manifest.segments.contains(name) || *name == manifest.wal_file,
            "unreferenced file {name} survived GC (files: {names:?})"
        );
    }

    // Reshard dirties everything.
    durable.reshard(3).unwrap();
    let stats = durable.checkpoint().unwrap();
    assert_eq!(stats.shards_total, 3);
    assert_eq!(stats.shards_written, 3);
}

#[test]
fn recovery_resumes_epoch_numbering_and_appends_continue() {
    let tmp = TempDir::new("resume");
    let dir = tmp.subdir("store");
    let base = corpus(&CorpusSpec::sized(0x11, 5));
    let opts = StoreOptions {
        sync_writes: true, // exercise the fsync path end to end
        checkpoint_every_ops: 0,
        checkpoint_every_bytes: 0,
        ..StoreOptions::default()
    };
    let durable = DurableEngine::create(&dir, tiny_engine(base.clone(), 2), opts.clone()).unwrap();
    let mut t = corpus(&CorpusSpec::sized(0x22, 2));
    for (i, x) in t.iter_mut().enumerate() {
        x.id = 600 + i as u64;
    }
    durable.insert_tables(t).unwrap();
    durable.remove_tables(&[base[0].id]).unwrap();
    assert_eq!(durable.epoch(), 2);
    let wal_before = durable.wal_len();
    drop(durable);

    let (durable, report) = DurableEngine::open(&dir, opts).unwrap();
    assert_eq!(report.checkpoint_epoch, 0);
    assert_eq!(report.replayed_ops, 2);
    assert_eq!(report.recovered_epoch, 2);
    assert!(report.truncated_tail.is_none());
    assert!(!report.fallback, "clean recovery uses the newest manifest");
    assert_eq!(durable.epoch(), 2);
    assert_eq!(durable.len(), 6);
    assert_eq!(durable.wal_len(), wal_before);

    // The log keeps accepting ops after recovery.
    durable.remove_tables(&[600]).unwrap();
    assert_eq!(durable.epoch(), 3);
    assert!(durable.wal_len() > wal_before);
}
