//! Windowed data-aggregation operators (paper Sec. II & V).
//!
//! A line chart is often drawn from aggregated data: the column is split
//! into consecutive windows of `window` rows and each window is reduced
//! with one of four operators: `avg`, `sum`, `max`, `min`.

/// The four aggregation operators the paper supports, plus `Identity` for
//  non-aggregated charts (the fifth transformation-layer expert, Sec. V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggOp {
    /// No aggregation (identity expert).
    Identity,
    Avg,
    Sum,
    Max,
    Min,
}

impl AggOp {
    /// The four real aggregation operators (excluding `Identity`).
    pub const AGGREGATORS: [AggOp; 4] = [AggOp::Avg, AggOp::Sum, AggOp::Max, AggOp::Min];

    /// All five experts in the order the MoE layer indexes them.
    pub const EXPERTS: [AggOp; 5] = [
        AggOp::Identity,
        AggOp::Avg,
        AggOp::Sum,
        AggOp::Max,
        AggOp::Min,
    ];

    /// Index of this operator within [`AggOp::EXPERTS`].
    pub fn expert_index(self) -> usize {
        match self {
            AggOp::Identity => 0,
            AggOp::Avg => 1,
            AggOp::Sum => 2,
            AggOp::Max => 3,
            AggOp::Min => 4,
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Identity => "none",
            AggOp::Avg => "avg",
            AggOp::Sum => "sum",
            AggOp::Max => "max",
            AggOp::Min => "min",
        }
    }

    /// Reduces one window of values. Empty windows are undefined behaviour
    /// at call sites and return NaN here to make the bug loud.
    pub fn reduce(self, window: &[f64]) -> f64 {
        if window.is_empty() {
            return f64::NAN;
        }
        match self {
            AggOp::Identity => window[0],
            AggOp::Avg => window.iter().sum::<f64>() / window.len() as f64,
            AggOp::Sum => window.iter().sum(),
            AggOp::Max => window.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggOp::Min => window.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// Applies tumbling-window aggregation over `values`.
///
/// Consecutive non-overlapping windows of `window` rows are each reduced by
/// `op`; a trailing partial window is also reduced (matching how charting
/// tools aggregate the remainder of a series). `Identity` (or `window <= 1`)
/// returns the input unchanged.
pub fn aggregate(values: &[f64], op: AggOp, window: usize) -> Vec<f64> {
    if op == AggOp::Identity || window <= 1 {
        return values.to_vec();
    }
    values.chunks(window).map(|w| op.reduce(w)).collect()
}

/// Number of output points `aggregate` produces for an input of `n` rows.
pub fn aggregated_len(n: usize, window: usize) -> usize {
    if window <= 1 {
        n
    } else {
        n.div_ceil(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: [f64; 7] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];

    #[test]
    fn avg_windows() {
        assert_eq!(aggregate(&V, AggOp::Avg, 2), vec![1.5, 3.5, 5.5, 7.0]);
    }

    #[test]
    fn sum_windows() {
        assert_eq!(aggregate(&V, AggOp::Sum, 3), vec![6.0, 15.0, 7.0]);
    }

    #[test]
    fn max_min_windows() {
        assert_eq!(aggregate(&V, AggOp::Max, 4), vec![4.0, 7.0]);
        assert_eq!(aggregate(&V, AggOp::Min, 4), vec![1.0, 5.0]);
    }

    #[test]
    fn identity_and_window_one() {
        assert_eq!(aggregate(&V, AggOp::Identity, 10), V.to_vec());
        assert_eq!(aggregate(&V, AggOp::Sum, 1), V.to_vec());
    }

    #[test]
    fn lengths_match_helper() {
        for w in 1..10 {
            assert_eq!(
                aggregate(&V, AggOp::Avg, w).len(),
                aggregated_len(V.len(), w)
            );
        }
    }

    #[test]
    fn expert_indices_are_stable() {
        assert_eq!(AggOp::Identity.expert_index(), 0);
        assert_eq!(AggOp::EXPERTS[3], AggOp::Max);
        for (i, op) in AggOp::EXPERTS.iter().enumerate() {
            assert_eq!(op.expert_index(), i);
        }
    }

    #[test]
    fn window_larger_than_series() {
        assert_eq!(aggregate(&V, AggOp::Sum, 100), vec![28.0]);
    }
}
