//! Data-level augmentations for segmentation-model training (paper
//! Sec. IV-A): transformations applied to the *tabular* data before
//! re-rendering, so the augmented chart stays a legal, semantically valid
//! line chart (unlike image flips, which corrupt ticks and labels).

use rand::Rng;

use crate::column::Column;
use crate::table::Table;

/// `Reverse`: each column `(a1..an)` becomes `(an..a1)`.
pub fn reverse(table: &Table) -> Table {
    let columns = table
        .columns
        .iter()
        .map(|c| {
            let mut v = c.values.clone();
            v.reverse();
            Column::new(c.name.clone(), v)
        })
        .collect();
    Table::new(table.id, format!("{}#rev", table.name), columns)
}

/// `Partitioning`: splits every column at row `split`, yielding two tables
/// (rows `[0, split)` and `[split, n)`).
///
/// # Panics
/// Panics when `split` is 0 or ≥ the row count (either side would be empty).
pub fn partition(table: &Table, split: usize) -> (Table, Table) {
    let n = table.num_rows();
    assert!(
        split > 0 && split < n,
        "partition: split {split} outside (0, {n})"
    );
    let left = table
        .columns
        .iter()
        .map(|c| Column::new(c.name.clone(), c.values[..split].to_vec()))
        .collect();
    let right = table
        .columns
        .iter()
        .map(|c| Column::new(c.name.clone(), c.values[split..].to_vec()))
        .collect();
    (
        Table::new(table.id, format!("{}#l", table.name), left),
        Table::new(table.id, format!("{}#r", table.name), right),
    )
}

/// `Down-Sampling`: keeps one row out of every `rho` consecutive rows.
///
/// # Panics
/// Panics when `rho == 0`.
pub fn downsample(table: &Table, rho: usize) -> Table {
    assert!(rho > 0, "downsample: rho must be positive");
    let columns = table
        .columns
        .iter()
        .map(|c| {
            Column::new(
                c.name.clone(),
                c.values.iter().copied().step_by(rho).collect(),
            )
        })
        .collect();
    Table::new(table.id, format!("{}#ds{rho}", table.name), columns)
}

/// Randomly picks one of the three augmentations (paper Sec. IV-A) and
/// applies it. Partitioning returns the left half or right half with equal
/// probability. Tables with fewer than 4 rows are returned reversed (the
/// only always-safe transform).
pub fn random_augment(table: &Table, rng: &mut impl Rng) -> Table {
    let n = table.num_rows();
    if n < 4 {
        return reverse(table);
    }
    match rng.gen_range(0..3) {
        0 => reverse(table),
        1 => {
            let split = rng.gen_range(1..n);
            let (l, r) = partition(table, split);
            if rng.gen_bool(0.5) {
                l
            } else {
                r
            }
        }
        _ => downsample(table, rng.gen_range(2..=4)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t() -> Table {
        Table::new(
            7,
            "t",
            vec![
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0, 5.0]),
                Column::new("b", vec![5.0, 4.0, 3.0, 2.0, 1.0]),
            ],
        )
    }

    #[test]
    fn reverse_reverses_every_column() {
        let r = reverse(&t());
        assert_eq!(r.columns[0].values, vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(r.columns[1].values, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        // Double reverse is identity on values.
        assert_eq!(reverse(&r).columns[0].values, t().columns[0].values);
    }

    #[test]
    fn partition_splits_rows() {
        let (l, r) = partition(&t(), 2);
        assert_eq!(l.num_rows(), 2);
        assert_eq!(r.num_rows(), 3);
        assert_eq!(l.columns[0].values, vec![1.0, 2.0]);
        assert_eq!(r.columns[0].values, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn partition_rejects_empty_side() {
        let _ = partition(&t(), 0);
    }

    #[test]
    fn downsample_ratio() {
        let d = downsample(&t(), 2);
        assert_eq!(d.columns[0].values, vec![1.0, 3.0, 5.0]);
        let d3 = downsample(&t(), 3);
        assert_eq!(d3.columns[0].values, vec![1.0, 4.0]);
    }

    #[test]
    fn random_augment_preserves_table_validity() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let a = random_augment(&t(), &mut rng);
            assert!(a.num_rows() > 0);
            assert_eq!(a.num_cols(), 2);
            // Column lengths stay consistent (Table::new checks internally).
        }
    }
}
