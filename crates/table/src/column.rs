//! A named numeric column (the paper's data series `C = (a1..aNR)`).

/// One column of a dataset. All discovery-relevant columns are numeric; the
/// paper treats every column as a data series over its row index.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Column header.
    pub name: String,
    /// Cell values, one per row.
    pub values: Vec<f64>,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column {
            name: name.into(),
            values,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Minimum value (`None` for an empty column or all-NaN data).
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum value.
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Sum of values (0 for empty).
    pub fn sum(&self) -> f64 {
        self.values.iter().filter(|v| v.is_finite()).sum()
    }

    /// Arithmetic mean (`None` for empty).
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum() / self.values.len() as f64)
        }
    }

    /// Population standard deviation (`None` for empty).
    pub fn std(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// The interval the paper indexes in its interval tree (Sec. VI-A):
    /// `[min(C), sum(C)]` — min/sum being the extreme results any
    /// aggregation operator can produce over (a window of) the column.
    ///
    /// For columns with negative values `sum` can undershoot `min`; the
    /// interval is normalised so `lo <= hi` always holds.
    pub fn index_interval(&self) -> Option<(f64, f64)> {
        let min = self.min()?;
        let max = self.max()?;
        let sum = self.sum();
        let lo = min.min(sum);
        let hi = max.max(sum);
        Some((lo, hi))
    }

    /// True when at least `ratio` of the cells are finite numbers.
    pub fn mostly_finite(&self, ratio: f64) -> bool {
        if self.values.is_empty() {
            return false;
        }
        let finite = self.values.iter().filter(|v| v.is_finite()).count();
        finite as f64 / self.values.len() as f64 >= ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        let c = Column::new("a", vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(4.0));
        assert_eq!(c.sum(), 10.0);
        assert_eq!(c.mean(), Some(2.5));
        assert!((c.std().unwrap() - 1.118_034).abs() < 1e-5);
    }

    #[test]
    fn empty_column() {
        let c = Column::new("e", vec![]);
        assert!(c.is_empty());
        assert_eq!(c.min(), None);
        assert_eq!(c.mean(), None);
        assert!(!c.mostly_finite(0.5));
    }

    #[test]
    fn index_interval_positive_values() {
        let c = Column::new("a", vec![1.0, 2.0, 3.0]);
        assert_eq!(c.index_interval(), Some((1.0, 6.0)));
    }

    #[test]
    fn index_interval_negative_sum() {
        // sum = -6 < min = -3: interval must still be ordered.
        let c = Column::new("a", vec![-1.0, -2.0, -3.0]);
        let (lo, hi) = c.index_interval().unwrap();
        assert!(lo <= hi);
        assert_eq!(lo, -6.0);
        assert_eq!(hi, -1.0);
    }

    #[test]
    fn nan_handling() {
        let c = Column::new("a", vec![1.0, f64::NAN, 3.0]);
        assert_eq!(c.min(), Some(1.0));
        assert_eq!(c.max(), Some(3.0));
        assert!(c.mostly_finite(0.6));
        assert!(!c.mostly_finite(0.9));
    }
}
