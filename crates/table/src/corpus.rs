//! Synthetic Plotly-like corpus: `(table, visualization spec)` records.
//!
//! Stands in for the real Plotly corpus (paper Sec. VII-A) which cannot be
//! shipped. Matches its *shape*: tables with heterogeneous column counts and
//! row counts, a vis spec selecting which columns become lines, a skewed
//! distribution over the number of lines `M` (paper Table I), and
//! near-duplicate records so the benchmark's dedup stage has work to do.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::Column;
use crate::generators::{generate, SeriesFamily};
use crate::table::Table;
use crate::vis_spec::VisSpec;

/// One Plotly-style record.
#[derive(Clone, Debug)]
pub struct Record {
    pub table: Table,
    pub spec: VisSpec,
    /// The family of each generated column (diagnostics / stratification).
    pub families: Vec<SeriesFamily>,
}

/// Corpus generation parameters.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// Number of base records (near-duplicates come on top).
    pub n_records: usize,
    /// Inclusive row-count range for generated tables.
    pub min_rows: usize,
    pub max_rows: usize,
    /// Fraction of records duplicated with tiny perturbations (tests the
    /// benchmark's dedup stage).
    pub near_duplicate_rate: f64,
    /// RNG seed; the corpus is fully deterministic given the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_records: 200,
            min_rows: 96,
            max_rows: 320,
            near_duplicate_rate: 0.05,
            seed: 0x1ce_d15c,
        }
    }
}

/// Samples the number of lines `M` following the paper's Table I repository
/// distribution: 36% single-line, 25% 2–4, 21% 5–7, 18% >7.
pub fn sample_num_lines(rng: &mut impl Rng) -> usize {
    let r: f64 = rng.gen();
    if r < 0.36 {
        1
    } else if r < 0.61 {
        rng.gen_range(2..=4)
    } else if r < 0.82 {
        rng.gen_range(5..=7)
    } else {
        rng.gen_range(8..=10)
    }
}

/// Bucket labels used throughout the paper's tables for `M`.
pub fn m_bucket(m: usize) -> &'static str {
    match m {
        1 => "1",
        2..=4 => "2-4",
        5..=7 => "5-7",
        _ => ">7",
    }
}

fn generate_record(rng: &mut StdRng, id: u64, cfg: &CorpusConfig) -> Record {
    let rows = rng.gen_range(cfg.min_rows..=cfg.max_rows);
    let m = sample_num_lines(rng);
    // Tables usually carry a few extra, unplotted columns.
    let extra = rng.gen_range(0..=2);
    let n_cols = m + extra;

    // Application-style value range shared by most columns of one table
    // (sales in thousands vs. sensor millivolts etc.).
    let base_scale = 10f64.powf(rng.gen_range(-1.0..3.0));
    let base_offset = rng.gen_range(-2.0..2.0) * base_scale;

    let mut columns = Vec::with_capacity(n_cols);
    let mut families = Vec::with_capacity(n_cols);
    // Plotted columns of one chart tend to be related: reuse one dominant
    // family with occasional outliers.
    let dominant = SeriesFamily::ALL[rng.gen_range(0..SeriesFamily::ALL.len())];
    for c in 0..n_cols {
        let family = if rng.gen_bool(0.7) {
            dominant
        } else {
            SeriesFamily::ALL[rng.gen_range(0..SeriesFamily::ALL.len())]
        };
        let jitter = rng.gen_range(0.5..1.5);
        let values = generate(rng, family, rows, base_scale * jitter, base_offset);
        columns.push(Column::new(format!("c{c}"), values));
        families.push(family);
    }
    let table = Table::new(id, format!("table_{id}"), columns);
    let spec = VisSpec::plain((0..m).collect());
    Record {
        table,
        spec,
        families,
    }
}

fn perturb(record: &Record, rng: &mut StdRng, id: u64) -> Record {
    let columns = record
        .table
        .columns
        .iter()
        .map(|c| {
            let values = c
                .values
                .iter()
                .map(|&v| v * rng.gen_range(0.999..1.001))
                .collect();
            Column::new(c.name.clone(), values)
        })
        .collect();
    Record {
        table: Table::new(id, format!("{}~dup", record.table.name), columns),
        spec: record.spec.clone(),
        families: record.families.clone(),
    }
}

/// Builds the corpus. Near-duplicates are appended after the base records
/// with fresh ids.
pub fn build_corpus(cfg: &CorpusConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut records: Vec<Record> = (0..cfg.n_records)
        .map(|i| generate_record(&mut rng, i as u64, cfg))
        .collect();
    let n_dups = (cfg.n_records as f64 * cfg.near_duplicate_rate).round() as usize;
    for d in 0..n_dups {
        let src = rng.gen_range(0..cfg.n_records);
        let dup = perturb(&records[src], &mut rng, (cfg.n_records + d) as u64);
        records.push(dup);
    }
    records
}

/// Summary statistics of a corpus bucketed by `M` (regenerates the shape of
/// paper Table I).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    pub total: usize,
    pub m1: usize,
    pub m2_4: usize,
    pub m5_7: usize,
    pub m_gt7: usize,
}

/// Computes line-count bucket statistics.
pub fn corpus_stats(records: &[Record]) -> CorpusStats {
    let mut s = CorpusStats {
        total: records.len(),
        ..Default::default()
    };
    for r in records {
        match r.spec.num_lines() {
            1 => s.m1 += 1,
            2..=4 => s.m2_4 += 1,
            5..=7 => s.m5_7 += 1,
            _ => s.m_gt7 += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig {
            n_records: 20,
            ..Default::default()
        };
        let a = build_corpus(&cfg);
        let b = build_corpus(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
        }
    }

    #[test]
    fn spec_columns_exist() {
        let cfg = CorpusConfig {
            n_records: 50,
            ..Default::default()
        };
        for r in build_corpus(&cfg) {
            for &ci in &r.spec.y_columns {
                assert!(ci < r.table.num_cols());
            }
            assert!(r.table.num_rows() >= cfg.min_rows);
            assert!(r.table.num_rows() <= cfg.max_rows);
        }
    }

    #[test]
    fn near_duplicates_appended() {
        let cfg = CorpusConfig {
            n_records: 40,
            near_duplicate_rate: 0.25,
            ..Default::default()
        };
        let corpus = build_corpus(&cfg);
        assert_eq!(corpus.len(), 50);
        let dups = corpus
            .iter()
            .filter(|r| r.table.name.ends_with("~dup"))
            .count();
        assert_eq!(dups, 10);
    }

    #[test]
    fn m_distribution_covers_all_buckets() {
        let cfg = CorpusConfig {
            n_records: 400,
            ..Default::default()
        };
        let stats = corpus_stats(&build_corpus(&cfg));
        assert!(stats.m1 > 0 && stats.m2_4 > 0 && stats.m5_7 > 0 && stats.m_gt7 > 0);
        // Single-line should be the largest bucket (paper Table I).
        assert!(stats.m1 >= stats.m2_4 && stats.m1 >= stats.m5_7 && stats.m1 >= stats.m_gt7);
    }

    #[test]
    fn m_bucket_labels() {
        assert_eq!(m_bucket(1), "1");
        assert_eq!(m_bucket(3), "2-4");
        assert_eq!(m_bucket(6), "5-7");
        assert_eq!(m_bucket(9), ">7");
    }
}
