//! Minimal CSV import/export for tables (examples and user data).
//!
//! Only the subset needed here: numeric cells, comma separator, first row is
//! the header. Non-numeric cells parse as NaN (and can be filtered with
//! [`crate::column::Column::mostly_finite`]).

use std::io::{self, BufRead, Write};

use crate::column::Column;
use crate::table::Table;

/// Serialises a table as CSV (header row + one row per record).
pub fn write_csv<W: Write>(table: &Table, mut w: W) -> io::Result<()> {
    let header: Vec<&str> = table.columns.iter().map(|c| c.name.as_str()).collect();
    writeln!(w, "{}", header.join(","))?;
    for r in 0..table.num_rows() {
        let row: Vec<String> = table
            .columns
            .iter()
            .map(|c| format!("{}", c.values[r]))
            .collect();
        writeln!(w, "{}", row.join(","))?;
    }
    Ok(())
}

/// Parses CSV into a table. Ragged rows are padded with NaN; an empty input
/// yields an empty table.
pub fn read_csv<R: BufRead>(id: u64, name: &str, r: R) -> io::Result<Table> {
    let mut lines = r.lines();
    let Some(header) = lines.next().transpose()? else {
        return Ok(Table::new(id, name, vec![]));
    };
    let names: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        for (i, col) in cols.iter_mut().enumerate() {
            let v = cells
                .get(i)
                .and_then(|s| s.trim().parse::<f64>().ok())
                .unwrap_or(f64::NAN);
            col.push(v);
        }
    }
    let columns = names
        .into_iter()
        .zip(cols)
        .map(|(n, v)| Column::new(n, v))
        .collect();
    Ok(Table::new(id, name, columns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Table::new(
            3,
            "t",
            vec![
                Column::new("a", vec![1.0, 2.5]),
                Column::new("b", vec![-1.0, 0.0]),
            ],
        );
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(3, "t", buf.as_slice()).unwrap();
        assert_eq!(back.columns[0].values, vec![1.0, 2.5]);
        assert_eq!(back.columns[1].name, "b");
    }

    #[test]
    fn non_numeric_becomes_nan() {
        let csv = "x,y\n1,apple\n2,3\n";
        let t = read_csv(0, "t", csv.as_bytes()).unwrap();
        assert!(t.columns[1].values[0].is_nan());
        assert_eq!(t.columns[1].values[1], 3.0);
    }

    #[test]
    fn empty_input() {
        let t = read_csv(0, "empty", "".as_bytes()).unwrap();
        assert_eq!(t.num_cols(), 0);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn ragged_rows_padded() {
        let csv = "a,b\n1\n2,3\n";
        let t = read_csv(0, "t", csv.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert!(t.columns[1].values[0].is_nan());
    }
}
