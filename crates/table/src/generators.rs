//! Synthetic data-series families.
//!
//! The paper's corpus is Plotly — 2.3M real tables we cannot ship. These
//! generators produce the same *statistical variety of shapes* real chart
//! data exhibits (trends, seasonality, autocorrelated noise, regime shifts,
//! spikes, quasi-periodic biosignals), which is what shape-based retrieval
//! exercises. Every generator is deterministic given the caller's RNG.

use rand::Rng;

/// The family of a generated series — recorded so experiments can stratify
/// results by shape class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SeriesFamily {
    RandomWalk,
    TrendSeason,
    Ar1,
    HarmonicMix,
    StepFunction,
    Spiky,
    EcgLike,
    Logistic,
}

impl SeriesFamily {
    /// All families, for round-robin or uniform sampling.
    pub const ALL: [SeriesFamily; 8] = [
        SeriesFamily::RandomWalk,
        SeriesFamily::TrendSeason,
        SeriesFamily::Ar1,
        SeriesFamily::HarmonicMix,
        SeriesFamily::StepFunction,
        SeriesFamily::Spiky,
        SeriesFamily::EcgLike,
        SeriesFamily::Logistic,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            SeriesFamily::RandomWalk => "random_walk",
            SeriesFamily::TrendSeason => "trend_season",
            SeriesFamily::Ar1 => "ar1",
            SeriesFamily::HarmonicMix => "harmonic_mix",
            SeriesFamily::StepFunction => "step",
            SeriesFamily::Spiky => "spiky",
            SeriesFamily::EcgLike => "ecg_like",
            SeriesFamily::Logistic => "logistic",
        }
    }
}

fn gauss(rng: &mut impl Rng) -> f64 {
    // Box–Muller; rand 0.8 has no Normal distribution without rand_distr.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generates one series of the given family and length.
///
/// `scale` and `offset` move the series into an application-specific value
/// range (sales in thousands, ECG in millivolts, ...), which is what gives
/// the interval-tree index something to discriminate on.
pub fn generate(
    rng: &mut impl Rng,
    family: SeriesFamily,
    len: usize,
    scale: f64,
    offset: f64,
) -> Vec<f64> {
    assert!(len > 0, "generate: len must be positive");
    let raw: Vec<f64> = match family {
        SeriesFamily::RandomWalk => {
            let mut x = 0.0;
            (0..len)
                .map(|_| {
                    x += gauss(rng) * 0.15;
                    x
                })
                .collect()
        }
        SeriesFamily::TrendSeason => {
            let slope = rng.gen_range(-0.02..0.02);
            let period = rng.gen_range(8.0..40.0);
            let amp = rng.gen_range(0.2..1.0);
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            (0..len)
                .map(|i| {
                    slope * i as f64
                        + amp * ((i as f64 / period) * std::f64::consts::TAU + phase).sin()
                        + gauss(rng) * 0.05
                })
                .collect()
        }
        SeriesFamily::Ar1 => {
            let phi = rng.gen_range(0.7..0.98);
            let mut x = gauss(rng);
            (0..len)
                .map(|_| {
                    x = phi * x + gauss(rng) * 0.3;
                    x
                })
                .collect()
        }
        SeriesFamily::HarmonicMix => {
            let k = rng.gen_range(2..=4);
            let comps: Vec<(f64, f64, f64)> = (0..k)
                .map(|_| {
                    (
                        rng.gen_range(4.0..60.0),
                        rng.gen_range(0.1..0.8),
                        rng.gen_range(0.0..std::f64::consts::TAU),
                    )
                })
                .collect();
            (0..len)
                .map(|i| {
                    comps
                        .iter()
                        .map(|&(p, a, ph)| a * ((i as f64 / p) * std::f64::consts::TAU + ph).sin())
                        .sum::<f64>()
                })
                .collect()
        }
        SeriesFamily::StepFunction => {
            let n_steps = rng.gen_range(2..6);
            let mut boundaries: Vec<usize> =
                (0..n_steps - 1).map(|_| rng.gen_range(1..len)).collect();
            boundaries.sort_unstable();
            let levels: Vec<f64> = (0..n_steps).map(|_| rng.gen_range(-1.0..1.0)).collect();
            (0..len)
                .map(|i| {
                    let seg = boundaries.iter().filter(|&&b| b <= i).count();
                    levels[seg] + gauss(rng) * 0.02
                })
                .collect()
        }
        SeriesFamily::Spiky => {
            let base = rng.gen_range(-0.2..0.2);
            let p_spike = rng.gen_range(0.02..0.08);
            (0..len)
                .map(|_| {
                    if rng.gen_bool(p_spike) {
                        base + rng.gen_range(0.5..1.5) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 }
                    } else {
                        base + gauss(rng) * 0.05
                    }
                })
                .collect()
        }
        SeriesFamily::EcgLike => {
            // A crude PQRST-ish repeating template with beat-length jitter.
            let beat = rng.gen_range(18..36);
            // Peaks narrower than the sample spacing (1/beat) would alias
            // away for short beats, leaving a beat with no R spike; clamp
            // the sharp widths to stay resolvable at this beat length.
            let w_r = (0.8 / beat as f64).max(0.016);
            let w_qs = (0.9 / beat as f64).max(0.018);
            let mut out = Vec::with_capacity(len);
            let mut i = 0usize;
            while out.len() < len {
                let pos = i % beat;
                let t = pos as f64 / beat as f64;
                let v = 0.12 * (-((t - 0.18) / 0.045).powi(2)).exp()    // P
                    - 0.18 * (-((t - 0.36) / w_qs).powi(2)).exp()       // Q
                    + 1.0 * (-((t - 0.40) / w_r).powi(2)).exp()         // R
                    - 0.22 * (-((t - 0.44) / w_qs).powi(2)).exp()       // S
                    + 0.28 * (-((t - 0.68) / 0.07).powi(2)).exp(); // T
                out.push(v + gauss(rng) * 0.01);
                i += 1;
            }
            out
        }
        SeriesFamily::Logistic => {
            let mid = rng.gen_range(0.25..0.75) * len as f64;
            let steep = rng.gen_range(0.05..0.3);
            (0..len)
                .map(|i| 1.0 / (1.0 + (-steep * (i as f64 - mid)).exp()) + gauss(rng) * 0.02)
                .collect()
        }
    };
    raw.into_iter().map(|v| v * scale + offset).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_families_generate_finite_series() {
        let mut rng = StdRng::seed_from_u64(3);
        for family in SeriesFamily::ALL {
            let s = generate(&mut rng, family, 128, 2.0, 10.0);
            assert_eq!(s.len(), 128, "{family:?}");
            assert!(
                s.iter().all(|v| v.is_finite()),
                "{family:?} produced non-finite"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(
            &mut StdRng::seed_from_u64(9),
            SeriesFamily::Ar1,
            50,
            1.0,
            0.0,
        );
        let b = generate(
            &mut StdRng::seed_from_u64(9),
            SeriesFamily::Ar1,
            50,
            1.0,
            0.0,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn scale_offset_applied() {
        let s = generate(
            &mut StdRng::seed_from_u64(1),
            SeriesFamily::Logistic,
            200,
            1.0,
            100.0,
        );
        // Logistic lives in ~[0,1] before offset; after +100 everything > 95.
        assert!(s.iter().all(|&v| v > 95.0));
    }

    #[test]
    fn ecg_is_quasi_periodic() {
        let s = generate(
            &mut StdRng::seed_from_u64(2),
            SeriesFamily::EcgLike,
            300,
            1.0,
            0.0,
        );
        // R peaks dominate: max should clearly exceed the mean.
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let max = s.iter().copied().fold(f64::MIN, f64::max);
        assert!(max > mean + 0.5);
    }

    #[test]
    fn families_have_distinct_names() {
        let mut names: Vec<_> = SeriesFamily::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SeriesFamily::ALL.len());
    }
}
