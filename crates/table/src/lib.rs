//! # lcdd-table
//!
//! The tabular-data substrate for the FCM reproduction: columns and tables
//! (paper Sec. II), windowed aggregation operators (Sec. II/V), the
//! table-level augmentations used to train the chart segmenter (Sec. IV-A),
//! synthetic Plotly-like corpus generation (substituting the real 2.3M-record
//! Plotly corpus of Sec. VII-A), normalisation/resampling helpers and CSV
//! import/export.

pub mod aggregate;
pub mod augment;
pub mod column;
pub mod corpus;
pub mod csv;
pub mod generators;
pub mod normalize;
pub mod series;
pub mod table;
pub mod vis_spec;

pub use aggregate::{aggregate, aggregated_len, AggOp};
pub use column::Column;
pub use corpus::{build_corpus, corpus_stats, CorpusConfig, CorpusStats, Record};
pub use generators::{generate, SeriesFamily};
pub use series::{DataSeries, UnderlyingData};
pub use table::Table;
pub use vis_spec::VisSpec;
