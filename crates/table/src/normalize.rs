//! Normalisation and resampling utilities shared by the encoders, the
//! ground-truth relevance and the baselines.

/// Z-normalises a series in place; constant series become all-zero.
pub fn z_normalize(values: &mut [f64]) {
    if values.is_empty() {
        return;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    let std = var.sqrt();
    if std < 1e-12 {
        values.iter_mut().for_each(|v| *v = 0.0);
    } else {
        values.iter_mut().for_each(|v| *v = (*v - mean) / std);
    }
}

/// Returns a z-normalised copy.
pub fn z_normalized(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    z_normalize(&mut v);
    v
}

/// Min-max scales into `[0, 1]`; constant series map to `0.5`.
pub fn min_max_normalized(values: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi - lo < 1e-12 {
        return vec![0.5; values.len()];
    }
    values.iter().map(|&v| (v - lo) / (hi - lo)).collect()
}

/// Linearly resamples a series to exactly `target_len` points.
///
/// Used to put variable-length columns on the encoder's fixed segment grid
/// and by the numerical-x-axis generalisation (Sec. VI-B) after sorting by
/// the candidate x column.
pub fn resample(values: &[f64], target_len: usize) -> Vec<f64> {
    assert!(target_len > 0, "resample: target_len must be positive");
    if values.is_empty() {
        return vec![0.0; target_len];
    }
    if values.len() == 1 {
        return vec![values[0]; target_len];
    }
    if values.len() == target_len {
        return values.to_vec();
    }
    let n = values.len();
    (0..target_len)
        .map(|i| {
            let pos = i as f64 * (n - 1) as f64 / (target_len - 1).max(1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f64;
            values[lo] * (1.0 - frac) + values[hi] * frac
        })
        .collect()
}

/// Interpolates `(x, y)` samples onto an evenly spaced x grid of
/// `target_len` points spanning `[min(x), max(x)]`. Input must be sorted by
/// x (ties allowed). Supports the numerical-x generalisation of Sec. VI-B.
pub fn interpolate_even(points: &[(f64, f64)], target_len: usize) -> Vec<f64> {
    assert!(
        target_len > 0,
        "interpolate_even: target_len must be positive"
    );
    if points.is_empty() {
        return vec![0.0; target_len];
    }
    if points.len() == 1 {
        return vec![points[0].1; target_len];
    }
    let x0 = points.first().unwrap().0;
    let x1 = points.last().unwrap().0;
    if (x1 - x0).abs() < 1e-12 {
        return vec![points[0].1; target_len];
    }
    let mut out = Vec::with_capacity(target_len);
    let mut j = 0usize;
    for i in 0..target_len {
        let x = x0 + (x1 - x0) * i as f64 / (target_len - 1).max(1) as f64;
        while j + 1 < points.len() && points[j + 1].0 < x {
            j += 1;
        }
        let (xa, ya) = points[j];
        let (xb, yb) = points[(j + 1).min(points.len() - 1)];
        let y = if (xb - xa).abs() < 1e-12 {
            ya
        } else {
            ya + (yb - ya) * ((x - xa) / (xb - xa)).clamp(0.0, 1.0)
        };
        out.push(y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_norm_moments() {
        let mut v = vec![2.0, 4.0, 6.0, 8.0];
        z_normalize(&mut v);
        let mean: f64 = v.iter().sum::<f64>() / 4.0;
        let var: f64 = v.iter().map(|&x| x * x).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn z_norm_constant_is_zero() {
        let mut v = vec![5.0; 10];
        z_normalize(&mut v);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn min_max_bounds() {
        let v = min_max_normalized(&[10.0, 20.0, 15.0]);
        assert_eq!(v, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn resample_endpoints_preserved() {
        let v = vec![0.0, 1.0, 2.0, 3.0];
        let r = resample(&v, 7);
        assert_eq!(r.len(), 7);
        assert!((r[0] - 0.0).abs() < 1e-12);
        assert!((r[6] - 3.0).abs() < 1e-12);
        // Linear data stays linear after resampling.
        for w in r.windows(2) {
            assert!((w[1] - w[0] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_identity_when_same_len() {
        let v = vec![3.0, 1.0, 4.0];
        assert_eq!(resample(&v, 3), v);
    }

    #[test]
    fn resample_degenerate_inputs() {
        assert_eq!(resample(&[], 3), vec![0.0, 0.0, 0.0]);
        assert_eq!(resample(&[7.0], 3), vec![7.0, 7.0, 7.0]);
    }

    #[test]
    fn interpolate_even_linear() {
        let pts = [(0.0, 0.0), (10.0, 10.0)];
        let y = interpolate_even(&pts, 5);
        assert_eq!(y, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
    }

    #[test]
    fn interpolate_uneven_spacing() {
        // Dense near 0, sparse after: interpolation must follow segments.
        let pts = [(0.0, 0.0), (1.0, 1.0), (10.0, 1.0)];
        let y = interpolate_even(&pts, 11);
        assert!((y[0] - 0.0).abs() < 1e-9);
        assert!((y[1] - 1.0).abs() < 1e-9); // x=1 hits the knee
        assert!(y[5] > 0.99 && y[10] > 0.99);
    }
}
