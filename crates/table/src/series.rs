//! Underlying data of a line chart (paper Sec. II).
//!
//! `D = {d1..dM}`, each `d` a list of `(x, y)` points. All series share the
//! same x values; the relevance definition (Sec. III-A) deliberately ignores
//! x, so the y values are the payload.

use crate::aggregate::aggregate;
use crate::table::Table;
use crate::vis_spec::VisSpec;

/// One data series `d` — the data behind a single line.
#[derive(Clone, Debug, PartialEq)]
pub struct DataSeries {
    /// Display name (usually the source column header).
    pub name: String,
    /// y values, in x order.
    pub ys: Vec<f64>,
}

impl DataSeries {
    /// Creates a series.
    pub fn new(name: impl Into<String>, ys: Vec<f64>) -> Self {
        DataSeries {
            name: name.into(),
            ys,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// `(min, max)` of the y values; `None` when empty/non-finite.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &y in &self.ys {
            if y.is_finite() {
                lo = lo.min(y);
                hi = hi.max(y);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }
}

/// The underlying data `D` of a chart: one series per line.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct UnderlyingData {
    pub series: Vec<DataSeries>,
}

impl UnderlyingData {
    /// Number of lines `M`.
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Combined y range across all series.
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.series {
            if let Some((a, b)) = s.y_range() {
                lo = lo.min(a);
                hi = hi.max(b);
            }
        }
        (lo <= hi).then_some((lo, hi))
    }

    /// Materialises the underlying data a [`VisSpec`] selects from a table,
    /// applying the spec's aggregation if any (paper Sec. II: the two ways
    /// to generate `D` from column pairs).
    pub fn from_spec(table: &Table, spec: &VisSpec) -> Self {
        let series = spec
            .y_columns
            .iter()
            .map(|&ci| {
                let col = table.column(ci);
                let ys = match spec.agg {
                    Some((op, window)) => aggregate(&col.values, op, window),
                    None => col.values.clone(),
                };
                DataSeries::new(col.name.clone(), ys)
            })
            .collect();
        UnderlyingData { series }
    }
}

/// Convenience: materialise a plain (non-aggregated) `D` from chosen columns.
pub fn underlying_from_columns(table: &Table, y_columns: &[usize]) -> UnderlyingData {
    let spec = VisSpec {
        x_column: None,
        y_columns: y_columns.to_vec(),
        agg: None,
    };
    UnderlyingData::from_spec(table, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggOp;
    use crate::column::Column;

    fn table() -> Table {
        Table::new(
            0,
            "t",
            vec![
                Column::new("x", vec![0.0, 1.0, 2.0, 3.0]),
                Column::new("a", vec![1.0, 2.0, 3.0, 4.0]),
                Column::new("b", vec![-1.0, -2.0, -3.0, -4.0]),
            ],
        )
    }

    #[test]
    fn from_spec_plain() {
        let spec = VisSpec {
            x_column: Some(0),
            y_columns: vec![1, 2],
            agg: None,
        };
        let d = UnderlyingData::from_spec(&table(), &spec);
        assert_eq!(d.num_series(), 2);
        assert_eq!(d.series[0].ys, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.y_range(), Some((-4.0, 4.0)));
    }

    #[test]
    fn from_spec_aggregated() {
        let spec = VisSpec {
            x_column: None,
            y_columns: vec![1],
            agg: Some((AggOp::Sum, 2)),
        };
        let d = UnderlyingData::from_spec(&table(), &spec);
        assert_eq!(d.series[0].ys, vec![3.0, 7.0]);
    }

    #[test]
    fn series_range_ignores_non_finite() {
        let s = DataSeries::new("s", vec![1.0, f64::NAN, 5.0]);
        assert_eq!(s.y_range(), Some((1.0, 5.0)));
        let e = DataSeries::new("e", vec![f64::NAN]);
        assert_eq!(e.y_range(), None);
    }
}
