//! Tables (datasets): ordered collections of equal-length columns.

use crate::column::Column;

/// A dataset `T` with `NC` columns of `NR` rows each (paper Sec. II).
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Stable identifier within a repository.
    pub id: u64,
    /// Human-readable name.
    pub name: String,
    /// Columns; all must have equal length.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates a table, checking that all columns have equal length.
    pub fn new(id: u64, name: impl Into<String>, columns: Vec<Column>) -> Self {
        if let Some(first) = columns.first() {
            for c in &columns {
                assert_eq!(
                    c.len(),
                    first.len(),
                    "Table::new: column {} has {} rows, expected {}",
                    c.name,
                    c.len(),
                    first.len()
                );
            }
        }
        Table {
            id,
            name: name.into(),
            columns,
        }
    }

    /// Number of rows (`NR`).
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns (`NC`).
    pub fn num_cols(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column by index.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Find a column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Indices of columns whose `[min, max]` range overlaps `[lo, hi]` —
    /// the y-tick pre-filter applied by the dataset encoder (Sec. IV-C).
    ///
    /// `slack` widens the query range multiplicatively on both sides
    /// (aggregated charts can exceed the raw column range, e.g. `sum`).
    pub fn columns_in_range(&self, lo: f64, hi: f64, slack: f64) -> Vec<usize> {
        let span = (hi - lo).abs().max(1e-12);
        let qlo = lo - span * slack;
        let qhi = hi + span * slack;
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let (cmin, cmax) = (c.min()?, c.max()?);
                // Also admit columns whose *aggregated* values could fall in
                // range: the index interval [min, sum] captures this.
                let (ilo, ihi) = c.index_interval()?;
                let raw_overlap = cmin <= qhi && cmax >= qlo;
                let agg_overlap = ilo <= qhi && ihi >= qlo;
                (raw_overlap || agg_overlap).then_some(i)
            })
            .collect()
    }

    /// A content fingerprint used for near-duplicate elimination in the
    /// benchmark build: coarse per-column summary statistics rounded to two
    /// significant decimals.
    pub fn fingerprint(&self) -> Vec<(i64, i64, i64)> {
        self.columns
            .iter()
            .map(|c| {
                let q = |v: f64| (v * 100.0).round() as i64;
                (
                    q(c.mean().unwrap_or(0.0)),
                    q(c.std().unwrap_or(0.0)),
                    c.len() as i64,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(
            1,
            "t",
            vec![
                Column::new("a", vec![0.0, 1.0, 2.0]),
                Column::new("b", vec![10.0, 20.0, 30.0]),
            ],
        )
    }

    #[test]
    fn dims() {
        let t = t();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("zz"), None);
    }

    #[test]
    #[should_panic(expected = "rows, expected")]
    fn ragged_rejected() {
        let _ = Table::new(
            0,
            "bad",
            vec![
                Column::new("a", vec![1.0]),
                Column::new("b", vec![1.0, 2.0]),
            ],
        );
    }

    #[test]
    fn range_filter() {
        let t = t();
        // Range [9, 35] matches only column b's raw range.
        let hits = t.columns_in_range(9.0, 35.0, 0.0);
        assert_eq!(hits, vec![1]);
        // Wide range matches both.
        let hits = t.columns_in_range(-100.0, 100.0, 0.0);
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    fn range_filter_admits_aggregated_reach() {
        // Column a: raw range [0,2], but sum = 3 -> a query near 3 (a summed
        // chart) must still admit it via the index interval.
        let t = t();
        let hits = t.columns_in_range(2.5, 3.5, 0.0);
        assert!(hits.contains(&0));
    }

    #[test]
    fn fingerprints_detect_duplicates() {
        let a = t();
        let mut b = t();
        b.id = 99;
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.columns[0].values[0] += 5.0;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
