//! Visualization specifications — the "visualization configuration" half of
//! a Plotly record (paper Sec. VII-A): which columns are plotted and with
//! what aggregation.

use crate::aggregate::AggOp;

/// How a line chart is produced from a table.
#[derive(Clone, Debug, PartialEq)]
pub struct VisSpec {
    /// Column used for the x axis; `None` means an auto-generated index
    /// `1, 2, 3, ...` (paper Sec. II).
    pub x_column: Option<usize>,
    /// Columns plotted as lines (one line per column).
    pub y_columns: Vec<usize>,
    /// Optional aggregation `(operator, window)` applied to each y column.
    pub agg: Option<(AggOp, usize)>,
}

impl VisSpec {
    /// Plain multi-line spec over the given y columns with an index x axis.
    pub fn plain(y_columns: Vec<usize>) -> Self {
        VisSpec {
            x_column: None,
            y_columns,
            agg: None,
        }
    }

    /// Aggregated spec.
    pub fn aggregated(y_columns: Vec<usize>, op: AggOp, window: usize) -> Self {
        VisSpec {
            x_column: None,
            y_columns,
            agg: Some((op, window)),
        }
    }

    /// Number of lines this spec draws.
    pub fn num_lines(&self) -> usize {
        self.y_columns.len()
    }

    /// True when the spec applies a real aggregation (operator other than
    /// identity and a window of at least 2).
    pub fn is_aggregated(&self) -> bool {
        matches!(self.agg, Some((op, w)) if op != AggOp::Identity && w >= 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p = VisSpec::plain(vec![1, 2, 3]);
        assert_eq!(p.num_lines(), 3);
        assert!(!p.is_aggregated());

        let a = VisSpec::aggregated(vec![0], AggOp::Avg, 10);
        assert!(a.is_aggregated());
    }

    #[test]
    fn degenerate_aggregations_not_flagged() {
        let w1 = VisSpec::aggregated(vec![0], AggOp::Avg, 1);
        assert!(!w1.is_aggregated());
        let ident = VisSpec::aggregated(vec![0], AggOp::Identity, 50);
        assert!(!ident.is_aggregated());
    }
}
