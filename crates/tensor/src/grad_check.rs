//! Finite-difference gradient checking.
//!
//! Used by the property-based test-suite to verify every backward closure in
//! [`crate::ops`] against central differences.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Result of a gradient check: maximum absolute and relative error across
/// every input element.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    pub max_abs_err: f32,
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when errors are below the given tolerances.
    pub fn passes(&self, abs_tol: f32, rel_tol: f32) -> bool {
        self.max_abs_err <= abs_tol || self.max_rel_err <= rel_tol
    }
}

/// Checks the analytic gradient of `f` (a scalar-valued function of `n`
/// matrix inputs) against central finite differences with step `h`.
///
/// `f` receives a fresh tape and leaf variables for each probe, and must
/// return a `1x1` scalar `Var`.
pub fn grad_check(inputs: &[Matrix], h: f32, f: impl Fn(&Tape, &[Var]) -> Var) -> GradCheckReport {
    // Analytic gradients.
    let tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let out = f(&tape, &vars);
    assert_eq!(
        out.shape(),
        (1, 1),
        "grad_check: function must return a scalar"
    );
    tape.backward(&out);
    let analytic: Vec<Matrix> = vars
        .iter()
        .zip(inputs)
        .map(|(v, m)| {
            v.grad()
                .unwrap_or_else(|| Matrix::zeros(m.rows(), m.cols()))
        })
        .collect();

    let eval = |probe: &[Matrix]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var> = probe.iter().map(|m| tape.leaf(m.clone())).collect();
        f(&tape, &vars).scalar()
    };

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    let mut probe: Vec<Matrix> = inputs.to_vec();
    for (i, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let orig = input.as_slice()[e];
            probe[i].as_mut_slice()[e] = orig + h;
            let f_plus = eval(&probe);
            probe[i].as_mut_slice()[e] = orig - h;
            let f_minus = eval(&probe);
            probe[i].as_mut_slice()[e] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * h);
            let a = analytic[i].as_slice()[e];
            let abs_err = (a - numeric).abs();
            let denom = a.abs().max(numeric.abs()).max(1e-4);
            report.max_abs_err = report.max_abs_err.max(abs_err);
            report.max_rel_err = report.max_rel_err.max(abs_err / denom);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_simple_product() {
        let a = Matrix::from_vec(1, 3, vec![0.5, -0.3, 0.9]);
        let b = Matrix::from_vec(1, 3, vec![1.5, 0.7, -0.2]);
        let report = grad_check(&[a, b], 1e-3, |_t, vars| vars[0].mul(&vars[1]).sum_all());
        assert!(report.passes(1e-2, 1e-2), "{report:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // f(x) = sum(x^2) but we check against a deliberately broken op:
        // scale(3.0) pretending to be the gradient of square would fail.
        // Here we simply verify that grad_check flags a non-matching pair by
        // comparing square's gradient against a perturbed function.
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        // Analytic path computes grad of sum(x^2)=2x; numeric path evaluates
        // sum(3*x) whose derivative is 3. They disagree, so errors are large.
        let tape = Tape::new();
        let v = tape.leaf(a.clone());
        let out = v.square().sum_all();
        tape.backward(&out);
        let analytic = v.grad().unwrap();
        let numeric_at = |x: f32| 3.0 * x; // pretend d/dx of a different f
        let err = (analytic.get(0, 0) - numeric_at(1.0)).abs();
        assert!(err > 0.5);
    }
}
