//! Weight initialisation schemes.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// Used for all projection matrices in the transformer encoders.
pub fn xavier_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Kaiming/He uniform for ReLU-family activations:
/// `U(-a, a)` with `a = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / rows as f32).sqrt();
    let data = (0..rows * cols).map(|_| rng.gen_range(-a..=a)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Gaussian initialisation with the given standard deviation (Box–Muller).
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    while data.len() < rows * cols {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < rows * cols {
            data.push(r * theta.sin() * std);
        }
    }
    Matrix::from_vec(rows, cols, data)
}

/// All-zeros initialisation (biases, layernorm beta).
pub fn zeros(rows: usize, cols: usize) -> Matrix {
    Matrix::zeros(rows, cols)
}

/// All-ones initialisation (layernorm gamma).
pub fn ones(rows: usize, cols: usize) -> Matrix {
    Matrix::full(rows, cols, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = xavier_uniform(&mut rng, 64, 32);
        let a = (6.0 / 96.0f32).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a + 1e-6));
        // Should not be degenerate.
        assert!(m.max_abs() > a * 0.5);
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = normal(&mut rng, 100, 100, 0.5);
        let mean = m.mean();
        let var = m
            .as_slice()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.05, "std = {}", var.sqrt());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(3), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(3), 4, 4);
        assert_eq!(a, b);
    }
}
