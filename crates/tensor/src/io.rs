//! Binary weight (de)serialisation for [`ParamStore`].
//!
//! A deliberately tiny, self-describing little-endian format (no external
//! serialisation crates are available offline):
//!
//! ```text
//! magic  "LCDDW001"                              (8 bytes)
//! count  u32
//! repeat count times:
//!   name_len u32, name utf-8 bytes,
//!   rows u32, cols u32, data f32-LE * rows*cols
//! ```

use std::io::{self, Read, Write};
use std::path::Path;

use crate::matrix::Matrix;
use crate::param::ParamStore;

const MAGIC: &[u8; 8] = b"LCDDW001";

/// Serialises every parameter (names + values; optimizer moments are not
/// persisted) to a writer.
pub fn write_params<W: Write>(store: &ParamStore, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u32).to_le_bytes())?;
    for (name, value) in store.iter() {
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(value.rows() as u32).to_le_bytes())?;
        w.write_all(&(value.cols() as u32).to_le_bytes())?;
        for &x in value.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads parameters written by [`write_params`] into `(name, matrix)` pairs.
pub fn read_params<R: Read>(mut r: R) -> io::Result<Vec<(String, Matrix)>> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic in weight file",
        ));
    }
    let mut u32buf = [0u8; 4];
    r.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut u32buf)?;
        let name_len = u32::from_le_bytes(u32buf) as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        r.read_exact(&mut u32buf)?;
        let rows = u32::from_le_bytes(u32buf) as usize;
        r.read_exact(&mut u32buf)?;
        let cols = u32::from_le_bytes(u32buf) as usize;
        let mut data = vec![0f32; rows * cols];
        let mut f32buf = [0u8; 4];
        for d in data.iter_mut() {
            r.read_exact(&mut f32buf)?;
            *d = f32::from_le_bytes(f32buf);
        }
        out.push((name, Matrix::from_vec(rows, cols, data)));
    }
    Ok(out)
}

/// Saves a store to a file.
pub fn save_params(store: &ParamStore, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_params(store, std::io::BufWriter::new(file))
}

/// Assigns `(name, matrix)` pairs (e.g. from [`read_params`]) into an
/// existing store. Parameters are matched by name; shapes must agree.
/// Returns the number of parameters restored.
pub fn assign_params(store: &mut ParamStore, pairs: Vec<(String, Matrix)>) -> io::Result<usize> {
    let mut restored = 0;
    for (name, value) in pairs {
        if let Some(pos) = store.entries.iter().position(|e| e.name == name) {
            if store.entries[pos].value.shape() != value.shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("shape mismatch for parameter {name}"),
                ));
            }
            store.entries[pos].value = value;
            restored += 1;
        }
    }
    Ok(restored)
}

/// Loads weights from a file into an existing store (see [`assign_params`]).
pub fn load_params(store: &mut ParamStore, path: impl AsRef<Path>) -> io::Result<usize> {
    let file = std::fs::File::open(path)?;
    let pairs = read_params(std::io::BufReader::new(file))?;
    assign_params(store, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_in_memory() {
        let mut store = ParamStore::new();
        store.add("a", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        store.add("b", Matrix::from_vec(1, 3, vec![-1.0, 0.5, 9.0]));
        let mut buf = Vec::new();
        write_params(&store, &mut buf).unwrap();
        let pairs = read_params(buf.as_slice()).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, "a");
        assert_eq!(pairs[0].1.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pairs[1].1.shape(), (1, 3));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTMAGIC\x00\x00\x00\x00".to_vec();
        assert!(read_params(buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip_and_name_matching() {
        let dir = std::env::temp_dir().join("lcdd_tensor_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");

        let mut store = ParamStore::new();
        let id = store.add("layer.w", Matrix::from_vec(1, 2, vec![7.0, 8.0]));
        save_params(&store, &path).unwrap();

        let mut fresh = ParamStore::new();
        let fid = fresh.add("layer.w", Matrix::zeros(1, 2));
        fresh.add("layer.extra", Matrix::zeros(1, 1));
        let restored = load_params(&mut fresh, &path).unwrap();
        assert_eq!(restored, 1);
        assert_eq!(fresh.value(fid).as_slice(), store.value(id).as_slice());
        std::fs::remove_file(&path).ok();
    }
}
