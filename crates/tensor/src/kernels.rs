//! Blocked/packed matmul kernels — the compute core under every encoder,
//! the HCMAN matcher and the linear-scan scoring path.
//!
//! The dense path packs the `B` operand into contiguous column panels of
//! width [`NR`] and runs an `MR`×`NR` register-tiled micro-kernel with
//! [`MR`]-wide accumulator unrolling; both panel reads and accumulator
//! updates are contiguous, so LLVM auto-vectorizes the inner loop to the
//! widest SIMD the target supports (the workspace builds with
//! `target-cpu=native`). Large products are additionally split across the
//! [`crate::pool`] workers — by output-row bands when there are enough
//! rows, otherwise by packed column panels (the small-`n` score-GEMM
//! shape) — with band boundaries chosen so results are bit-identical to
//! the serial sweep at every thread count.
//!
//! Three data layouts cover the autograd tape's needs without ever
//! materializing a transpose:
//!
//! * [`matmul_into`] — `C = A · B`
//! * [`matmul_nt_into`] — `C = A · Bᵀ` (backward w.r.t. the left operand)
//! * [`matmul_tn_into`] — `C = Aᵀ · B` (backward w.r.t. the right operand)
//!
//! A sparse fast path (the seed kernel's skip-zero loop) is kept behind a
//! cheap density probe: one-hot / masked inputs such as MoE gate outputs
//! still skip their zero rows, while dense inputs never pay the
//! per-element branch the seed imposed on everything.

use crate::matrix::Matrix;
use crate::pool;

/// Micro-kernel row tile (accumulator unroll factor).
pub const MR: usize = 4;
/// Micro-kernel column tile (one packed panel width).
pub const NR: usize = 16;

/// Products smaller than this many multiply-adds run the plain loop; the
/// packing + tiling overhead only pays off once the operands stop fitting
/// in registers/L1 anyway.
const TINY_FLOP_LIMIT: usize = 16 * 1024;

/// Minimum multiply-adds per band before the parallel split pays for a
/// scoped spawn. The gate is derived from *per-band work* (`flops /
/// bands`), not from `n` alone: a wide-but-short score GEMM (small `n`,
/// large `k·m`) carries plenty of work per worker even though it has few
/// output rows, and splits by column panels instead (see
/// [`ColumnBandSplit`] in [`matmul_into`]).
const PAR_BAND_FLOP_LIMIT: usize = 256 * 1024;

/// Row granule of the parallel split. Band boundaries must align to the
/// *widest* micro-kernel tile: the tile sweep (12-row AVX-512 tiles, then
/// [`MR`]-row tiles, then single rows) restarts at each band start, and the
/// AVX-512 tile accumulates with fused multiply-adds (one rounding) while
/// the generic tiles round twice — so a band boundary that shifts rows
/// between tile kinds would change result bits with the thread count.
/// With bands aligned to the widest tile, every row lands in the same tile
/// kind as in the serial sweep and results are bit-identical at any
/// thread count.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
const BAND_ALIGN: usize = avx512::MR_WIDE;
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
const BAND_ALIGN: usize = MR;

/// How [`matmul_into`]'s dense path distributes work across the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SplitPlan {
    /// One worker: not enough work (or workers) to amortize spawning.
    Serial,
    /// Disjoint bands of output rows, aligned to [`BAND_ALIGN`].
    Rows(usize),
    /// Disjoint bands of packed column panels ([`NR`]-aligned); chosen for
    /// row-poor shapes where a row split cannot use the workers.
    Cols(usize),
}

/// Decides the parallel split for an `(n, p)` output with `flops`
/// multiply-adds on a pool of `threads` workers. Bands are capped so each
/// carries at least [`PAR_BAND_FLOP_LIMIT`] work.
fn split_plan(flops: usize, n: usize, p: usize, threads: usize) -> SplitPlan {
    let work_bands = flops / PAR_BAND_FLOP_LIMIT;
    let row_bands = threads.min(work_bands).min(n.div_ceil(BAND_ALIGN));
    if row_bands > 1 {
        return SplitPlan::Rows(row_bands);
    }
    let col_bands = threads.min(work_bands).min(p.div_ceil(NR));
    if col_bands > 1 {
        return SplitPlan::Cols(col_bands);
    }
    SplitPlan::Serial
}

/// Fraction of probed elements that must be zero before the sparse
/// skip-zero path is chosen.
const SPARSE_THRESHOLD: f64 = 0.8;

/// Reference triple-loop matmul (i-j-k, no blocking, no zero-skip).
///
/// This is the correctness oracle for the property tests and the baseline
/// the kernel benchmarks compare against. Keep it boring.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_naive: inner dimensions differ ({}x{} * {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, p);
    for i in 0..n {
        for j in 0..p {
            let mut acc = 0.0f32;
            for k in 0..m {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Estimated fraction of zero elements, probing at most 256 samples.
///
/// Probe positions come from Fibonacci hashing rather than a fixed
/// stride: a stride of `len / 256` aligns with the row length whenever
/// the width divides it (e.g. any 256-wide matrix), which would sample a
/// single column and misclassify dense matrices with one zero column as
/// sparse.
fn zero_fraction(data: &[f32]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let n = data.len() as u128;
    let samples = data.len().min(256) as u64;
    let mut zeros = 0usize;
    for i in 0..samples {
        let h = (i + 1).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
        let idx = ((h as u128 * n) >> 32) as usize;
        zeros += usize::from(data[idx] == 0.0);
    }
    zeros as f64 / samples as f64
}

/// `out = a · b`, shapes `(n,m) x (m,p) -> (n,p)`. `out` is fully
/// overwritten; it must already have the right shape.
///
/// Writing into caller-provided `out` removes the per-op output
/// allocation of [`Matrix::matmul`]. The dense path still allocates one
/// internal scratch buffer per call to pack `B` into panels (packed-panel
/// caching for persistent weight matrices is a possible future
/// optimization); tiny and sparse paths allocate nothing.
pub fn matmul_into(out: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (n, m) = a.shape();
    let (mb, p) = b.shape();
    assert_eq!(
        m, mb,
        "matmul: inner dimensions differ ({n}x{m} * {mb}x{p})"
    );
    assert_eq!(out.shape(), (n, p), "matmul: output shape mismatch");
    let flops = n * m * p;
    if flops == 0 {
        out.as_mut_slice().fill(0.0);
        return;
    }
    if flops <= TINY_FLOP_LIMIT {
        return matmul_ikj(out, a, b);
    }
    if zero_fraction(a.as_slice()) >= SPARSE_THRESHOLD {
        return matmul_sparse_a(out, a, b);
    }

    // Dense path: pack B into zero-padded NR-wide column panels so the
    // micro-kernel streams contiguous memory regardless of p.
    let packed = pack_b_panels(b);
    let a_data = a.as_slice();
    let out_data = out.as_mut_slice();

    match split_plan(flops, n, p, pool::num_threads()) {
        SplitPlan::Rows(bands) => {
            // Row bands: each worker owns a disjoint band of output rows,
            // aligned to the widest micro-kernel tile so every row keeps
            // its serial-sweep tile kind (see [`BAND_ALIGN`]).
            let rows_per = n.div_ceil(bands).next_multiple_of(BAND_ALIGN);
            pool::par_chunks_mut(out_data, rows_per * p, |offset, band| {
                let i0 = offset / p;
                let rows = band.len() / p;
                matmul_packed_rows(band, &a_data[i0 * m..(i0 + rows) * m], &packed, rows, m, p);
            });
        }
        SplitPlan::Cols(bands) => {
            // Column bands: each worker sweeps all rows against a disjoint
            // range of packed panels into a private buffer, scattered into
            // `out` afterwards. Each output element's accumulation happens
            // entirely within one panel with the full-row tile sweep, so
            // the bits match the serial sweep exactly; the scatter copies
            // O(n·p) floats against O(n·m·p) flops of saved wall-clock.
            let n_panels = p.div_ceil(NR);
            let panels_per = n_panels.div_ceil(bands);
            let starts: Vec<usize> = (0..n_panels).step_by(panels_per).collect();
            let parts: Vec<(usize, usize, Vec<f32>)> = pool::par_map(&starts, |&jp0| {
                let jp1 = (jp0 + panels_per).min(n_panels);
                let j0 = jp0 * NR;
                let width = (jp1 * NR).min(p) - j0;
                let mut part = vec![0.0f32; n * width];
                // The band is a self-contained (n x width) product over its
                // own panels: the right-edge panel width works out the same
                // because only the globally-last panel is narrow.
                matmul_packed_rows(
                    &mut part,
                    a_data,
                    &packed[jp0 * m * NR..jp1 * m * NR],
                    n,
                    m,
                    width,
                );
                (j0, width, part)
            });
            for (j0, width, part) in parts {
                for i in 0..n {
                    out_data[i * p + j0..i * p + j0 + width]
                        .copy_from_slice(&part[i * width..(i + 1) * width]);
                }
            }
        }
        SplitPlan::Serial => matmul_packed_rows(out_data, a_data, &packed, n, m, p),
    }
}

/// Packs `b` into panel-major layout: panel `jp` holds columns
/// `[jp*NR, (jp+1)*NR)` as `m` contiguous rows of `NR` floats, zero-padded
/// on the right edge.
fn pack_b_panels(b: &Matrix) -> Vec<f32> {
    let (m, p) = b.shape();
    let n_panels = p.div_ceil(NR);
    let mut packed = vec![0.0f32; n_panels * m * NR];
    let b_data = b.as_slice();
    for jp in 0..n_panels {
        let j0 = jp * NR;
        let w = NR.min(p - j0);
        let panel = &mut packed[jp * m * NR..(jp + 1) * m * NR];
        for k in 0..m {
            panel[k * NR..k * NR + w].copy_from_slice(&b_data[k * p + j0..k * p + j0 + w]);
        }
    }
    packed
}

/// Dense micro-kernel sweep over `rows` output rows. `out` and `a` are the
/// row-major buffers for those rows; `packed` is the full panel-packed B.
fn matmul_packed_rows(out: &mut [f32], a: &[f32], packed: &[f32], rows: usize, m: usize, p: usize) {
    debug_assert_eq!(out.len(), rows * p);
    debug_assert_eq!(a.len(), rows * m);
    let n_panels = p.div_ceil(NR);
    // Panel-outer loop order: one `m x NR` panel (≤16 KiB at the sizes this
    // workspace hits) stays L1-resident while every row block sweeps it;
    // the i-outer order would re-stream the whole packed B from L2 once
    // per row block.
    for jp in 0..n_panels {
        let panel = &packed[jp * m * NR..(jp + 1) * m * NR];
        let mut i = 0;
        // Widest tile first (12 rows with explicit AVX-512 FMA where
        // available), then the generic MR tile, then single rows.
        #[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
        while i + avx512::MR_WIDE <= rows {
            // SAFETY: avx512f is a compile-time target feature here, and
            // the tile bounds were just checked.
            unsafe { avx512::microkernel_12(out, a, panel, i, jp, m, p) };
            i += avx512::MR_WIDE;
        }
        while i + MR <= rows {
            microkernel::<MR>(out, a, panel, i, jp, m, p);
            i += MR;
        }
        // Tail rows (< MR): single-row kernel, still panel-contiguous.
        while i < rows {
            microkernel_1(out, a, panel, i, jp, m, p);
            i += 1;
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod avx512 {
    //! Explicit AVX-512 micro-kernel. The autovectorized generic tile tops
    //! out well below FMA throughput because LLVM picks a conservative
    //! vector width; with 32 zmm registers a 12×16 tile (12 accumulators +
    //! panel row + broadcast) keeps both FMA ports busy.

    use super::NR;
    use core::arch::x86_64::*;

    /// Rows per AVX-512 tile.
    pub const MR_WIDE: usize = 12;

    /// 12×NR tile: accumulate `out[i0..i0+12][jp*NR..]` over the packed
    /// panel.
    ///
    /// # Safety
    /// Requires the `avx512f` target feature (enforced by the enclosing
    /// `cfg`) and `i0 + 12 <= rows`, `panel.len() >= m * NR`.
    #[inline]
    pub unsafe fn microkernel_12(
        out: &mut [f32],
        a: &[f32],
        panel: &[f32],
        i0: usize,
        jp: usize,
        m: usize,
        p: usize,
    ) {
        debug_assert_eq!(NR, 16, "tile assumes one zmm per panel row");
        let mut acc = [_mm512_setzero_ps(); MR_WIDE];
        let panel_ptr = panel.as_ptr();
        let a_ptr = a.as_ptr();
        for k in 0..m {
            let brow = _mm512_loadu_ps(panel_ptr.add(k * NR));
            // Unrolled broadcast-FMA sweep; LLVM folds the broadcasts into
            // the FMA memory operands.
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let v = _mm512_set1_ps(*a_ptr.add((i0 + r) * m + k));
                *acc_r = _mm512_fmadd_ps(v, brow, *acc_r);
            }
        }
        let j0 = jp * NR;
        let w = NR.min(p - j0);
        if w == NR {
            for (r, acc_r) in acc.iter().enumerate() {
                _mm512_storeu_ps(out.as_mut_ptr().add((i0 + r) * p + j0), *acc_r);
            }
        } else {
            // Right-edge panel: spill the tile and copy the valid prefix.
            let mut tmp = [0.0f32; NR];
            for (r, acc_r) in acc.iter().enumerate() {
                _mm512_storeu_ps(tmp.as_mut_ptr(), *acc_r);
                out[(i0 + r) * p + j0..(i0 + r) * p + j0 + w].copy_from_slice(&tmp[..w]);
            }
        }
    }
}

/// RxNR register tile: `R` output rows against one packed panel. The
/// accumulators live in `[[f32; NR]; R]`, which LLVM keeps in vector
/// registers; the k-loop does R broadcast-FMA sweeps over the panel row
/// (on AVX-512 the broadcasts fold into the FMA's memory operand).
#[inline]
fn microkernel<const R: usize>(
    out: &mut [f32],
    a: &[f32],
    panel: &[f32],
    i0: usize,
    jp: usize,
    m: usize,
    p: usize,
) {
    let mut acc = [[0.0f32; NR]; R];
    for k in 0..m {
        let brow: &[f32; NR] = panel[k * NR..(k + 1) * NR].try_into().unwrap();
        for r in 0..R {
            let v = a[(i0 + r) * m + k];
            for c in 0..NR {
                acc[r][c] += v * brow[c];
            }
        }
    }
    let j0 = jp * NR;
    let w = NR.min(p - j0);
    for (r, acc_row) in acc.iter().enumerate() {
        let dst = &mut out[(i0 + r) * p + j0..(i0 + r) * p + j0 + w];
        dst.copy_from_slice(&acc_row[..w]);
    }
}

/// Single-row edge kernel for the `rows % MR` tail.
#[inline]
fn microkernel_1(
    out: &mut [f32],
    a: &[f32],
    panel: &[f32],
    i: usize,
    jp: usize,
    m: usize,
    p: usize,
) {
    let mut acc = [0.0f32; NR];
    let a_row = &a[i * m..(i + 1) * m];
    for (k, &v) in a_row.iter().enumerate() {
        let brow: &[f32; NR] = panel[k * NR..(k + 1) * NR].try_into().unwrap();
        for c in 0..NR {
            acc[c] += v * brow[c];
        }
    }
    let j0 = jp * NR;
    let w = NR.min(p - j0);
    out[i * p + j0..i * p + j0 + w].copy_from_slice(&acc[..w]);
}

/// Plain i-k-j loop for tiny products (axpy inner loop, no zero branch).
fn matmul_ikj(out: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (n, m) = a.shape();
    let p = b.cols();
    let out_data = out.as_mut_slice();
    out_data.fill(0.0);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..n {
        let a_row = &a_data[i * m..(i + 1) * m];
        let o_row = &mut out_data[i * p..(i + 1) * p];
        for (k, &a_ik) in a_row.iter().enumerate() {
            let b_row = &b_data[k * p..(k + 1) * p];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += a_ik * bv;
            }
        }
    }
}

/// Skip-zero i-k-j loop for A operands the density probe found mostly
/// zero (one-hot selections, masked gates).
fn matmul_sparse_a(out: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (n, m) = a.shape();
    let p = b.cols();
    let out_data = out.as_mut_slice();
    out_data.fill(0.0);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..n {
        let a_row = &a_data[i * m..(i + 1) * m];
        let o_row = &mut out_data[i * p..(i + 1) * p];
        for (k, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b_data[k * p..(k + 1) * p];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += a_ik * bv;
            }
        }
    }
}

/// Above this many multiply-adds the transposed-layout kernels
/// materialize the transpose once and dispatch to the blocked/packed
/// kernel instead: the O(n·m·p) packed micro-kernel gain dwarfs the
/// O(m·p) transpose copy, while small gradients keep the copy-free path.
const NT_TN_BLOCKED_LIMIT: usize = 64 * 1024;

/// `out = a · bᵀ`, shapes `(n,m) x (p,m) -> (n,p)`.
///
/// Small products read both operands along contiguous rows (dot
/// products) with no transpose materialization; large ones transpose
/// once and use the blocked kernel. This is the gradient kernel for
/// `dL/dA = G · Bᵀ`.
pub fn matmul_nt_into(out: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (n, m) = a.shape();
    let (p, mb) = b.shape();
    assert_eq!(
        m, mb,
        "matmul_nt: inner dimensions differ ({n}x{m} * ({p}x{mb})ᵀ)"
    );
    assert_eq!(out.shape(), (n, p), "matmul_nt: output shape mismatch");
    if n * m * p > NT_TN_BLOCKED_LIMIT {
        return matmul_into(out, a, &b.transpose());
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    for i in 0..n {
        let a_row = &a_data[i * m..(i + 1) * m];
        let o_row = &mut out_data[i * p..(i + 1) * p];
        let mut j = 0;
        // 4-wide dot-product unroll: four B rows share one pass over a_row.
        while j + 4 <= p {
            let b0 = &b_data[j * m..(j + 1) * m];
            let b1 = &b_data[(j + 1) * m..(j + 2) * m];
            let b2 = &b_data[(j + 2) * m..(j + 3) * m];
            let b3 = &b_data[(j + 3) * m..(j + 4) * m];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (k, &av) in a_row.iter().enumerate() {
                s0 += av * b0[k];
                s1 += av * b1[k];
                s2 += av * b2[k];
                s3 += av * b3[k];
            }
            o_row[j] = s0;
            o_row[j + 1] = s1;
            o_row[j + 2] = s2;
            o_row[j + 3] = s3;
            j += 4;
        }
        while j < p {
            let b_row = &b_data[j * m..(j + 1) * m];
            o_row[j] = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
            j += 1;
        }
    }
}

/// `out = aᵀ · b`, shapes `(m,n) x (m,p) -> (n,p)`.
///
/// Small products are register-tiled directly on the transposed
/// indexing (within row `k`, `a[k][i..i+MR]` and `b[k][j..j+NR]` are
/// both contiguous, so the tile needs no packing); large ones transpose
/// once and use the blocked kernel. This is the gradient kernel for
/// `dL/dB = Aᵀ · G`.
pub fn matmul_tn_into(out: &mut Matrix, a: &Matrix, b: &Matrix) {
    let (m, n) = a.shape();
    let (mb, p) = b.shape();
    assert_eq!(
        m, mb,
        "matmul_tn: inner dimensions differ (({m}x{n})ᵀ * {mb}x{p})"
    );
    assert_eq!(out.shape(), (n, p), "matmul_tn: output shape mismatch");
    if n * m * p > NT_TN_BLOCKED_LIMIT {
        return matmul_into(out, &a.transpose(), b);
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    let mut i = 0;
    while i + MR <= n {
        let mut jp = 0;
        while jp < p {
            let w = NR.min(p - jp);
            let mut acc = [[0.0f32; NR]; MR];
            for k in 0..m {
                let a_part: &[f32] = &a_data[k * n + i..k * n + i + MR];
                let b_part: &[f32] = &b_data[k * p + jp..k * p + jp + w];
                for (r, &av) in a_part.iter().enumerate() {
                    for (c, &bv) in b_part.iter().enumerate() {
                        acc[r][c] += av * bv;
                    }
                }
            }
            for (r, acc_row) in acc.iter().enumerate() {
                out_data[(i + r) * p + jp..(i + r) * p + jp + w].copy_from_slice(&acc_row[..w]);
            }
            jp += NR;
        }
        i += MR;
    }
    while i < n {
        let mut jp = 0;
        while jp < p {
            let w = NR.min(p - jp);
            let mut acc = [0.0f32; NR];
            for k in 0..m {
                let av = a_data[k * n + i];
                let b_part = &b_data[k * p + jp..k * p + jp + w];
                for (c, &bv) in b_part.iter().enumerate() {
                    acc[c] += av * bv;
                }
            }
            out_data[i * p + jp..i * p + jp + w].copy_from_slice(&acc[..w]);
            jp += NR;
        }
        i += 1;
    }
}

/// Integer dot product of two `i8` vectors with `i32` accumulation — the
/// inner kernel of the quantized candidate scan. Products are widened to
/// `i32` before summing, so no intermediate can overflow for any input
/// shorter than `2^16` elements (`127 * 127 * 65536 < i32::MAX`); the
/// embedding dimensions this workspace uses are orders of magnitude below
/// that.
///
/// The loop runs four independent accumulators so LLVM vectorizes it to
/// the widest integer SIMD the target supports (`pmaddwd`-style widening
/// on x86-64); exact integer arithmetic means the result is identical for
/// any split, so there is no serial/parallel bit-parity concern here.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    let mut acc = [0i32; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for i in 0..4 {
            acc[i] += ca[i] as i32 * cb[i] as i32;
        }
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        total += x as i32 * y as i32;
    }
    total
}

/// Sum of an `i8` vector widened to `i32` — the per-vector correction term
/// of the affine quantized dot decomposition (computed once per quantized
/// vector, never in the scan loop).
pub fn sum_i8(a: &[i8]) -> i32 {
    a.iter().map(|&x| x as i32).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize, seed: u32) -> Matrix {
        // Deterministic pseudo-random fill, varied by seed.
        let data = (0..rows * cols)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 1000) as f32
                    / 250.0
                    - 2.0
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32, ctx: &str) {
        assert_eq!(a.shape(), b.shape(), "{ctx}: shape");
        for (i, (&x, &y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!((x - y).abs() <= tol, "{ctx}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn blocked_matches_naive_across_shapes() {
        for &(n, m, p) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 4, 16),
            (5, 17, 33),
            (16, 16, 16),
            (33, 65, 9),
            (64, 32, 48),
            (70, 70, 70),
        ] {
            let a = matrix(n, m, 1);
            let b = matrix(m, p, 2);
            let naive = matmul_naive(&a, &b);
            let mut fast = Matrix::zeros(n, p);
            matmul_into(&mut fast, &a, &b);
            assert_close(&fast, &naive, 1e-3, &format!("{n}x{m}x{p}"));
        }
    }

    #[test]
    fn sparse_path_matches_naive() {
        // A is ~95% zeros -> density probe must still produce exact results.
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            a.set(i, (i * 7) % n, 1.5);
            if i % 2 == 0 {
                a.set(i, (i * 3) % n, -0.5);
            }
        }
        let b = matrix(n, n, 3);
        let naive = matmul_naive(&a, &b);
        let mut fast = Matrix::zeros(n, n);
        matmul_into(&mut fast, &a, &b);
        assert_close(&fast, &naive, 1e-4, "sparse");
    }

    #[test]
    fn nt_matches_naive_on_transpose() {
        // (48, 64, 40) and (80, 80, 80) cross NT_TN_BLOCKED_LIMIT, covering
        // the transpose-then-blocked dispatch.
        for &(n, m, p) in &[
            (3, 4, 5),
            (8, 16, 8),
            (13, 7, 21),
            (1, 9, 1),
            (48, 64, 40),
            (80, 80, 80),
        ] {
            let a = matrix(n, m, 4);
            let bt = matrix(p, m, 5); // b = btᵀ
            let mut out = Matrix::zeros(n, p);
            matmul_nt_into(&mut out, &a, &bt);
            let reference = matmul_naive(&a, &bt.transpose());
            assert_close(&out, &reference, 1e-3, &format!("nt {n}x{m}x{p}"));
        }
    }

    #[test]
    fn tn_matches_naive_on_transpose() {
        for &(n, m, p) in &[
            (3, 4, 5),
            (8, 16, 8),
            (13, 7, 21),
            (21, 1, 17),
            (48, 64, 40),
            (80, 80, 80),
        ] {
            let at = matrix(m, n, 6); // a = atᵀ
            let b = matrix(m, p, 7);
            let mut out = Matrix::zeros(n, p);
            matmul_tn_into(&mut out, &at, &b);
            let reference = matmul_naive(&at.transpose(), &b);
            assert_close(&out, &reference, 1e-3, &format!("tn {n}x{m}x{p}"));
        }
    }

    #[test]
    fn into_overwrites_stale_contents() {
        let a = matrix(6, 6, 8);
        let b = matrix(6, 6, 9);
        let mut out = Matrix::full(6, 6, f32::NAN);
        matmul_into(&mut out, &a, &b);
        assert!(!out.has_non_finite(), "stale NaNs must be overwritten");
        assert_close(&out, &matmul_naive(&a, &b), 1e-3, "overwrite");
    }

    #[test]
    fn zero_fraction_probe() {
        assert_eq!(zero_fraction(&[]), 0.0);
        assert_eq!(zero_fraction(&[0.0; 64]), 1.0);
        assert_eq!(zero_fraction(&[1.0; 64]), 0.0);
        let half: Vec<f32> = (0..64).map(|i| (i % 2) as f32).collect();
        let f = zero_fraction(&half);
        assert!((f - 0.5).abs() < 0.2, "{f}");
    }

    #[test]
    fn zero_fraction_not_fooled_by_zero_column() {
        // 256-wide dense matrix whose column 0 is entirely zero: a fixed
        // stride of len/256 == row length would probe only that column and
        // report 1.0, sending dense work down the scalar sparse path.
        let mut data = vec![1.0f32; 256 * 256];
        for r in 0..256 {
            data[r * 256] = 0.0;
        }
        let f = zero_fraction(&data);
        assert!(f < 0.1, "dense matrix with one zero column probed as {f}");
    }

    #[test]
    fn dot_i8_matches_scalar_reference() {
        for len in [0usize, 1, 3, 4, 7, 16, 63, 256] {
            let a: Vec<i8> = (0..len)
                .map(|i| ((i as i64 * 37 + 11) % 255 - 127) as i8)
                .collect();
            let b: Vec<i8> = (0..len)
                .map(|i| ((i as i64 * 91 + 5) % 255 - 127) as i8)
                .collect();
            let expect: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            assert_eq!(dot_i8(&a, &b), expect, "len {len}");
            let sum_expect: i32 = a.iter().map(|&x| x as i32).sum();
            assert_eq!(sum_i8(&a), sum_expect, "sum len {len}");
        }
    }

    #[test]
    fn dot_i8_extremes_do_not_overflow() {
        // Worst case magnitude at the longest vector the scan will see.
        let a = vec![-128i8; 4096];
        let b = vec![-128i8; 4096];
        assert_eq!(dot_i8(&a, &b), 128 * 128 * 4096);
        let c = vec![127i8; 4096];
        assert_eq!(dot_i8(&a, &c), -128 * 127 * 4096);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let mut out = Matrix::zeros(2, 2);
        matmul_into(&mut out, &a, &b);
    }

    #[test]
    fn split_plan_derives_bands_from_per_band_work() {
        let flops = |n: usize, m: usize, p: usize| n * m * p;
        // Row-rich large product: splits by rows up to the thread count.
        assert_eq!(
            split_plan(flops(256, 256, 256), 256, 256, 8),
            SplitPlan::Rows(8)
        );
        // Regression (the old gate `flops >= 2M && n >= 2*MR` kept these
        // serial): small-n, large k·m score GEMMs must split by columns.
        assert_eq!(
            split_plan(flops(6, 512, 1024), 6, 1024, 8),
            SplitPlan::Cols(8)
        );
        assert_eq!(
            split_plan(flops(2, 768, 768), 2, 768, 4),
            SplitPlan::Cols(4)
        );
        // Not enough total work for even two bands: stays serial no matter
        // how many workers are idle.
        assert_eq!(split_plan(flops(16, 64, 64), 16, 64, 16), SplitPlan::Serial);
        // One thread: always serial.
        assert_eq!(
            split_plan(flops(256, 256, 256), 256, 256, 1),
            SplitPlan::Serial
        );
        // Bands are capped so each carries >= PAR_BAND_FLOP_LIMIT work.
        let f = flops(256, 64, 64); // 1M flops -> at most 4 bands of 256k
        assert_eq!(split_plan(f, 256, 64, 16), SplitPlan::Rows(4));
    }

    /// The tentpole invariant: the parallel splits (row bands aligned to
    /// the widest micro-kernel tile, column bands on panel boundaries)
    /// produce bit-identical outputs at every thread count, including
    /// shapes whose row counts straddle tile boundaries.
    #[test]
    fn parallel_matmul_is_bit_identical_across_thread_counts() {
        let _guard = pool::test_sync::lock();
        let shapes = [
            (256, 256, 256), // row split, tile-aligned
            (28, 300, 512),  // row split, 12/4/1 tile mix under AVX-512
            (100, 100, 256), // row split, ragged last band
            (6, 512, 1024),  // column split (small n)
            (3, 700, 600),   // column split, ragged last panel
            (17, 333, 129),  // odd everything
        ];
        for &(n, m, p) in &shapes {
            let a = matrix(n, m, 21);
            let b = matrix(m, p, 22);
            pool::force_threads(1);
            let mut serial = Matrix::zeros(n, p);
            matmul_into(&mut serial, &a, &b);
            for t in [2usize, 3, 4, 8, 16] {
                pool::force_threads(t);
                let mut par = Matrix::zeros(n, p);
                matmul_into(&mut par, &a, &b);
                for (i, (x, y)) in par.as_slice().iter().zip(serial.as_slice()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{n}x{m}x{p} threads={t}: element {i}: {x} vs {y}"
                    );
                }
            }
        }
        pool::force_threads(pool::detect_threads());
    }

    /// The transposed-layout kernels dispatch mid-size products through the
    /// blocked path — those must inherit the same thread-count invariance
    /// (they are the score-GEMM entry points).
    #[test]
    fn nt_tn_bit_identical_across_thread_counts() {
        let _guard = pool::test_sync::lock();
        let a = matrix(6, 512, 31);
        let bt = matrix(900, 512, 32); // nt: (6,512) x (900,512)^T
        let at = matrix(512, 9, 33); // tn: (512,9)^T x (512,700)
        let b = matrix(512, 700, 34);
        pool::force_threads(1);
        let mut nt_serial = Matrix::zeros(6, 900);
        matmul_nt_into(&mut nt_serial, &a, &bt);
        let mut tn_serial = Matrix::zeros(9, 700);
        matmul_tn_into(&mut tn_serial, &at, &b);
        for t in [2usize, 4, 16] {
            pool::force_threads(t);
            let mut nt = Matrix::zeros(6, 900);
            matmul_nt_into(&mut nt, &a, &bt);
            let mut tn = Matrix::zeros(9, 700);
            matmul_tn_into(&mut tn, &at, &b);
            assert!(
                nt.as_slice()
                    .iter()
                    .zip(nt_serial.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "nt differs at {t} threads"
            );
            assert!(
                tn.as_slice()
                    .iter()
                    .zip(tn_serial.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "tn differs at {t} threads"
            );
        }
        pool::force_threads(pool::detect_threads());
    }
}
