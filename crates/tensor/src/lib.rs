//! # lcdd-tensor
//!
//! Dense 2-D tensor math, reverse-mode autograd, parameter storage and
//! optimizers — the neural-network substrate for the FCM reproduction
//! (*Dataset Discovery via Line Charts*, ICDE 2025).
//!
//! The paper trains its encoders with PyTorch on a GPU; the Rust ML stack
//! (candle/burn) is not yet dependable for training custom encoders, so this
//! crate provides a from-scratch, CPU-only equivalent with the exact
//! operation set the paper's architecture needs:
//!
//! * [`Matrix`] — plain row-major `f32` storage,
//! * [`kernels`] — blocked/packed matmul micro-kernels (`A·B`, `A·Bᵀ`,
//!   `Aᵀ·B`) with `_into` variants writing caller-provided scratch,
//! * [`pool`] — the scoped-thread work pool behind every parallel hot path,
//! * [`Tape`]/[`Var`] — define-by-run reverse-mode autograd,
//! * fused `softmax_rows` / `layer_norm` kernels,
//! * [`ParamStore`] — persistent parameters re-bound to each fresh tape,
//! * [`optim`] — SGD and Adam,
//! * [`grad_check()`] — finite-difference verification used by the test suite.
//!
//! ## Example
//!
//! ```
//! use lcdd_tensor::{Matrix, Tape};
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Matrix::from_vec(1, 2, vec![1.0, -2.0]));
//! let y = x.square().sum_all(); // y = 1 + 4 = 5
//! assert_eq!(y.scalar(), 5.0);
//! tape.backward(&y);
//! assert_eq!(x.grad().unwrap().as_slice(), &[2.0, -4.0]); // dy/dx = 2x
//! ```

pub mod grad_check;
pub mod init;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod optim;
pub mod param;
pub mod pool;
pub mod tape;

pub use grad_check::{grad_check, GradCheckReport};
pub use kernels::matmul_naive;
pub use matrix::Matrix;
pub use ops::scaled_dot_attention;
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{ParamId, ParamStore};
pub use tape::{Tape, Var};
