//! Dense, row-major `f32` matrix — the storage type underneath every tensor
//! operation in the workspace.
//!
//! A [`Matrix`] is deliberately plain: shape plus a `Vec<f32>`. All neural
//! layers, the autograd tape, DTW, LSH signatures and chart rasters build on
//! it, so it favours predictable layout and zero hidden allocation over
//! cleverness.

use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a 1xN row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an Nx1 column vector from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow one row mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Extract a column as a freshly allocated vector.
    pub fn column(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix product `self * other`, shapes `(n,m) x (m,p) -> (n,p)`.
    ///
    /// Dispatches to the blocked/packed kernel layer in
    /// [`crate::kernels`]: register-tiled micro-kernel for dense operands,
    /// a skip-zero path when a density probe finds the left operand mostly
    /// zero, and row-band parallelism over the [`crate::pool`] workers for
    /// large products.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::kernels::matmul_into(&mut out, self, other);
        out
    }

    /// Matrix product written into caller-provided storage (overwritten),
    /// avoiding the per-op allocation of [`Matrix::matmul`]. `out` must be
    /// `(self.rows, other.cols)`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::matmul_into(out, self, other);
    }

    /// `self * otherᵀ` without materializing the transpose, shapes
    /// `(n,m) x (p,m) -> (n,p)`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::kernels::matmul_nt_into(&mut out, self, other);
        out
    }

    /// `selfᵀ * other` without materializing the transpose, shapes
    /// `(m,n) x (m,p) -> (n,p)`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::kernels::matmul_tn_into(&mut out, self, other);
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination of two equal-shape matrices.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise (axpy).
    pub fn add_scaled_assign(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign: shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiply every element by a scalar, in place.
    pub fn scale_assign(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for an empty matrix).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Concatenates matrices vertically (all must share column count).
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "concat_rows: column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Concatenates matrices horizontally (all must share row count).
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "concat_cols: row mismatch");
                out.data[r * cols + offset..r * cols + offset + p.cols].copy_from_slice(p.row(r));
                offset += p.cols;
            }
        }
        out
    }

    /// Copies rows `[r0, r1)` into a new matrix.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "slice_rows: range out of bounds"
        );
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Reshapes in place (element count must match).
    pub fn reshape(mut self, rows: usize, cols: usize) -> Matrix {
        assert_eq!(
            rows * cols,
            self.data.len(),
            "reshape: element count mismatch"
        );
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Returns true if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.len(), 6);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let v = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);

        let c = Matrix::from_vec(1, 1, vec![9.0]);
        let h = Matrix::concat_cols(&[&a, &c]);
        assert_eq!(h.shape(), (1, 3));
        assert_eq!(h.row(0), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn slice_rows_copies() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.5, 3.5]);
        a.scale_assign(2.0);
        assert_eq!(a.as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(1, 2);
        assert!(!a.has_non_finite());
        a.set(0, 1, f32::NAN);
        assert!(a.has_non_finite());
    }
}
