//! Differentiable operations on [`Var`].
//!
//! Each method appends a node to the tape with a backward closure. Fused
//! kernels are provided where composition would be numerically fragile or
//! wasteful: `softmax_rows`, `layer_norm`.

use crate::matrix::Matrix;
use crate::tape::Var;

impl Var {
    fn assert_same_tape(&self, other: &Var, op: &str) {
        assert!(
            self.same_tape(other),
            "{op}: operands live on different tapes"
        );
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Var) -> Var {
        self.assert_same_tape(other, "add");
        let out = self.with_value(|a| other.with_value(|b| a.zip(b, |x, y| x + y)));
        let (ai, bi) = (self.idx, other.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.clone());
                sink(bi, g.clone());
            })),
        )
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Var) -> Var {
        self.assert_same_tape(other, "sub");
        let out = self.with_value(|a| other.with_value(|b| a.zip(b, |x, y| x - y)));
        let (ai, bi) = (self.idx, other.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.clone());
                sink(bi, g.map(|x| -x));
            })),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Var) -> Var {
        self.assert_same_tape(other, "mul");
        let a = self.value();
        let b = other.value();
        let out = a.zip(&b, |x, y| x * y);
        let (ai, bi) = (self.idx, other.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&b, |gg, y| gg * y));
                sink(bi, g.zip(&a, |gg, x| gg * x));
            })),
        )
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&self, alpha: f32) -> Var {
        let out = self.with_value(|a| a.map(|x| x * alpha));
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| sink(ai, g.map(|x| x * alpha)))),
        )
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&self, alpha: f32) -> Var {
        let out = self.with_value(|a| a.map(|x| x + alpha));
        let ai = self.idx;
        self.tape
            .push(out, Some(Box::new(move |g, sink| sink(ai, g.clone()))))
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Multiplies elementwise by a `1x1` scalar variable (gradient flows to both).
    pub fn scale_by(&self, s: &Var) -> Var {
        self.assert_same_tape(s, "scale_by");
        let a = self.value();
        let sv = s.value();
        assert_eq!(sv.shape(), (1, 1), "scale_by: scaler must be 1x1");
        let alpha = sv.get(0, 0);
        let out = a.map(|x| x * alpha);
        let (ai, si) = (self.idx, s.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.map(|x| x * alpha));
                let ds: f32 = g
                    .as_slice()
                    .iter()
                    .zip(a.as_slice().iter())
                    .map(|(&gg, &x)| gg * x)
                    .sum();
                sink(si, Matrix::from_vec(1, 1, vec![ds]));
            })),
        )
    }

    /// Adds a `1xK` row vector to every row of an `NxK` matrix.
    pub fn add_row_broadcast(&self, bias: &Var) -> Var {
        self.assert_same_tape(bias, "add_row_broadcast");
        let a = self.value();
        let b = bias.value();
        assert_eq!(b.rows(), 1, "add_row_broadcast: bias must be 1xK");
        assert_eq!(a.cols(), b.cols(), "add_row_broadcast: width mismatch");
        let mut out = a.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (o, &bb) in row.iter_mut().zip(b.as_slice()) {
                *o += bb;
            }
        }
        let (ai, bi) = (self.idx, bias.idx);
        let cols = a.cols();
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.clone());
                let mut db = Matrix::zeros(1, cols);
                for r in 0..g.rows() {
                    for (d, &gg) in db.as_mut_slice().iter_mut().zip(g.row(r)) {
                        *d += gg;
                    }
                }
                sink(bi, db);
            })),
        )
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        self.assert_same_tape(other, "matmul");
        let a = self.value();
        let b = other.value();
        let out = a.matmul(&b);
        let (ai, bi) = (self.idx, other.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                // dA = G·Bᵀ, dB = Aᵀ·G — layout-aware kernels, no
                // transpose materialization.
                sink(ai, g.matmul_nt(&b));
                sink(bi, a.matmul_tn(g));
            })),
        )
    }

    /// Matrix product against a transposed right operand:
    /// `self (n,m) · otherᵀ (m,p) -> (n,p)` with `other: (p,m)`.
    ///
    /// Equivalent to `self.matmul(&other.transpose_var())` but skips the
    /// transpose node and its materialized value — this is the hot scoring
    /// shape (`Q·Kᵀ`) in every attention block and the HCMAN matcher.
    pub fn matmul_nt(&self, other: &Var) -> Var {
        self.assert_same_tape(other, "matmul_nt");
        let a = self.value();
        let b = other.value();
        let out = a.matmul_nt(&b);
        let (ai, bi) = (self.idx, other.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                // out = A·Bᵀ  ⇒  dA = G·B, dB = Gᵀ·A.
                sink(ai, g.matmul(&b));
                sink(bi, g.matmul_tn(&a));
            })),
        )
    }

    /// Fused affine transform `self·w (+ bias)` as a single tape node.
    ///
    /// `self: (n,k)`, `w: (k,d)`, `bias: (1,d)`. Compared with
    /// `matmul` + `add_row_broadcast` this records one node instead of two
    /// and writes the bias in place instead of cloning the product — the
    /// per-op allocation that dominated `Linear::forward`.
    pub fn affine(&self, w: &Var, bias: Option<&Var>) -> Var {
        self.assert_same_tape(w, "affine");
        let x = self.value();
        let wv = w.value();
        let mut out = Matrix::zeros(x.rows(), wv.cols());
        x.matmul_into(&wv, &mut out);
        let bias_idx = bias.map(|b| {
            self.assert_same_tape(b, "affine");
            let bv = b.value();
            assert_eq!(bv.shape(), (1, wv.cols()), "affine: bias must be 1xD");
            for r in 0..out.rows() {
                for (o, &bb) in out.row_mut(r).iter_mut().zip(bv.as_slice()) {
                    *o += bb;
                }
            }
            b.idx
        });
        let (xi, wi) = (self.idx, w.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(xi, g.matmul_nt(&wv));
                sink(wi, x.matmul_tn(g));
                if let Some(bidx) = bias_idx {
                    let mut db = Matrix::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (d, &gg) in db.as_mut_slice().iter_mut().zip(g.row(r)) {
                            *d += gg;
                        }
                    }
                    sink(bidx, db);
                }
            })),
        )
    }

    /// Transpose.
    pub fn transpose_var(&self) -> Var {
        let out = self.with_value(|a| a.transpose());
        let ai = self.idx;
        self.tape
            .push(out, Some(Box::new(move |g, sink| sink(ai, g.transpose()))))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let a = self.value();
        let out = a.map(|x| x.max(0.0));
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&a, |gg, x| if x > 0.0 { gg } else { 0.0 }));
            })),
        )
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Var {
        let a = self.value();
        let out = a.map(|x| if x > 0.0 { x } else { alpha * x });
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&a, |gg, x| if x > 0.0 { gg } else { alpha * gg }));
            })),
        )
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.with_value(|a| a.map(|x| 1.0 / (1.0 + (-x).exp())));
        let y = out.clone();
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&y, |gg, s| gg * s * (1.0 - s)));
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh_var(&self) -> Var {
        let out = self.with_value(|a| a.map(f32::tanh));
        let y = out.clone();
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&y, |gg, t| gg * (1.0 - t * t)));
            })),
        )
    }

    /// Elementwise exponential.
    pub fn exp_var(&self) -> Var {
        let out = self.with_value(|a| a.map(f32::exp));
        let y = out.clone();
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&y, |gg, e| gg * e));
            })),
        )
    }

    /// Natural logarithm with inputs clamped to `>= eps` for stability.
    pub fn ln_clamped(&self, eps: f32) -> Var {
        let a = self.value();
        let out = a.map(|x| x.max(eps).ln());
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(
                    ai,
                    g.zip(&a, |gg, x| if x > eps { gg / x } else { gg / eps }),
                );
            })),
        )
    }

    /// Numerically stable softplus `ln(1 + e^x) = max(x, 0) + ln(1 + e^-|x|)`
    /// with derivative `sigmoid(x)`. The building block of
    /// BCE-with-logits losses that never produce exactly-zero gradients.
    pub fn softplus(&self) -> Var {
        let a = self.value();
        let out = a.map(|x| x.max(0.0) + (-x.abs()).exp().ln_1p());
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&a, |gg, x| gg / (1.0 + (-x).exp())));
            })),
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let a = self.value();
        let out = a.map(|x| x * x);
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, g.zip(&a, |gg, x| 2.0 * gg * x));
            })),
        )
    }

    /// Sum of all elements, producing a `1x1` scalar.
    pub fn sum_all(&self) -> Var {
        let a = self.value();
        let (rows, cols) = a.shape();
        let out = Matrix::from_vec(1, 1, vec![a.sum()]);
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                sink(ai, Matrix::full(rows, cols, g.get(0, 0)));
            })),
        )
    }

    /// Mean of all elements, producing a `1x1` scalar.
    pub fn mean_all(&self) -> Var {
        let n = self.with_value(|a| a.len()) as f32;
        self.sum_all().scale(1.0 / n)
    }

    /// Column-wise mean over rows: `NxK -> 1xK`.
    pub fn mean_rows(&self) -> Var {
        let a = self.value();
        let (rows, cols) = a.shape();
        assert!(rows > 0, "mean_rows: empty matrix");
        let mut out = Matrix::zeros(1, cols);
        for r in 0..rows {
            for (o, &x) in out.as_mut_slice().iter_mut().zip(a.row(r)) {
                *o += x;
            }
        }
        out.scale_assign(1.0 / rows as f32);
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                let mut dg = Matrix::zeros(rows, cols);
                let scale = 1.0 / rows as f32;
                for r in 0..rows {
                    for (d, &gg) in dg.row_mut(r).iter_mut().zip(g.row(0)) {
                        *d = gg * scale;
                    }
                }
                sink(ai, dg);
            })),
        )
    }

    /// Row-wise softmax (fused forward/backward, numerically stabilised).
    pub fn softmax_rows(&self) -> Var {
        let a = self.value();
        let (rows, cols) = a.shape();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let row = a.row(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut denom = 0.0;
            for (o, &x) in out.row_mut(r).iter_mut().zip(row) {
                *o = (x - max).exp();
                denom += *o;
            }
            for o in out.row_mut(r) {
                *o /= denom;
            }
        }
        let y = out.clone();
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                let mut dx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let dot: f32 = yr.iter().zip(gr).map(|(&yy, &gg)| yy * gg).sum();
                    for ((d, &yy), &gg) in dx.row_mut(r).iter_mut().zip(yr).zip(gr) {
                        *d = yy * (gg - dot);
                    }
                }
                sink(ai, dx);
            })),
        )
    }

    /// Fused layer normalisation over each row, with learnable `gamma`/`beta`
    /// (both `1xK`).
    pub fn layer_norm(&self, gamma: &Var, beta: &Var, eps: f32) -> Var {
        self.assert_same_tape(gamma, "layer_norm");
        self.assert_same_tape(beta, "layer_norm");
        let x = self.value();
        let gm = gamma.value();
        let bt = beta.value();
        let (rows, cols) = x.shape();
        assert_eq!(gm.shape(), (1, cols), "layer_norm: gamma must be 1xK");
        assert_eq!(bt.shape(), (1, cols), "layer_norm: beta must be 1xK");

        let mut xhat = Matrix::zeros(rows, cols);
        let mut inv_std = vec![0.0f32; rows];
        let mut out = Matrix::zeros(rows, cols);
        for (r, istd_slot) in inv_std.iter_mut().enumerate() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let istd = 1.0 / (var + eps).sqrt();
            *istd_slot = istd;
            for (c, &xv) in row.iter().enumerate() {
                let xh = (xv - mean) * istd;
                xhat.set(r, c, xh);
                out.set(r, c, gm.get(0, c) * xh + bt.get(0, c));
            }
        }
        let (xi, gi, bi) = (self.idx, gamma.idx, beta.idx);
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                let mut dx = Matrix::zeros(rows, cols);
                let mut dgamma = Matrix::zeros(1, cols);
                let mut dbeta = Matrix::zeros(1, cols);
                let n = cols as f32;
                for (r, &istd) in inv_std.iter().enumerate() {
                    let gr = g.row(r);
                    let xhr = xhat.row(r);
                    // dxhat_c = g_c * gamma_c
                    let dxhat: Vec<f32> = gr
                        .iter()
                        .enumerate()
                        .map(|(c, &gg)| gg * gm.get(0, c))
                        .collect();
                    let sum_dxhat: f32 = dxhat.iter().sum();
                    let sum_dxhat_xhat: f32 = dxhat.iter().zip(xhr).map(|(&d, &xh)| d * xh).sum();
                    for c in 0..cols {
                        let term = n * dxhat[c] - sum_dxhat - xhr[c] * sum_dxhat_xhat;
                        dx.set(r, c, istd / n * term);
                        dgamma.as_mut_slice()[c] += gr[c] * xhr[c];
                        dbeta.as_mut_slice()[c] += gr[c];
                    }
                }
                sink(xi, dx);
                sink(gi, dgamma);
                sink(bi, dbeta);
            })),
        )
    }

    /// Vertically concatenates variables (all must share column count).
    pub fn concat_rows(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows: empty input");
        let tape = parts[0].tape.clone();
        for p in parts {
            assert!(p.same_tape(&parts[0]), "concat_rows: mixed tapes");
        }
        let values: Vec<Matrix> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let out = Matrix::concat_rows(&refs);
        let spans: Vec<(usize, usize)> = {
            let mut acc = 0;
            values
                .iter()
                .map(|v| {
                    let s = (acc, v.rows());
                    acc += v.rows();
                    s
                })
                .collect()
        };
        let idxs: Vec<usize> = parts.iter().map(|p| p.idx).collect();
        tape.push(
            out,
            Some(Box::new(move |g, sink| {
                for (&(start, len), &pi) in spans.iter().zip(idxs.iter()) {
                    sink(pi, g.slice_rows(start, start + len));
                }
            })),
        )
    }

    /// Horizontally concatenates variables (all must share row count).
    pub fn concat_cols(parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols: empty input");
        let tape = parts[0].tape.clone();
        for p in parts {
            assert!(p.same_tape(&parts[0]), "concat_cols: mixed tapes");
        }
        let values: Vec<Matrix> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Matrix> = values.iter().collect();
        let out = Matrix::concat_cols(&refs);
        let widths: Vec<usize> = values.iter().map(|v| v.cols()).collect();
        let rows = values[0].rows();
        let idxs: Vec<usize> = parts.iter().map(|p| p.idx).collect();
        tape.push(
            out,
            Some(Box::new(move |g, sink| {
                let mut offset = 0;
                for (&w, &pi) in widths.iter().zip(idxs.iter()) {
                    let mut part = Matrix::zeros(rows, w);
                    for r in 0..rows {
                        part.row_mut(r)
                            .copy_from_slice(&g.row(r)[offset..offset + w]);
                    }
                    sink(pi, part);
                    offset += w;
                }
            })),
        )
    }

    /// Copies rows `[r0, r1)` into a new node.
    pub fn slice_rows_var(&self, r0: usize, r1: usize) -> Var {
        let a = self.value();
        let (rows, cols) = a.shape();
        let out = a.slice_rows(r0, r1);
        let ai = self.idx;
        self.tape.push(
            out,
            Some(Box::new(move |g, sink| {
                let mut dg = Matrix::zeros(rows, cols);
                for (i, r) in (r0..r1).enumerate() {
                    dg.row_mut(r).copy_from_slice(g.row(i));
                }
                sink(ai, dg);
            })),
        )
    }
}

/// Scaled dot-product attention: `softmax(Q K^T / sqrt(d)) V`.
///
/// Shapes: `q: (n,d)`, `k: (m,d)`, `v: (m,dv)` — returns `(n,dv)`.
/// Also returns the attention weights node for inspection.
pub fn scaled_dot_attention(q: &Var, k: &Var, v: &Var) -> (Var, Var) {
    let d = q.shape().1 as f32;
    let scores = q.matmul_nt(k).scale(1.0 / d.sqrt());
    let weights = scores.softmax_rows();
    (weights.matmul(v), weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    fn leaf(tape: &Tape, rows: usize, cols: usize, data: Vec<f32>) -> Var {
        tape.leaf(Matrix::from_vec(rows, cols, data))
    }

    #[test]
    fn add_backward() {
        let t = Tape::new();
        let a = leaf(&t, 1, 2, vec![1.0, 2.0]);
        let b = leaf(&t, 1, 2, vec![3.0, 4.0]);
        let loss = a.add(&b).sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_backward() {
        let t = Tape::new();
        let a = leaf(&t, 1, 2, vec![2.0, 3.0]);
        let b = leaf(&t, 1, 2, vec![5.0, 7.0]);
        let loss = a.mul(&b).sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_backward_shapes() {
        let t = Tape::new();
        let a = leaf(&t, 2, 3, vec![1.0; 6]);
        let b = leaf(&t, 3, 4, vec![1.0; 12]);
        let loss = a.matmul(&b).sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().shape(), (2, 3));
        assert_eq!(b.grad().unwrap().shape(), (3, 4));
        // d/dA (sum(AB)) = ones * B^T: each entry = sum of B row = 4
        assert!(a.grad().unwrap().as_slice().iter().all(|&x| x == 4.0));
        assert!(b.grad().unwrap().as_slice().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let t = Tape::new();
        let a = leaf(&t, 2, 3, vec![1.0, -2.0, 3.0, 0.5, 1.5, -0.5]);
        let b = leaf(&t, 4, 3, (0..12).map(|i| i as f32 * 0.25 - 1.0).collect());
        let fused = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose_var());
        assert_eq!(fused.value(), explicit.value());
        let loss = fused.square().sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().shape(), (2, 3));
        assert_eq!(b.grad().unwrap().shape(), (4, 3));
    }

    #[test]
    fn affine_matches_matmul_plus_broadcast() {
        let t = Tape::new();
        let x = leaf(&t, 3, 2, vec![1.0, 2.0, -1.0, 0.5, 0.0, 3.0]);
        let w = leaf(&t, 2, 4, (0..8).map(|i| i as f32 * 0.3 - 1.0).collect());
        let b = leaf(&t, 1, 4, vec![0.1, -0.2, 0.3, -0.4]);
        let fused = x.affine(&w, Some(&b));
        let explicit = x.matmul(&w).add_row_broadcast(&b);
        assert_eq!(fused.value(), explicit.value());
        let loss = fused.square().sum_all();
        t.backward(&loss);
        let gx = x.grad().unwrap();
        let gw = w.grad().unwrap();
        let gb = b.grad().unwrap();
        // Cross-check against the unfused graph on a fresh tape.
        let t2 = Tape::new();
        let x2 = t2.leaf(x.value());
        let w2 = t2.leaf(w.value());
        let b2 = t2.leaf(b.value());
        let loss2 = x2.matmul(&w2).add_row_broadcast(&b2).square().sum_all();
        t2.backward(&loss2);
        assert_eq!(gx, x2.grad().unwrap());
        assert_eq!(gw, w2.grad().unwrap());
        assert_eq!(gb, b2.grad().unwrap());
    }

    #[test]
    fn affine_without_bias() {
        let t = Tape::new();
        let x = leaf(&t, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let w = leaf(&t, 2, 2, vec![0.5, -0.5, 1.0, 1.5]);
        let y = x.affine(&w, None);
        assert_eq!(y.value(), x.value().matmul(&w.value()));
        let loss = y.sum_all();
        t.backward(&loss);
        assert_eq!(w.grad().unwrap().shape(), (2, 2));
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tape::new();
        let a = leaf(&t, 2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        let v = s.value();
        for r in 0..2 {
            let sum: f32 = v.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_grad_rows_sum_to_zero() {
        // Softmax is shift invariant, so the gradient in each row sums to 0.
        let t = Tape::new();
        let a = leaf(&t, 1, 3, vec![0.3, -0.7, 1.2]);
        let w = leaf(&t, 1, 3, vec![1.0, 2.0, -1.0]);
        let loss = a.softmax_rows().mul(&w).sum_all();
        t.backward(&loss);
        let g = a.grad().unwrap();
        let s: f32 = g.as_slice().iter().sum();
        assert!(s.abs() < 1e-6, "row grad sum = {s}");
    }

    #[test]
    fn layer_norm_output_standardised() {
        let t = Tape::new();
        let a = leaf(&t, 1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        let gamma = leaf(&t, 1, 4, vec![1.0; 4]);
        let beta = leaf(&t, 1, 4, vec![0.0; 4]);
        let y = a.layer_norm(&gamma, &beta, 1e-5).value();
        let mean: f32 = y.as_slice().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .as_slice()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn concat_and_slice_roundtrip_grad() {
        let t = Tape::new();
        let a = leaf(&t, 1, 2, vec![1.0, 2.0]);
        let b = leaf(&t, 2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let cat = Var::concat_rows(&[a.clone(), b.clone()]);
        let back = cat.slice_rows_var(1, 3); // the b part
        let loss = back.sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().as_slice(), &[0.0, 0.0]);
        assert_eq!(b.grad().unwrap().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn concat_cols_grad_split() {
        let t = Tape::new();
        let a = leaf(&t, 2, 1, vec![1.0, 2.0]);
        let b = leaf(&t, 2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let cat = Var::concat_cols(&[a.clone(), b.clone()]);
        assert_eq!(cat.shape(), (2, 3));
        let w = leaf(&t, 2, 3, vec![1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0]);
        let loss = cat.mul(&w).sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().as_slice(), &[1.0, 1000.0]);
        assert_eq!(
            b.grad().unwrap().as_slice(),
            &[10.0, 100.0, 10000.0, 100000.0]
        );
    }

    #[test]
    fn sigmoid_at_zero() {
        let t = Tape::new();
        let a = leaf(&t, 1, 1, vec![0.0]);
        let s = a.sigmoid();
        assert!((s.scalar() - 0.5).abs() < 1e-6);
        let loss = s.sum_all();
        t.backward(&loss);
        assert!((a.grad().unwrap().get(0, 0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn attention_shapes() {
        let t = Tape::new();
        let q = leaf(&t, 3, 4, vec![0.1; 12]);
        let k = leaf(&t, 5, 4, vec![0.2; 20]);
        let v = leaf(&t, 5, 6, vec![0.3; 30]);
        let (out, w) = scaled_dot_attention(&q, &k, &v);
        assert_eq!(out.shape(), (3, 6));
        assert_eq!(w.shape(), (3, 5));
        let loss = out.sum_all();
        t.backward(&loss);
        assert_eq!(q.grad().unwrap().shape(), (3, 4));
    }

    #[test]
    fn scale_by_scalar_var() {
        let t = Tape::new();
        let a = leaf(&t, 1, 2, vec![3.0, 4.0]);
        let s = leaf(&t, 1, 1, vec![2.0]);
        let out = a.scale_by(&s);
        assert_eq!(out.value().as_slice(), &[6.0, 8.0]);
        let loss = out.sum_all();
        t.backward(&loss);
        assert_eq!(a.grad().unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(s.grad().unwrap().get(0, 0), 7.0);
    }

    #[test]
    fn mean_rows_grad() {
        let t = Tape::new();
        let a = leaf(&t, 4, 2, vec![1.0; 8]);
        let m = a.mean_rows();
        assert_eq!(m.shape(), (1, 2));
        let loss = m.sum_all();
        t.backward(&loss);
        assert!(a
            .grad()
            .unwrap()
            .as_slice()
            .iter()
            .all(|&x| (x - 0.25).abs() < 1e-7));
    }
}
