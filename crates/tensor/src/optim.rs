//! First-order optimizers: SGD (with optional momentum) and Adam.
//!
//! The paper trains FCM with Adam at a learning rate of 1e-6 for 60 epochs
//! (Sec. VII-B). At reproduction scale we keep Adam with larger rates; both
//! are available behind the [`Optimizer`] trait.

use crate::matrix::Matrix;

/// A stateless-per-parameter optimizer interface. `m` and `v` are per-param
/// scratch buffers owned by the [`crate::param::ParamStore`].
pub trait Optimizer {
    /// Called once before a round of [`Optimizer::update`] calls (advances
    /// the timestep for bias correction).
    fn begin_step(&mut self);
    /// Applies one update to `value` given gradient `grad`.
    fn update(&mut self, value: &mut Matrix, grad: &Matrix, m: &mut Matrix, v: &mut Matrix);
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Replaces the learning rate (supports warmup/decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and gradient clipping.
#[derive(Clone, Debug)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
    /// Per-element clip on gradients (disabled when `<= 0`).
    pub clip: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip: 0.0,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            clip: 0.0,
        }
    }
}

impl Optimizer for Sgd {
    fn begin_step(&mut self) {}

    fn update(&mut self, value: &mut Matrix, grad: &Matrix, m: &mut Matrix, _v: &mut Matrix) {
        let clip = self.clip;
        for i in 0..value.len() {
            let mut g = grad.as_slice()[i];
            if clip > 0.0 {
                g = g.clamp(-clip, clip);
            }
            if self.momentum > 0.0 {
                let mv = self.momentum * m.as_slice()[i] + g;
                m.as_mut_slice()[i] = mv;
                g = mv;
            }
            value.as_mut_slice()[i] -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction and optional gradient
/// clipping.
#[derive(Clone, Debug)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Per-element clip on gradients (disabled when `<= 0`).
    pub clip: f32,
    t: u64,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: 1.0,
            t: 0,
        }
    }

    /// The paper's configuration: Adam, lr = 1e-6 (Sec. VII-B).
    pub fn paper() -> Self {
        Adam::new(1e-6)
    }

    /// Current timestep.
    pub fn timestep(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, value: &mut Matrix, grad: &Matrix, m: &mut Matrix, v: &mut Matrix) {
        debug_assert!(self.t > 0, "Adam::update called before begin_step");
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..value.len() {
            let mut g = grad.as_slice()[i];
            if self.clip > 0.0 {
                g = g.clamp(-self.clip, self.clip);
            }
            let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g;
            let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g * g;
            m.as_mut_slice()[i] = mi;
            v.as_mut_slice()[i] = vi;
            let mhat = mi / b1t;
            let vhat = vi / b2t;
            value.as_mut_slice()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        // minimise f(x) = x^2 starting at x = 2; grad = 2x
        let mut x = Matrix::from_vec(1, 1, vec![2.0]);
        let mut m = Matrix::zeros(1, 1);
        let mut v = Matrix::zeros(1, 1);
        for _ in 0..steps {
            let g = Matrix::from_vec(1, 1, vec![2.0 * x.get(0, 0)]);
            opt.begin_step();
            opt.update(&mut x, &g, &mut m, &mut v);
        }
        x.get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = quadratic_descent(&mut sgd, 100);
        assert!(x.abs() < 1e-4, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut sgd = Sgd::with_momentum(0.05, 0.9);
        let x = quadratic_descent(&mut sgd, 200);
        assert!(x.abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let x = quadratic_descent(&mut adam, 300);
        assert!(x.abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_clip_bounds_step() {
        let mut adam = Adam::new(0.5);
        adam.clip = 0.001;
        let mut x = Matrix::from_vec(1, 1, vec![0.0]);
        let g = Matrix::from_vec(1, 1, vec![1e9]);
        let mut m = Matrix::zeros(1, 1);
        let mut v = Matrix::zeros(1, 1);
        adam.begin_step();
        adam.update(&mut x, &g, &mut m, &mut v);
        // One clipped Adam step is bounded by lr * mhat/sqrt(vhat) ~= lr.
        assert!(x.get(0, 0).abs() <= 0.51, "step too large: {}", x.get(0, 0));
    }

    #[test]
    fn lr_schedule_settable() {
        let mut adam = Adam::new(0.1);
        adam.set_learning_rate(0.01);
        assert_eq!(adam.learning_rate(), 0.01);
    }
}
