//! Persistent model parameters.
//!
//! Tapes are rebuilt every forward pass, but parameters must live across
//! passes. A [`ParamStore`] owns every parameter of a model (value + Adam
//! moment buffers); layers hold lightweight [`ParamId`]s. During a forward
//! pass, [`ParamStore::leaf`] copies the value onto the tape and records the
//! binding so [`ParamStore::apply_grads`] can later route gradients back.

use crate::matrix::Matrix;
use crate::optim::Optimizer;
use crate::tape::{Tape, Var};

/// Identifier of a parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

#[derive(Clone)]
pub(crate) struct ParamEntry {
    pub(crate) name: String,
    pub(crate) value: Matrix,
    /// First Adam moment (also reused as SGD momentum).
    pub(crate) m: Matrix,
    /// Second Adam moment.
    pub(crate) v: Matrix,
}

/// Owns all parameters of a model.
#[derive(Clone, Default)]
pub struct ParamStore {
    pub(crate) entries: Vec<ParamEntry>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a new parameter with the given initial value.
    pub fn add(&mut self, name: impl Into<String>, init: Matrix) -> ParamId {
        let (r, c) = init.shape();
        self.entries.push(ParamEntry {
            name: name.into(),
            value: init,
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.entries.len() - 1)
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Borrow a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Overwrite a parameter's value (used by tests and weight loading).
    pub fn set_value(&mut self, id: ParamId, value: Matrix) {
        assert_eq!(
            self.entries[id.0].value.shape(),
            value.shape(),
            "set_value: shape mismatch for {}",
            self.entries[id.0].name
        );
        self.entries[id.0].value = value;
    }

    /// Parameter name (for serialization and debugging).
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Copies the parameter onto `tape` as a leaf and records the binding so
    /// gradients can be routed back by [`ParamStore::apply_grads`].
    pub fn leaf(&self, tape: &Tape, id: ParamId) -> Var {
        let var = tape.leaf(self.entries[id.0].value.clone());
        tape.record_binding(id.0, var.index());
        var
    }

    /// After `tape.backward(..)`, accumulates the gradient of every bound
    /// parameter (a parameter leafed several times gets its contributions
    /// summed) and performs one optimizer step.
    ///
    /// Returns the global gradient norm before any update, which trainers use
    /// for logging and divergence checks.
    pub fn apply_grads(&mut self, tape: &Tape, opt: &mut dyn Optimizer) -> f32 {
        let inner = tape.inner.borrow();
        let mut acc: Vec<Option<Matrix>> = vec![None; self.entries.len()];
        for &(pid, node_idx) in &inner.bindings {
            if let Some(Some(g)) = inner.grads.get(node_idx) {
                match &mut acc[pid] {
                    Some(a) => a.add_assign(g),
                    slot @ None => *slot = Some(g.clone()),
                }
            }
        }
        drop(inner);
        let mut sq_norm = 0.0f64;
        for g in acc.iter().flatten() {
            sq_norm += g
                .as_slice()
                .iter()
                .map(|&x| (x as f64) * (x as f64))
                .sum::<f64>();
        }
        let norm = (sq_norm as f32).sqrt();
        opt.begin_step();
        for (pid, g) in acc.into_iter().enumerate() {
            if let Some(g) = g {
                let e = &mut self.entries[pid];
                opt.update(&mut e.value, &g, &mut e.m, &mut e.v);
            }
        }
        norm
    }

    /// Iterates over `(name, value)` pairs (serialization support).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.entries.iter().map(|e| (e.name.as_str(), &e.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 4);
        assert_eq!(store.value(id).get(1, 1), 4.0);
        assert_eq!(store.name(id), "w");
    }

    #[test]
    fn leaf_binds_and_applies_grad() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let tape = Tape::new();
        let w = store.leaf(&tape, id);
        let loss = w.mul(&w).sum_all(); // d/dw sum(w^2) = 2w
        tape.backward(&loss);
        let mut sgd = Sgd::new(0.1);
        let norm = store.apply_grads(&tape, &mut sgd);
        assert!(norm > 0.0);
        // w <- w - 0.1 * 2w = 0.8 w
        let v = store.value(id);
        assert!((v.get(0, 0) - 0.8).abs() < 1e-6);
        assert!((v.get(0, 1) - 1.6).abs() < 1e-6);
    }

    #[test]
    fn double_leaf_accumulates() {
        let mut store = ParamStore::new();
        let id = store.add("w", Matrix::from_vec(1, 1, vec![3.0]));
        let tape = Tape::new();
        let w1 = store.leaf(&tape, id);
        let w2 = store.leaf(&tape, id);
        let loss = w1.add(&w2).sum_all(); // grad contribution 1 via each leaf
        tape.backward(&loss);
        let mut sgd = Sgd::new(1.0);
        store.apply_grads(&tape, &mut sgd);
        // total grad = 2 -> w = 3 - 2 = 1
        assert!((store.value(id).get(0, 0) - 1.0).abs() < 1e-6);
    }
}
