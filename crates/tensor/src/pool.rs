//! Scoped-thread work pool shared by every parallel hot path in the
//! workspace: repository encoding, candidate scoring, ground-truth DTW
//! matrices and row-blocked matmuls.
//!
//! The pool is deliberately structured around `std::thread::scope`: workers
//! borrow their inputs directly (no `Arc`, no channels, no 'static bounds)
//! and a panicking worker propagates at the scope boundary. Threads are
//! spawned per call — for the coarse-grained work units here (encoding a
//! table, scoring a candidate, one DTW row) spawn cost is noise, and scoped
//! spawning keeps the API allocation- and lifetime-free.
//!
//! Thread count comes from `LCDD_THREADS` when set (useful for pinning
//! benchmarks or forcing serial execution), otherwise from
//! `available_parallelism`, capped at 16.

use std::cell::Cell;
use std::sync::OnceLock;

/// Hard ceiling on worker threads; beyond this the workloads in this
/// workspace are memory-bound and extra threads only add contention.
const MAX_THREADS: usize = 16;

thread_local! {
    /// Set inside pool workers so nested `par_*` calls run serial instead
    /// of multiplying threads (e.g. per-query eval → per-candidate scoring
    /// → row-blocked matmul would otherwise cube the thread count).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn detect_threads() -> usize {
    if let Ok(v) = std::env::var("LCDD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(MAX_THREADS)
}

/// Number of worker threads the pool helpers will use from the current
/// context (always 1 inside a pool worker — nesting stays serial).
pub fn num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(detect_threads)
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Items are split into one contiguous chunk per worker. Falls back to a
/// serial loop when the pool has a single thread or the input is small
/// enough that spawn overhead would dominate.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], additionally passing each item's index.
pub fn par_map_indexed<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    let threads = num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let per = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let f = &f;
        let mut slots: &mut [Option<R>] = &mut out;
        for (ci, chunk) in items.chunks(per).enumerate() {
            let (head, tail) = slots.split_at_mut(chunk.len());
            slots = tail;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let base = ci * per;
                for (j, (slot, item)) in head.iter_mut().zip(chunk).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("par_map: worker skipped a slot"))
        .collect()
}

/// Splits `items` into per-worker chunks and maps each chunk as a unit,
/// concatenating results in order. Useful when per-item work is tiny and
/// the closure wants to amortize setup across a chunk.
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let threads = num_threads();
    if threads <= 1 || items.len() <= 1 {
        return f(0, items);
    }
    let per = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(per).collect();
    let results = par_map_indexed(&chunks, |ci, chunk| f(ci * per, chunk));
    results.into_iter().flatten().collect()
}

/// Runs `f` over disjoint mutable chunks of `data` in parallel, passing the
/// chunk's starting offset. Chunk boundaries fall on multiples of
/// `chunk_len`; the final chunk may be shorter. This is the building block
/// for row-blocked matmul, where each worker owns a band of output rows.
pub fn par_chunks_mut<T: Send + Sync>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    let threads = num_threads();
    if threads <= 1 || data.len() <= chunk_len {
        f(0, data);
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                f(ci * chunk_len, chunk);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_positive() {
        assert!(num_threads() >= 1);
        assert!(num_threads() <= MAX_THREADS);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let mapped = par_map(&items, |&x| x * 2);
        assert_eq!(mapped, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_gives_global_indices() {
        let items: Vec<u32> = (0..100).collect();
        let mapped = par_map_indexed(&items, |i, &x| (i, x));
        for (i, &(gi, x)) in mapped.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_chunks(&items, |base, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, &x)| (base + j, x))
                .collect()
        });
        assert_eq!(out.len(), 1000);
        for (i, &(gi, x)) in out.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(x, i);
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 100, |base, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (base + j) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn nested_par_map_is_correct_and_serial() {
        let outer: Vec<usize> = (0..16).collect();
        let out = par_map(&outer, |&x| {
            // Inside a worker the pool must report a single thread so
            // nesting cannot multiply spawn counts.
            if std::thread::current().name().is_none() {
                assert_eq!(num_threads(), 1);
            }
            par_map(&[1usize, 2, 3], |&y| y * x).iter().sum::<usize>()
        });
        assert_eq!(out, outer.iter().map(|&x| 6 * x).collect::<Vec<_>>());
    }

    #[test]
    fn results_match_serial_reference() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        let serial: Vec<f64> = items.iter().map(|&x| x.sin() * x).collect();
        assert_eq!(par_map(&items, |&x| x.sin() * x), serial);
    }
}
