//! Scoped-thread work pool shared by every parallel hot path in the
//! workspace: repository encoding, candidate scoring, ground-truth DTW
//! matrices and row-blocked matmuls.
//!
//! The pool is deliberately structured around `std::thread::scope`: workers
//! borrow their inputs directly (no `Arc`, no channels, no 'static bounds)
//! and a panicking worker propagates at the scope boundary. Threads are
//! spawned per call — for the coarse-grained work units here (encoding a
//! table, scoring a candidate, one DTW row) spawn cost is noise, and scoped
//! spawning keeps the API allocation- and lifetime-free.
//!
//! # Thread-count resolution and the freeze point
//!
//! Thread count comes from `LCDD_THREADS` when set (useful for pinning
//! benchmarks or forcing serial execution), otherwise from
//! `available_parallelism`, capped at [`MAX_THREADS`]. The environment is
//! read **once**, on the first call to [`num_threads`] from outside a
//! worker, and the result is cached for the life of the process — changing
//! `LCDD_THREADS` after that first touch is silently ignored. This freeze
//! is deliberate (a thread count that drifts mid-query would make parallel
//! splits nondeterministic within one search), but it means anything that
//! wants a *specific* count must resolve it before the first `par_*` call:
//!
//! * process entry points that sweep thread counts must re-exec per sweep
//!   point (a child process gets a fresh cache — see `bench_serving`),
//! * tests that need a specific count use [`force_threads`], which
//!   overwrites the cache.
//!
//! [`resolve_threads`] performs the first-touch resolution explicitly so
//! binaries can freeze (and report) the count at startup instead of
//! wherever the first parallel call happens to be.
//!
//! # Determinism
//!
//! Every `par_*` helper produces results identical to its serial
//! equivalent: splitting only distributes *which worker* computes an
//! (index, item) pair, never the per-pair computation or the order results
//! are assembled in. Combined with the band-aligned matmul split in
//! [`crate::kernels`], all tensor results are bit-identical at any thread
//! count.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Hard ceiling on worker threads; beyond this the workloads in this
/// workspace are memory-bound and extra threads only add contention.
pub const MAX_THREADS: usize = 16;

thread_local! {
    /// Set inside pool workers so nested `par_*` calls run serial instead
    /// of multiplying threads (e.g. per-query eval → per-candidate scoring
    /// → row-blocked matmul would otherwise cube the thread count).
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Cached thread count; 0 = not yet resolved. A plain atomic (not a
/// `OnceLock`) so [`force_threads`] can overwrite the frozen value in
/// tests and thread-sweep harnesses.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Parallel map/chunk invocations executed (monotone, relaxed). Scraped
/// by the gateway's telemetry registry as `lcdd_pool_tasks`.
static TASKS: AtomicUsize = AtomicUsize::new(0);

/// Parallel invocations executed so far ([`par_map`] and the chunked
/// variants each count one, whether they ran fanned-out or serial).
pub fn tasks_executed() -> u64 {
    TASKS.load(Ordering::Relaxed) as u64
}

pub(crate) fn detect_threads() -> usize {
    if let Ok(v) = std::env::var("LCDD_THREADS") {
        // 0 and garbage both fall through to detection.
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n.min(MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(MAX_THREADS)
}

/// Number of worker threads the pool helpers will use from the current
/// context (always 1 inside a pool worker — nesting stays serial).
///
/// The first call from outside a worker freezes the count for the process
/// lifetime; see the module docs for why and for the escape hatches.
pub fn num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    match THREADS.load(Ordering::Relaxed) {
        0 => resolve_threads(),
        n => n,
    }
}

/// Resolves and freezes the thread count now (idempotent): reads
/// `LCDD_THREADS` / `available_parallelism` unless a count is already
/// cached, stores it, and returns the frozen value. Call this at binary
/// startup to pin the count before any parallel work — after the first
/// `par_*` call it is a no-op.
pub fn resolve_threads() -> usize {
    let n = detect_threads();
    match THREADS.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => n,
        // Lost the race (or already frozen): honor the cached value.
        Err(frozen) => frozen,
    }
}

/// Overwrites the frozen thread count (clamped to `1..=`[`MAX_THREADS`]).
///
/// **Test and bench harness use only.** Production code must rely on the
/// one-shot `LCDD_THREADS` / `available_parallelism` resolution; this hook
/// exists so invariance suites can sweep thread counts inside one process
/// and so the pool's own coverage tests can exercise adversarial counts.
/// Callers that share a process with other tests must serialize around it.
pub fn force_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::SeqCst);
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// Items are split into one contiguous chunk per worker. Falls back to a
/// serial loop when the pool has a single thread or the input is small
/// enough that spawn overhead would dominate.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    par_map_indexed(items, |_, item| f(item))
}

/// Like [`par_map`], additionally passing each item's index.
pub fn par_map_indexed<T: Sync, R: Send>(items: &[T], f: impl Fn(usize, &T) -> R + Sync) -> Vec<R> {
    TASKS.fetch_add(1, Ordering::Relaxed);
    let threads = num_threads();
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    // `per >= 1` because items.len() > 1; `chunks(per)` then yields at most
    // `threads` chunks and covers every item exactly once regardless of
    // `items.len() % threads` (the last chunk is simply shorter).
    let per = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let f = &f;
        let mut slots: &mut [Option<R>] = &mut out;
        for (ci, chunk) in items.chunks(per).enumerate() {
            let (head, tail) = slots.split_at_mut(chunk.len());
            slots = tail;
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let base = ci * per;
                for (j, (slot, item)) in head.iter_mut().zip(chunk).enumerate() {
                    *slot = Some(f(base + j, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("par_map: worker skipped a slot"))
        .collect()
}

/// Splits `items` into per-worker chunks and maps each chunk as a unit,
/// concatenating results in order. Useful when per-item work is tiny and
/// the closure wants to amortize setup across a chunk.
pub fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(usize, &[T]) -> Vec<R> + Sync,
) -> Vec<R> {
    let threads = num_threads();
    if threads <= 1 || items.len() <= 1 {
        return f(0, items);
    }
    let per = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(per).collect();
    let results = par_map_indexed(&chunks, |ci, chunk| f(ci * per, chunk));
    results.into_iter().flatten().collect()
}

/// Runs `f` over disjoint mutable chunks of `data` in parallel, passing the
/// chunk's starting offset. Chunk boundaries fall on multiples of
/// `chunk_len`; the final chunk may be shorter. This is the building block
/// for row-blocked matmul, where each worker owns a band of output rows.
pub fn par_chunks_mut<T: Send + Sync>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    TASKS.fetch_add(1, Ordering::Relaxed);
    let threads = num_threads();
    if threads <= 1 || data.len() <= chunk_len {
        f(0, data);
        return;
    }
    std::thread::scope(|s| {
        let f = &f;
        for (ci, chunk) in data.chunks_mut(chunk_len).enumerate() {
            s.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                f(ci * chunk_len, chunk);
            });
        }
    });
}

#[cfg(test)]
pub(crate) mod test_sync {
    //! Serialization point for tests that call [`super::force_threads`]:
    //! the cached count is process-global, so forced-count tests (here and
    //! in `kernels`) must not interleave with each other.

    use std::sync::{Mutex, MutexGuard, PoisonError};

    static FORCED: Mutex<()> = Mutex::new(());

    /// Takes the forced-thread-count lock; on drop, callers should restore
    /// a detected count via [`super::force_threads`].
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        FORCED.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `body` with the pool forced to each count in `counts`,
    /// restoring the detected count afterwards.
    fn with_forced_threads(counts: &[usize], body: impl Fn(usize)) {
        let _guard = test_sync::lock();
        for &t in counts {
            force_threads(t);
            body(t);
        }
        force_threads(detect_threads());
    }

    #[test]
    fn num_threads_positive() {
        assert!(num_threads() >= 1);
        assert!(num_threads() <= MAX_THREADS);
    }

    #[test]
    fn resolve_is_idempotent_and_matches_num_threads() {
        let a = resolve_threads();
        let b = num_threads();
        let c = resolve_threads();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let mapped = par_map(&items, |&x| x * 2);
        assert_eq!(mapped, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_indexed_gives_global_indices() {
        let items: Vec<u32> = (0..100).collect();
        let mapped = par_map_indexed(&items, |i, &x| (i, x));
        for (i, &(gi, x)) in mapped.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(x as usize, i);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_chunks(&items, |base, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(j, &x)| (base + j, x))
                .collect()
        });
        assert_eq!(out.len(), 1000);
        for (i, &(gi, x)) in out.iter().enumerate() {
            assert_eq!(gi, i);
            assert_eq!(x, i);
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 100, |base, chunk| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (base + j) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn nested_par_map_is_correct_and_serial() {
        let outer: Vec<usize> = (0..16).collect();
        let out = par_map(&outer, |&x| {
            // Inside a worker the pool must report a single thread so
            // nesting cannot multiply spawn counts.
            if std::thread::current().name().is_none() {
                assert_eq!(num_threads(), 1);
            }
            par_map(&[1usize, 2, 3], |&y| y * x).iter().sum::<usize>()
        });
        assert_eq!(out, outer.iter().map(|&x| 6 * x).collect::<Vec<_>>());
    }

    #[test]
    fn results_match_serial_reference() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.25).collect();
        let serial: Vec<f64> = items.iter().map(|&x| x.sin() * x).collect();
        assert_eq!(par_map(&items, |&x| x.sin() * x), serial);
    }

    #[test]
    fn force_threads_overrides_frozen_count() {
        let _guard = test_sync::lock();
        force_threads(3);
        assert_eq!(num_threads(), 3);
        force_threads(0); // clamped up
        assert_eq!(num_threads(), 1);
        force_threads(999); // clamped down
        assert_eq!(num_threads(), MAX_THREADS);
        force_threads(detect_threads());
    }

    /// Satellite audit: every helper must visit each index exactly once for
    /// adversarial (len, threads) pairs — `len < threads`,
    /// `len % threads != 0`, len 0/1, thread counts at and above the cap.
    #[test]
    fn every_index_visited_exactly_once_across_adversarial_pairs() {
        use std::sync::atomic::AtomicU32;

        let lens = [0usize, 1, 2, 3, 5, 7, 8, 15, 16, 17, 100, 101];
        let threads = [1usize, 2, 3, 4, 5, 7, 13, 16];
        with_forced_threads(&threads, |t| {
            for &len in &lens {
                let items: Vec<usize> = (0..len).collect();

                // par_map_indexed: order-preserving, each index once, and
                // the reported index matches the item.
                let visits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
                let out = par_map_indexed(&items, |i, &x| {
                    visits[i].fetch_add(1, Ordering::Relaxed);
                    assert_eq!(i, x, "threads={t} len={len}: index/item mismatch");
                    i
                });
                assert_eq!(out, items, "threads={t} len={len}: par_map_indexed");
                for (i, v) in visits.iter().enumerate() {
                    assert_eq!(
                        v.load(Ordering::Relaxed),
                        1,
                        "threads={t} len={len}: index {i} visited != once"
                    );
                }

                // par_chunks: concatenation covers 0..len in order and base
                // offsets line up with chunk contents.
                let visits: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
                let out = par_chunks(&items, |base, chunk| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(j, &x)| {
                            assert_eq!(base + j, x, "threads={t} len={len}: chunk base");
                            visits[x].fetch_add(1, Ordering::Relaxed);
                            x
                        })
                        .collect()
                });
                assert_eq!(out, items, "threads={t} len={len}: par_chunks");
                for (i, v) in visits.iter().enumerate() {
                    assert_eq!(
                        v.load(Ordering::Relaxed),
                        1,
                        "threads={t} len={len}: par_chunks index {i}"
                    );
                }

                // par_chunks_mut across chunk lengths that do and don't
                // divide len, including chunk_len > len.
                for chunk_len in [1usize, 2, 3, 7, len.max(1), len + 3] {
                    let mut data = vec![u32::MAX; len];
                    par_chunks_mut(&mut data, chunk_len, |base, chunk| {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            assert_eq!(
                                *v,
                                u32::MAX,
                                "threads={t} len={len} cl={chunk_len}: slot revisited"
                            );
                            *v = (base + j) as u32;
                        }
                    });
                    for (i, &v) in data.iter().enumerate() {
                        assert_eq!(
                            v as usize, i,
                            "threads={t} len={len} cl={chunk_len}: index {i}"
                        );
                    }
                }
            }
        });
    }
}
