//! Define-by-run reverse-mode autograd tape.
//!
//! Every forward operation appends a node carrying the result value and a
//! backward closure. [`Var`] is a cheap handle (tape pointer + node index);
//! cloning a `Var` does not copy data. A fresh tape is built per forward pass
//! — parameters re-enter each tape as leaves via
//! [`crate::param::ParamStore::leaf`].

use std::cell::RefCell;
use std::rc::Rc;

use crate::matrix::Matrix;

/// A backward closure: given the gradient flowing into this node's output,
/// push gradient contributions to parent nodes through the sink callback.
pub(crate) type BackwardFn = Box<dyn Fn(&Matrix, &mut dyn FnMut(usize, Matrix))>;

pub(crate) struct Node {
    pub(crate) value: Matrix,
    pub(crate) backward: Option<BackwardFn>,
}

#[derive(Default)]
pub(crate) struct TapeInner {
    pub(crate) nodes: Vec<Node>,
    /// `(param id, node index)` pairs recorded by `ParamStore::leaf`.
    pub(crate) bindings: Vec<(usize, usize)>,
    /// Gradients per node, populated by [`Tape::backward`].
    pub(crate) grads: Vec<Option<Matrix>>,
}

/// A reverse-mode autograd tape. Cheap to clone (shared pointer).
#[derive(Clone, Default)]
pub struct Tape {
    pub(crate) inner: Rc<RefCell<TapeInner>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a leaf node (no parents) holding `value`.
    pub fn leaf(&self, value: Matrix) -> Var {
        self.push(value, None)
    }

    /// Adds a constant node. Identical to [`Tape::leaf`] but signals intent:
    /// gradients that reach a constant are computed and then ignored.
    pub fn constant(&self, value: Matrix) -> Var {
        self.leaf(value)
    }

    pub(crate) fn push(&self, value: Matrix, backward: Option<BackwardFn>) -> Var {
        let mut inner = self.inner.borrow_mut();
        let idx = inner.nodes.len();
        inner.nodes.push(Node { value, backward });
        Var {
            tape: self.clone(),
            idx,
        }
    }

    pub(crate) fn record_binding(&self, param_id: usize, node_idx: usize) {
        self.inner.borrow_mut().bindings.push((param_id, node_idx));
    }

    /// Runs the backward pass from `root`, which must be a `1x1` scalar node.
    ///
    /// Gradients for every node reachable from `root` are accumulated and can
    /// afterwards be read with [`Var::grad`].
    pub fn backward(&self, root: &Var) {
        assert!(
            Rc::ptr_eq(&self.inner, &root.tape.inner),
            "backward: root belongs to a different tape"
        );
        let mut inner = self.inner.borrow_mut();
        let n = inner.nodes.len();
        assert_eq!(
            inner.nodes[root.idx].value.shape(),
            (1, 1),
            "backward: root must be a 1x1 scalar"
        );
        let mut grads: Vec<Option<Matrix>> = vec![None; n];
        grads[root.idx] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        // The tape is already in topological order: parents always precede
        // children, so a single reverse sweep suffices.
        for idx in (0..=root.idx).rev() {
            let Some(grad_out) = grads[idx].take() else {
                continue;
            };
            // Put it back for later inspection via Var::grad().
            grads[idx] = Some(grad_out.clone());
            if let Some(backward) = inner.nodes[idx].backward.as_ref() {
                let mut sink = |parent: usize, contribution: Matrix| {
                    debug_assert!(parent < idx, "backward edge must point earlier in the tape");
                    match &mut grads[parent] {
                        Some(g) => g.add_assign(&contribution),
                        slot @ None => *slot = Some(contribution),
                    }
                };
                backward(&grad_out, &mut sink);
            }
        }
        inner.grads = grads;
    }

    pub(crate) fn grad_of(&self, idx: usize) -> Option<Matrix> {
        self.inner.borrow().grads.get(idx).and_then(|g| g.clone())
    }
}

/// Handle to a node on a [`Tape`]. Clone is cheap (no data copy).
#[derive(Clone)]
pub struct Var {
    pub(crate) tape: Tape,
    pub(crate) idx: usize,
}

impl Var {
    /// The tape this variable lives on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Node index within the tape (stable for the tape's lifetime).
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Copies out the node's value.
    pub fn value(&self) -> Matrix {
        self.tape.inner.borrow().nodes[self.idx].value.clone()
    }

    /// Shape of the node's value without copying.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.inner.borrow().nodes[self.idx].value.shape()
    }

    /// Runs `f` with a borrow of the value, avoiding a copy.
    pub fn with_value<R>(&self, f: impl FnOnce(&Matrix) -> R) -> R {
        f(&self.tape.inner.borrow().nodes[self.idx].value)
    }

    /// Scalar value of a `1x1` node.
    pub fn scalar(&self) -> f32 {
        self.with_value(|v| {
            assert_eq!(v.shape(), (1, 1), "scalar: node is not 1x1");
            v.get(0, 0)
        })
    }

    /// Gradient of the last backward pass w.r.t. this node, if it was reached.
    pub fn grad(&self) -> Option<Matrix> {
        self.tape.grad_of(self.idx)
    }

    pub(crate) fn same_tape(&self, other: &Var) -> bool {
        Rc::ptr_eq(&self.tape.inner, &other.tape.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let tape = Tape::new();
        let v = tape.leaf(Matrix::from_vec(1, 2, vec![3.0, 4.0]));
        assert_eq!(v.shape(), (1, 2));
        assert_eq!(v.value().as_slice(), &[3.0, 4.0]);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn backward_on_leaf_scalar() {
        let tape = Tape::new();
        let v = tape.leaf(Matrix::from_vec(1, 1, vec![5.0]));
        tape.backward(&v);
        let g = v.grad().expect("leaf root must have a gradient");
        assert_eq!(g.as_slice(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "1x1 scalar")]
    fn backward_requires_scalar_root() {
        let tape = Tape::new();
        let v = tape.leaf(Matrix::zeros(2, 2));
        tape.backward(&v);
    }

    #[test]
    fn var_clone_shares_node() {
        let tape = Tape::new();
        let v = tape.leaf(Matrix::zeros(1, 1));
        let w = v.clone();
        assert_eq!(v.index(), w.index());
        assert_eq!(tape.len(), 1);
    }
}
