//! Property-based gradient verification: every differentiable op's backward
//! closure is checked against central finite differences on random inputs.

use lcdd_tensor::grad_check::grad_check;
use lcdd_tensor::Matrix;
use proptest::prelude::*;

const H: f32 = 1e-2;
const ABS_TOL: f32 = 2e-2;
const REL_TOL: f32 = 3e-2;

fn small_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-1.5f32..1.5f32, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_add_sub(a in small_vals(6), b in small_vals(6)) {
        let am = Matrix::from_vec(2, 3, a);
        let bm = Matrix::from_vec(2, 3, b);
        let r = grad_check(&[am, bm], H, |_t, v| v[0].add(&v[1]).sub(&v[0].scale(0.5)).square().sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_mul(a in small_vals(4), b in small_vals(4)) {
        let am = Matrix::from_vec(2, 2, a);
        let bm = Matrix::from_vec(2, 2, b);
        let r = grad_check(&[am, bm], H, |_t, v| v[0].mul(&v[1]).sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_matmul(a in small_vals(6), b in small_vals(8)) {
        let am = Matrix::from_vec(3, 2, a);
        let bm = Matrix::from_vec(2, 4, b);
        let r = grad_check(&[am, bm], H, |_t, v| v[0].matmul(&v[1]).square().sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_matmul_nt(a in small_vals(6), b in small_vals(8)) {
        let am = Matrix::from_vec(3, 2, a);
        let bm = Matrix::from_vec(4, 2, b);
        let r = grad_check(&[am, bm], H, |_t, v| v[0].matmul_nt(&v[1]).square().sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_affine(x in small_vals(6), w in small_vals(8), b in small_vals(4)) {
        let xm = Matrix::from_vec(3, 2, x);
        let wm = Matrix::from_vec(2, 4, w);
        let bm = Matrix::from_vec(1, 4, b);
        let r = grad_check(&[xm, wm, bm], H, |_t, v| {
            v[0].affine(&v[1], Some(&v[2])).square().sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_transpose_chain(a in small_vals(6)) {
        let am = Matrix::from_vec(2, 3, a);
        let r = grad_check(&[am], H, |_t, v| {
            v[0].transpose_var().matmul(&v[0]).sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_sigmoid_tanh(a in small_vals(5)) {
        let am = Matrix::from_vec(1, 5, a);
        let r = grad_check(&[am], H, |_t, v| v[0].sigmoid().mul(&v[0].tanh_var()).sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_leaky_relu(a in small_vals(6)) {
        // Keep inputs away from the kink at 0 where finite differences lie.
        let am = Matrix::from_vec(2, 3, a.iter().map(|&x| if x.abs() < 0.15 { x + 0.3 } else { x }).collect());
        let r = grad_check(&[am], H * 0.1, |_t, v| v[0].leaky_relu(0.1).square().sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_softmax(a in small_vals(8)) {
        let am = Matrix::from_vec(2, 4, a);
        let wm = Matrix::from_vec(2, 4, vec![1.0, -0.5, 2.0, 0.25, -1.0, 0.5, 0.75, -0.25]);
        let r = grad_check(&[am], H, move |t, v| {
            let w = t.constant(wm.clone());
            v[0].softmax_rows().mul(&w).sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_layer_norm(a in small_vals(8), g in small_vals(4), b in small_vals(4)) {
        let am = Matrix::from_vec(2, 4, a);
        let gm = Matrix::from_vec(1, 4, g.iter().map(|&x| x + 1.5).collect());
        let bm = Matrix::from_vec(1, 4, b);
        let wm = Matrix::from_vec(2, 4, vec![0.9, -0.4, 1.1, 0.2, -0.6, 0.3, 0.8, -1.0]);
        let r = grad_check(&[am, gm, bm], H, move |t, v| {
            let w = t.constant(wm.clone());
            v[0].layer_norm(&v[1], &v[2], 1e-3).mul(&w).sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_mean_rows_broadcast(a in small_vals(8), b in small_vals(4)) {
        let am = Matrix::from_vec(2, 4, a);
        let bm = Matrix::from_vec(1, 4, b);
        let r = grad_check(&[am, bm], H, |_t, v| {
            v[0].add_row_broadcast(&v[1]).mean_rows().square().sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_attention_block(q in small_vals(8), k in small_vals(8), vv in small_vals(8)) {
        let qm = Matrix::from_vec(2, 4, q);
        let km = Matrix::from_vec(2, 4, k);
        let vm = Matrix::from_vec(2, 4, vv);
        let r = grad_check(&[qm, km, vm], H, |_t, v| {
            let (out, _) = lcdd_tensor::scaled_dot_attention(&v[0], &v[1], &v[2]);
            out.square().sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_concat_slice(a in small_vals(4), b in small_vals(4)) {
        let am = Matrix::from_vec(2, 2, a);
        let bm = Matrix::from_vec(2, 2, b);
        let r = grad_check(&[am, bm], H, |_t, v| {
            let cat = lcdd_tensor::Var::concat_rows(&[v[0].clone(), v[1].clone()]);
            let sliced = cat.slice_rows_var(1, 3);
            let wide = lcdd_tensor::Var::concat_cols(&[sliced.clone(), sliced]);
            wide.square().sum_all()
        });
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_ln_clamped(a in proptest::collection::vec(0.2f32..2.0f32, 4)) {
        let am = Matrix::from_vec(1, 4, a);
        let r = grad_check(&[am], 1e-3, |_t, v| v[0].ln_clamped(1e-6).sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }

    #[test]
    fn grad_scale_by(a in small_vals(4), s in -1.0f32..1.0f32) {
        let am = Matrix::from_vec(2, 2, a);
        let sm = Matrix::from_vec(1, 1, vec![s]);
        let r = grad_check(&[am, sm], H, |_t, v| v[0].scale_by(&v[1]).square().sum_all());
        prop_assert!(r.passes(ABS_TOL, REL_TOL), "{r:?}");
    }
}

#[test]
fn composite_two_layer_network_gradcheck() {
    // A small end-to-end MLP: x -> xW1+b1 -> leaky_relu -> W2 -> sigmoid -> bce
    let x = Matrix::from_vec(2, 3, vec![0.2, -0.4, 0.6, -0.1, 0.3, 0.5]);
    let w1 = Matrix::from_vec(
        3,
        4,
        (0..12)
            .map(|i| ((i * 7 % 11) as f32 - 5.0) / 10.0)
            .collect(),
    );
    let b1 = Matrix::from_vec(1, 4, vec![0.05, -0.05, 0.1, 0.0]);
    let w2 = Matrix::from_vec(4, 1, vec![0.3, -0.2, 0.5, 0.1]);
    let r = grad_check(&[x, w1, b1, w2], 1e-3, |_t, v| {
        let h = v[0].matmul(&v[1]).add_row_broadcast(&v[2]).leaky_relu(0.01);
        let p = h.matmul(&v[3]).sigmoid();
        // BCE against target 1.0 for both rows
        p.ln_clamped(1e-7).neg().mean_all()
    });
    assert!(r.passes(2e-2, 3e-2), "{r:?}");
}
