//! Property tests for the blocked matmul kernel layer: every fast path —
//! tiny, dense packed, sparse skip-zero, parallel row-banded, and the
//! transposed-layout variants — must agree with the naive triple-loop
//! reference within tolerance across rectangular and degenerate shapes.

use lcdd_tensor::{matmul_naive, Matrix};
use proptest::prelude::*;

/// Elementwise comparison with an absolute tolerance scaled to the
/// accumulation length (f32 sums reassociate across kernels).
fn assert_close(fast: &Matrix, reference: &Matrix, inner: usize, ctx: &str) {
    assert_eq!(fast.shape(), reference.shape(), "{ctx}: shape mismatch");
    let tol = 1e-4f32 * (inner.max(1) as f32).sqrt();
    for (i, (&x, &y)) in fast.as_slice().iter().zip(reference.as_slice()).enumerate() {
        assert!(
            (x - y).abs() <= tol + 1e-4 * y.abs().max(1.0),
            "{ctx}: element {i}: blocked {x} vs naive {y}"
        );
    }
}

fn matrix_from(vals: &[f32], rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, vals[..rows * cols].to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn blocked_matches_naive_rectangular(
        n in 1usize..40,
        m in 1usize..40,
        p in 1usize..40,
        vals in collection::vec(-2.0f32..2.0, 40 * 40 * 2),
    ) {
        let a = matrix_from(&vals, n, m);
        let b = matrix_from(&vals[40 * 40..], m, p);
        assert_close(&a.matmul(&b), &matmul_naive(&a, &b), m, &format!("{n}x{m}x{p}"));
    }

    #[test]
    fn matmul_into_scratch_reuse_matches(
        n in 1usize..24,
        m in 1usize..24,
        p in 1usize..24,
        vals in collection::vec(-2.0f32..2.0, 24 * 24 * 2),
    ) {
        let a = matrix_from(&vals, n, m);
        let b = matrix_from(&vals[24 * 24..], m, p);
        // Scratch arrives dirty; the kernel must fully overwrite it.
        let mut scratch = Matrix::full(n, p, f32::NAN);
        a.matmul_into(&b, &mut scratch);
        assert_close(&scratch, &matmul_naive(&a, &b), m, "scratch reuse");
    }

    #[test]
    fn nt_and_tn_match_explicit_transposes(
        n in 1usize..20,
        m in 1usize..20,
        p in 1usize..20,
        vals in collection::vec(-2.0f32..2.0, 20 * 20 * 2),
    ) {
        let a = matrix_from(&vals, n, m);
        let bt = matrix_from(&vals[20 * 20..], p, m);
        assert_close(&a.matmul_nt(&bt), &matmul_naive(&a, &bt.transpose()), m, "nt");
        let at = matrix_from(&vals, m, n);
        let b = matrix_from(&vals[20 * 20..], m, p);
        assert_close(&at.matmul_tn(&b), &matmul_naive(&at.transpose(), &b), m, "tn");
    }

    #[test]
    fn sparse_inputs_match_naive(
        n in 1usize..32,
        vals in collection::vec(0.0f32..1.0, 32 * 32),
        dense_vals in collection::vec(-2.0f32..2.0, 32 * 32),
    ) {
        // ~92% zeros: forces the density-probed skip-zero path.
        let sparse: Vec<f32> = vals[..n * n]
            .iter()
            .map(|&v| if v > 0.92 { v } else { 0.0 })
            .collect();
        let a = Matrix::from_vec(n, n, sparse);
        let b = matrix_from(&dense_vals, n, n);
        assert_close(&a.matmul(&b), &matmul_naive(&a, &b), n, "sparse A");
    }
}

#[test]
fn degenerate_shapes() {
    // Zero-sized operands in every position must produce empty (or zero)
    // outputs rather than panicking.
    let a00 = Matrix::zeros(0, 0);
    assert_eq!(a00.matmul(&a00).shape(), (0, 0));

    let a = Matrix::zeros(0, 5);
    let b = Matrix::from_vec(5, 3, vec![1.0; 15]);
    assert_eq!(a.matmul(&b).shape(), (0, 3));

    let a = Matrix::from_vec(3, 0, vec![]);
    let b = Matrix::zeros(0, 4);
    let out = a.matmul(&b);
    assert_eq!(out.shape(), (3, 4));
    assert!(
        out.as_slice().iter().all(|&x| x == 0.0),
        "empty inner dim sums to zero"
    );

    let a = Matrix::from_vec(1, 1, vec![3.0]);
    let b = Matrix::from_vec(1, 1, vec![-2.0]);
    assert_eq!(a.matmul(&b).as_slice(), &[-6.0]);
}

#[test]
fn column_vector_and_row_vector_products() {
    let col = Matrix::col_vector(&[1.0, 2.0, 3.0]);
    let row = Matrix::row_vector(&[4.0, 5.0]);
    let outer = col.matmul(&row);
    assert_eq!(outer.shape(), (3, 2));
    assert_eq!(outer.as_slice(), &[4.0, 5.0, 8.0, 10.0, 12.0, 15.0]);
    let inner = row.matmul(&Matrix::col_vector(&[6.0, 7.0]));
    assert_eq!(inner.as_slice(), &[59.0]);
}

#[test]
fn large_sizes_cross_parallel_threshold() {
    // 192^3 > the kernel's parallel-split threshold, so this exercises the
    // row-banded pool path (serial on single-core hosts, banded elsewhere)
    // and the size range the ≥3x acceptance criterion measures.
    for &n in &[64usize, 192] {
        let a = Matrix::from_vec(
            n,
            n,
            (0..n * n)
                .map(|i| ((i * 37 + 11) % 101) as f32 / 50.0 - 1.0)
                .collect(),
        );
        let b = Matrix::from_vec(
            n,
            n,
            (0..n * n)
                .map(|i| ((i * 53 + 29) % 97) as f32 / 48.0 - 1.0)
                .collect(),
        );
        let fast = a.matmul(&b);
        let reference = matmul_naive(&a, &b);
        let tol = 1e-4 * (n as f32).sqrt();
        for (&x, &y) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() <= tol + 1e-4 * y.abs(), "{n}: {x} vs {y}");
        }
    }
}
