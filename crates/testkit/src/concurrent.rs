//! Concurrent reader/writer harness for the serving engine.
//!
//! The harness runs N reader threads in a tight search loop against a
//! [`ServingEngine`] while one writer thread applies a scripted mutation
//! sequence. Along the way it checks the serving contract:
//!
//! * **per-response internal consistency** — every response must be
//!   self-consistent with exactly one published epoch: its `counts.total`
//!   must equal the corpus size *at that epoch*, its hit indices must
//!   address that corpus, hit counts must respect `k`, and scores must
//!   never be NaN;
//! * **monotone publication** — a single reader thread must never observe
//!   the epoch go backwards;
//! * **serial equivalence** — after the writer finishes and readers join,
//!   the published state must answer queries hit-for-hit identically to a
//!   plain [`Engine`] that applied the same ops serially (the caller
//!   asserts this with [`crate::assert_same_hits`]).
//!
//! Epoch → corpus-size bookkeeping works without instrumenting the engine:
//! every mutation bumps the epoch by exactly one, so the writer records
//! `(epoch_after_op, len_after_op)` after each op and the map is total.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Mutex;

use lcdd_engine::{Engine, EngineError, Query, SearchOptions, ServingEngine};
use lcdd_table::Table;

/// One scripted writer operation.
#[derive(Clone, Debug)]
pub enum WriterOp {
    Insert(Vec<Table>),
    Remove(Vec<u64>),
    Compact,
    Reshard(usize),
}

impl WriterOp {
    /// Applies the op to a concurrent serving engine.
    pub fn apply_serving(&self, serving: &ServingEngine) {
        match self {
            WriterOp::Insert(tables) => {
                serving.insert_tables(tables.clone());
            }
            WriterOp::Remove(ids) => {
                serving.remove_tables(ids);
            }
            WriterOp::Compact => serving.compact(),
            WriterOp::Reshard(n) => serving
                .reshard(*n)
                .expect("harness reshard counts are valid"),
        }
    }

    /// Applies the op to a plain engine (the serial-replay reference).
    pub fn apply_serial(&self, engine: &mut Engine) {
        match self {
            WriterOp::Insert(tables) => {
                engine.insert_tables(tables.clone());
            }
            WriterOp::Remove(ids) => {
                engine.remove_tables(ids);
            }
            WriterOp::Compact => engine.compact(),
            WriterOp::Reshard(n) => engine
                .reshard(*n)
                .expect("harness reshard counts are valid"),
        }
    }
}

/// What one harness run observed.
#[derive(Clone, Debug, Default)]
pub struct SessionReport {
    /// Total successful responses across all readers.
    pub responses: usize,
    /// Total erroneous (but non-panicking) responses.
    pub errors: usize,
    /// Distinct epochs readers actually observed.
    pub epochs_observed: Vec<u64>,
    /// Responses served from the query cache.
    pub cached_responses: usize,
}

/// Drives `n_readers` query loops concurrently with a writer applying
/// `ops` in order, validating every response against the epoch ledger.
/// Returns what was observed; panics (inside a reader/writer thread, which
/// propagates) on any contract violation.
///
/// Readers keep querying until the writer finishes *and* each has issued
/// at least `min_queries_per_reader` searches, so short op scripts still
/// exercise cross-epoch interleavings.
pub fn run_concurrent_session(
    serving: &ServingEngine,
    ops: &[WriterOp],
    queries: &[Query],
    opts: &SearchOptions,
    n_readers: usize,
    min_queries_per_reader: usize,
) -> SessionReport {
    assert!(!queries.is_empty(), "harness needs at least one query");
    // Epoch ledger: epoch -> corpus size. The initial epoch is known up
    // front; each op appends its (epoch, len) after it returns. Readers
    // may observe an epoch a beat before the ledger records it (publish
    // happens inside the op), so they buffer observations and the ledger
    // is checked after the join, when it is complete.
    let ledger: Mutex<HashMap<u64, usize>> =
        Mutex::new(HashMap::from([(serving.epoch(), serving.len())]));
    let writer_done = AtomicBool::new(false);
    let observations: Mutex<Vec<(u64, usize)>> = Mutex::new(Vec::new());
    let report: Mutex<SessionReport> = Mutex::new(SessionReport::default());

    std::thread::scope(|scope| {
        for reader in 0..n_readers {
            let writer_done = &writer_done;
            let observations = &observations;
            let report = &report;
            scope.spawn(move || {
                let mut local_obs = Vec::new();
                let mut last_epoch = 0u64;
                let mut issued = 0usize;
                let (mut ok, mut errs, mut cached) = (0usize, 0usize, 0usize);
                while !writer_done.load(SeqCst) || issued < min_queries_per_reader {
                    let q = &queries[(reader + issued) % queries.len()];
                    issued += 1;
                    match serving.search(q, opts) {
                        Ok(resp) => {
                            assert!(
                                resp.epoch >= last_epoch,
                                "reader {reader} saw epoch regress {last_epoch} -> {}",
                                resp.epoch
                            );
                            last_epoch = resp.epoch;
                            assert!(
                                resp.hits.len() <= opts.k,
                                "response exceeded k: {} > {}",
                                resp.hits.len(),
                                opts.k
                            );
                            assert!(
                                resp.counts.scored <= resp.counts.total,
                                "scored {} candidates out of a corpus of {}",
                                resp.counts.scored,
                                resp.counts.total
                            );
                            for hit in &resp.hits {
                                assert!(
                                    hit.index < resp.counts.total,
                                    "hit index {} outside epoch-{} corpus of {}",
                                    hit.index,
                                    resp.epoch,
                                    resp.counts.total
                                );
                                assert!(
                                    !hit.score.is_nan(),
                                    "NaN score surfaced as a hit at epoch {}",
                                    resp.epoch
                                );
                            }
                            local_obs.push((resp.epoch, resp.counts.total));
                            ok += 1;
                            cached += usize::from(resp.cached);
                        }
                        Err(EngineError::EmptyQuery | EngineError::UnsupportedQuery(_)) => {
                            errs += 1;
                        }
                        Err(e) => panic!("reader {reader}: unexpected engine error: {e:?}"),
                    }
                }
                observations
                    .lock()
                    .expect("harness mutex")
                    .extend(local_obs);
                let mut r = report.lock().expect("harness mutex");
                r.responses += ok;
                r.errors += errs;
                r.cached_responses += cached;
            });
        }

        // The single writer.
        for op in ops {
            op.apply_serving(serving);
            ledger
                .lock()
                .expect("harness mutex")
                .insert(serving.epoch(), serving.len());
        }
        writer_done.store(true, SeqCst);
    });

    // Join complete: the ledger is total, validate every observation.
    let ledger = ledger.into_inner().expect("harness mutex");
    let observations = observations.into_inner().expect("harness mutex");
    let mut epochs: Vec<u64> = Vec::new();
    for (epoch, total) in observations {
        let expect = ledger.get(&epoch).unwrap_or_else(|| {
            panic!("response reported epoch {epoch}, which the writer never published")
        });
        assert_eq!(
            *expect, total,
            "epoch {epoch}: response saw a corpus of {total}, writer recorded {expect} \
             (response mixed two epochs)"
        );
        epochs.push(epoch);
    }
    epochs.sort_unstable();
    epochs.dedup();
    let mut report = report.into_inner().expect("harness mutex");
    report.epochs_observed = epochs;
    report
}

/// Serially replays `ops` onto `engine` (the equivalence reference for
/// [`run_concurrent_session`]).
pub fn replay_serial(engine: &mut Engine, ops: &[WriterOp]) {
    for op in ops {
        op.apply_serial(engine);
    }
}
