//! Crash-injection harness for the durable store: scripted op sequences,
//! serial-replay oracles, store-directory snapshots as simulated crash
//! points, and torn-write variants of the WAL tail.
//!
//! The central claim it proves (the recovery-equivalence acceptance bar):
//! for a random script of insert / remove / compact / reshard ops, a
//! process that crashes at **any record boundary** — including
//! mid-checkpoint and with a torn final record — recovers to an engine
//! whose search results are hit-for-hit identical, with **bit-identical
//! scores**, to a serial replay of the op prefix that made it to the log.
//! Recovery replays cached encodings only: the FCM encoder runs zero
//! times during [`lcdd_store::DurableEngine::open`] (asserted via
//! `lcdd_fcm::table_encode_count`).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use lcdd_engine::{Engine, IndexStrategy, Query, SearchOptions};
use lcdd_store::{DurableEngine, StoreOptions};
use lcdd_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{assert_same_hits, corpus, query_like, tiny_engine, CorpusSpec};

/// One scripted corpus mutation — the testkit mirror of the ops the WAL
/// records.
#[derive(Clone, Debug)]
pub enum ScriptedOp {
    Insert(Vec<Table>),
    Remove(Vec<u64>),
    Compact,
    Reshard(usize),
}

impl ScriptedOp {
    /// Short label for failure messages.
    pub fn label(&self) -> String {
        match self {
            ScriptedOp::Insert(t) => format!("insert x{}", t.len()),
            ScriptedOp::Remove(ids) => format!("remove {ids:?}"),
            ScriptedOp::Compact => "compact".into(),
            ScriptedOp::Reshard(n) => format!("reshard {n}"),
        }
    }
}

/// Generates a deterministic op script: ~45% inserts (1–3 fresh tables),
/// ~30% removals of previously inserted or base ids, ~13% compacts, ~12%
/// reshards (1–4 shards). Fresh table ids start at 10_000 and never
/// collide with a `0..n` base corpus.
pub fn random_script(seed: u64, n_ops: usize, base_ids: &[u64]) -> Vec<ScriptedOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5c71_9bd3_0f64_aa21);
    let mut live: Vec<u64> = base_ids.to_vec();
    let mut next_id = 10_000u64;
    let mut ops = Vec::with_capacity(n_ops);
    for k in 0..n_ops {
        let roll: u32 = rng.gen_range(0..100);
        if roll < 45 || live.is_empty() {
            let n: usize = rng.gen_range(1..4);
            let mut tables = corpus(&CorpusSpec {
                seed: seed ^ ((k as u64) << 32),
                n_tables: n,
                series_len: 64,
                near_dup_every: 0,
            });
            for t in &mut tables {
                t.id = next_id;
                t.name = format!("scripted-{next_id}");
                next_id += 1;
                live.push(t.id);
            }
            ops.push(ScriptedOp::Insert(tables));
        } else if roll < 75 {
            let n = rng.gen_range(1..=2usize).min(live.len());
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                let i: usize = rng.gen_range(0..live.len());
                ids.push(live.swap_remove(i));
            }
            ops.push(ScriptedOp::Remove(ids));
        } else if roll < 88 {
            ops.push(ScriptedOp::Compact);
        } else {
            ops.push(ScriptedOp::Reshard(rng.gen_range(1..5usize)));
        }
    }
    ops
}

/// Applies one op to a plain single-process engine — the serial-replay
/// oracle recovery is compared against.
pub fn apply_serial(engine: &mut Engine, op: &ScriptedOp) {
    match op {
        ScriptedOp::Insert(tables) => {
            engine.insert_tables(tables.clone());
        }
        ScriptedOp::Remove(ids) => {
            engine.remove_tables(ids);
        }
        ScriptedOp::Compact => engine.compact(),
        ScriptedOp::Reshard(n) => {
            engine
                .reshard(*n)
                .expect("scripted reshard counts are >= 1");
        }
    }
}

/// Applies one op through the durable (WAL-logged) engine.
pub fn apply_durable(engine: &DurableEngine, op: &ScriptedOp) {
    let outcome = match op {
        ScriptedOp::Insert(tables) => engine.insert_tables(tables.clone()).map(|_| ()),
        ScriptedOp::Remove(ids) => engine.remove_tables(ids).map(|_| ()),
        ScriptedOp::Compact => engine.compact(),
        ScriptedOp::Reshard(n) => engine.reshard(*n),
    };
    outcome.unwrap_or_else(|e| panic!("durable {} failed: {e}", op.label()));
}

// ---- temp dirs + dir snapshots ---------------------------------------------

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A process-unique temp directory, removed (best effort) on drop. No
/// external tempfile crate in this workspace, so the testkit provides its
/// own.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `$TMPDIR/lcdd-<tag>-<pid>-<n>`.
    pub fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "lcdd-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("testkit: temp dir must be creatable");
        TempDir { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A fresh subdirectory path inside this temp dir (not yet created).
    pub fn subdir(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Byte-for-byte copy of a flat store directory — the "crash point"
/// snapshot: everything the dying process had on disk, nothing it held in
/// memory.
pub fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("crash copy: create target dir");
    for entry in std::fs::read_dir(from).expect("crash copy: list source dir") {
        let entry = entry.expect("crash copy: read entry");
        if entry.path().is_file() {
            std::fs::copy(entry.path(), to.join(entry.file_name())).expect("crash copy: copy file");
        }
    }
}

/// Truncates `file` to `len` bytes — simulates a crash that left only a
/// prefix of the final append on disk.
pub fn truncate_file(file: &Path, len: u64) {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(file)
        .expect("truncate: open");
    f.set_len(len).expect("truncate: set_len");
}

// ---- comparison -------------------------------------------------------------

/// [`assert_same_hits`] plus bit-identical score equality (`f32::to_bits`)
/// — the recovery bar: a recovered engine serves the *same floats*, not
/// merely close ones.
pub fn assert_same_hits_bitwise(
    context: &str,
    a: &lcdd_engine::SearchResponse,
    b: &lcdd_engine::SearchResponse,
) {
    assert_same_hits(context, a, b);
    for (rank, (ha, hb)) in a.hits.iter().zip(&b.hits).enumerate() {
        assert_eq!(
            ha.score.to_bits(),
            hb.score.to_bits(),
            "{context}: rank {rank} score not bit-identical: {} vs {}",
            ha.score,
            hb.score
        );
    }
}

/// A query battery covering the base corpus, scripted inserts and a probe
/// with no planted match.
pub fn battery(base: &[Table], script: &[ScriptedOp], n: usize) -> Vec<Query> {
    let mut queries: Vec<Query> = Vec::new();
    for t in base.iter().take(n) {
        queries.push(query_like(t));
    }
    for op in script {
        if let ScriptedOp::Insert(tables) = op {
            if let Some(t) = tables.first() {
                queries.push(query_like(t));
            }
        }
        if queries.len() >= 2 * n {
            break;
        }
    }
    queries.push(Query::from_series(vec![(0..64)
        .map(|j| ((j * j) as f64).sin() * 40.0 - 17.0)
        .collect()]));
    queries
}

/// Asserts a recovered durable engine answers exactly like the serial
/// oracle: same epoch, same live count, and for every battery query under
/// both `Hybrid` and `NoIndex`, hit-for-hit equality with bit-identical
/// scores.
pub fn assert_recovered_equals_serial(
    context: &str,
    recovered: &DurableEngine,
    serial: &Engine,
    queries: &[Query],
) {
    assert_eq!(
        recovered.epoch(),
        serial.epoch(),
        "{context}: epochs diverged"
    );
    assert_eq!(
        recovered.len(),
        serial.len(),
        "{context}: live table counts diverged"
    );
    let k = serial.len().max(1);
    for (qi, q) in queries.iter().enumerate() {
        for strategy in [IndexStrategy::Hybrid, IndexStrategy::NoIndex] {
            let opts = SearchOptions::top_k(k).with_strategy(strategy);
            let got = recovered.search(q, &opts);
            let want = serial.search(q, &opts);
            match (got, want) {
                (Ok(got), Ok(want)) => assert_same_hits_bitwise(
                    &format!("{context}: query {qi} ({strategy:?})"),
                    &got,
                    &want,
                ),
                (Err(g), Err(w)) => assert_eq!(
                    g.to_string(),
                    w.to_string(),
                    "{context}: query {qi} errors diverged"
                ),
                (got, want) => {
                    panic!("{context}: query {qi} diverged: recovered {got:?} vs serial {want:?}")
                }
            }
        }
    }
}

// ---- the full boundary sweep ------------------------------------------------

/// Shape of one crash-recovery sweep.
#[derive(Clone, Debug)]
pub struct CrashCase {
    pub seed: u64,
    /// Base corpus size (ids `0..n_base`).
    pub n_base: usize,
    /// Shard count the engine is built with.
    pub n_shards: usize,
    /// Scripted ops applied after the store is created.
    pub n_ops: usize,
    /// Auto-checkpoint cadence in ops (0 = only the initial checkpoint),
    /// so sweeps cover recovery both from WAL-heavy and segment-heavy
    /// stores.
    pub checkpoint_every: u64,
}

/// Runs one full sweep: applies the script through a [`DurableEngine`],
/// snapshotting the store directory after creation and after every op
/// (= every record boundary, including post-checkpoint states), then
/// recovers every snapshot — plus torn-tail variants of the final WAL —
/// and asserts equivalence with the serial oracle prefix.
///
/// Returns the number of crash points exercised.
pub fn run_crash_boundary_case(case: &CrashCase) -> usize {
    let tmp = TempDir::new(&format!("crash-{:x}", case.seed));
    let live_dir = tmp.subdir("live");
    let base = corpus(&CorpusSpec::sized(case.seed, case.n_base));
    let opts = StoreOptions {
        sync_writes: false, // throughput; crash *consistency* is what's under test
        checkpoint_every_ops: case.checkpoint_every,
        checkpoint_every_bytes: 0,
        keep_checkpoints: 2,
        ..StoreOptions::default()
    };
    let durable = DurableEngine::create(
        &live_dir,
        tiny_engine(base.clone(), case.n_shards),
        opts.clone(),
    )
    .expect("crash case: store creation");

    let base_ids: Vec<u64> = base.iter().map(|t| t.id).collect();
    let script = random_script(case.seed, case.n_ops, &base_ids);
    let queries = battery(&base, &script, 3);

    // Crash point i = store dir after ops[0..i]. `effective` records which
    // ops were actually logged (no-op compacts/removals are not), so the
    // torn-tail sweep can map WAL records back to op indices.
    let mut crash_dirs: Vec<PathBuf> = Vec::with_capacity(case.n_ops + 1);
    let mut effective: Vec<usize> = Vec::with_capacity(case.n_ops);
    let snap = |i: usize| tmp.subdir(&format!("crash-{i}"));
    copy_dir(&live_dir, &snap(0));
    crash_dirs.push(snap(0));
    for (i, op) in script.iter().enumerate() {
        let epoch_before = durable.epoch();
        apply_durable(&durable, op);
        if durable.epoch() != epoch_before {
            effective.push(i);
        }
        copy_dir(&live_dir, &snap(i + 1));
        crash_dirs.push(snap(i + 1));
    }

    let mut crash_points = 0usize;
    let mut serial = tiny_engine(base.clone(), case.n_shards);
    for (i, dir) in crash_dirs.iter().enumerate() {
        if i > 0 {
            apply_serial(&mut serial, &script[i - 1]);
        }
        let ctx = format!(
            "seed {:#x}, {} shards, crash after {} of {} ops",
            case.seed,
            case.n_shards,
            i,
            script.len()
        );
        let before = lcdd_fcm::table_encode_count();
        let (recovered, report) =
            DurableEngine::open(dir, opts.clone()).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_eq!(
            lcdd_fcm::table_encode_count(),
            before,
            "{ctx}: recovery must not re-encode any table"
        );
        assert!(report.truncated_tail.is_none(), "{ctx}: clean boundary");
        assert_recovered_equals_serial(&ctx, &recovered, &serial, &queries);
        crash_points += 1;
    }

    // Torn tails: cut the final store's active WAL mid-record. Recovery
    // must land exactly on the surviving record prefix.
    crash_points += run_torn_tail_variants(
        &tmp,
        &crash_dirs,
        &script,
        &effective,
        &base,
        case,
        &queries,
    );
    crash_points
}

/// For the final crash dir, produces mid-record truncations of the active
/// WAL and asserts each recovers to the longest surviving op prefix.
fn run_torn_tail_variants(
    tmp: &TempDir,
    crash_dirs: &[PathBuf],
    script: &[ScriptedOp],
    effective: &[usize],
    base: &[Table],
    case: &CrashCase,
    queries: &[Query],
) -> usize {
    let final_dir = crash_dirs.last().expect("at least the creation snapshot");
    let (_, manifest) = lcdd_store::latest_manifest(final_dir)
        .expect("final dir must hold a store")
        .expect("final dir must hold a manifest");
    let wal_path = final_dir.join(&manifest.wal_file);
    let scan =
        lcdd_store::wal::scan(&wal_path, manifest.wal_offset).expect("final WAL must scan clean");
    if scan.records.is_empty() {
        return 0;
    }
    // The active WAL holds the tail of *logged* ops; record j corresponds
    // to scripted op `effective[tail_start + j]`. Cutting inside record j
    // keeps every op strictly before it.
    let tail_start = effective.len() - scan.records.len();
    let mut boundaries = vec![manifest.wal_offset];
    boundaries.extend(scan.records.iter().map(|&(end, _)| end));

    let mut points = 0usize;
    for j in 0..scan.records.len() {
        let start = boundaries[j];
        let end = boundaries[j + 1];
        let survives = effective[tail_start + j];
        // A torn write can leave any strict prefix of the record's frame.
        for cut in [start + 1, start + (end - start) / 2, end - 1] {
            if cut <= start || cut >= end {
                continue;
            }
            let dir = tmp.subdir(&format!("torn-{j}-{cut}"));
            copy_dir(final_dir, &dir);
            truncate_file(&dir.join(&manifest.wal_file), cut);
            let ctx = format!(
                "seed {:#x}, torn record {j} cut at byte {cut} (ops 0..{survives} survive)",
                case.seed,
            );
            let (recovered, report) = DurableEngine::open(
                &dir,
                StoreOptions {
                    sync_writes: false,
                    ..StoreOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert!(
                report.truncated_tail.is_some(),
                "{ctx}: the torn tail must be reported"
            );
            let mut serial = tiny_engine(base.to_vec(), case.n_shards);
            for op in &script[..survives] {
                apply_serial(&mut serial, op);
            }
            assert_recovered_equals_serial(&ctx, &recovered, &serial, queries);
            points += 1;
        }
    }
    points
}
