//! # lcdd-testkit
//!
//! Deterministic test support shared by every suite in the workspace,
//! replacing the ad-hoc `tiny_tables()` copies that used to live in each
//! test file:
//!
//! * [`corpus`] / [`corpus_with_dups`] — a seeded corpus generator mixing
//!   sine-like, trend and ECG-like tables with *planted near-duplicates*
//!   at known positions (what shape-based retrieval is supposed to find),
//! * [`tiny_corpus`] / [`tiny_query`] — the classic closed-form sine
//!   corpus the engine unit tests probe (query `i` matches table `i` by
//!   construction),
//! * [`tiny_engine`] — an untrained `FcmConfig::tiny` engine over any
//!   corpus, at any shard count,
//! * [`assert_same_hits`] — the response comparator the equivalence
//!   suites use: hit-for-hit identity (index, table id, name, order),
//!   scores within `1e-6`, and identical per-stage provenance,
//! * [`concurrent`] — the reader/writer harness for the concurrent
//!   serving engine: N query loops racing a scripted writer, with every
//!   response checked for single-epoch internal consistency and the final
//!   state checked hit-for-hit against a serial replay,
//! * [`crash`] — the crash-injection harness for the durable store:
//!   scripted op sequences, store-directory snapshots as simulated crash
//!   points, torn-write WAL variants, and the recovered-vs-serial-replay
//!   comparator (bit-identical scores),
//! * [`load`] — a pure-`std` keep-alive HTTP client plus a deterministic
//!   mixed read/ingest load driver for the network gateway (testkit does
//!   not depend on `lcdd-server`, so suites exercise the real wire),
//! * [`repl`] — the partition/lag harness for WAL-shipping replication:
//!   scripted fault schedules on the transport, leader-crash /
//!   torn-tail / failover stories, and the follower-equals-leader
//!   bitwise comparator at every shared epoch,
//! * [`scale`] — the streaming synthetic scale-corpus generator: slots
//!   fabricated directly in encoding space as a pure function of
//!   `(seed, index)`, so `lcdd_store::create_bulk` can write
//!   million-table stores one slot at a time — the substrate for the
//!   tiered-corpus suites and the scale benchmark.
//!
//! Everything is a pure function of its seed: two processes building the
//! same spec get byte-identical corpora, so failures reproduce across
//! runs and machines.

pub mod concurrent;
pub mod crash;
pub mod load;
pub mod repl;
pub mod scale;

use lcdd_engine::{Engine, EngineBuilder, Query, SearchResponse};
use lcdd_fcm::{FcmConfig, FcmModel};
use lcdd_table::generators::{generate, SeriesFamily};
use lcdd_table::{Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated corpus. `Default` is the size the engine suites
/// use: 8 tables of ~90 points with a near-duplicate planted every third
/// table.
#[derive(Clone, Debug)]
pub struct CorpusSpec {
    /// Master seed; every table derives its own RNG stream from it.
    pub seed: u64,
    /// Number of tables.
    pub n_tables: usize,
    /// Points per series.
    pub series_len: usize,
    /// Every `near_dup_every`-th table (when > 0) is a noisy copy of an
    /// earlier one instead of a fresh shape.
    pub near_dup_every: usize,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            seed: 0x5eed,
            n_tables: 8,
            series_len: 90,
            near_dup_every: 3,
        }
    }
}

impl CorpusSpec {
    /// A spec with the given seed and table count (other fields default).
    pub fn sized(seed: u64, n_tables: usize) -> Self {
        CorpusSpec {
            seed,
            n_tables,
            ..Default::default()
        }
    }
}

/// The shape families the generator cycles through — sine-like, trending
/// and quasi-periodic biosignal, the three regimes the paper's corpus
/// statistics stratify by.
const FAMILIES: [SeriesFamily; 3] = [
    SeriesFamily::HarmonicMix,
    SeriesFamily::TrendSeason,
    SeriesFamily::EcgLike,
];

/// Generates a deterministic corpus and the planted near-duplicate pairs
/// `(original, duplicate)` (both corpus indices, `original < duplicate`).
///
/// Table `i` is either a fresh series of family `FAMILIES[i % 3]` (moved
/// into a per-table value range so the interval tree has something to
/// discriminate on), or — every `near_dup_every`-th table — a copy of the
/// table `near_dup_every` positions back with 1% relative noise. Every
/// fourth table carries a second, unrelated column to exercise the
/// multi-column paths. Ids are the corpus positions; names encode the
/// provenance (`harmonic_mix-4`, `dup5-of-2`).
pub fn corpus_with_dups(spec: &CorpusSpec) -> (Vec<Table>, Vec<(usize, usize)>) {
    let mut tables: Vec<Table> = Vec::with_capacity(spec.n_tables);
    let mut dups = Vec::new();
    for i in 0..spec.n_tables {
        // One independent RNG stream per table: corpus prefixes agree
        // across different n_tables, which keeps shrunken repros stable.
        let mut rng =
            StdRng::seed_from_u64(spec.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let dup_of = (spec.near_dup_every > 0 && i > 0 && i % spec.near_dup_every == 0)
            .then(|| i - spec.near_dup_every.min(i));
        let (name, mut columns) = match dup_of {
            Some(base) => {
                let noisy: Vec<f64> = tables[base].columns[0]
                    .values
                    .iter()
                    .map(|&v| v * (1.0 + 0.01 * (rng.gen_range(0.0..1.0) - 0.5)))
                    .collect();
                dups.push((base, i));
                (format!("dup{i}-of-{base}"), vec![Column::new("c0", noisy)])
            }
            None => {
                let family = FAMILIES[i % FAMILIES.len()];
                let scale = 1.0 + (i % 5) as f64;
                let offset = (i % 7) as f64 * 3.0 - 9.0;
                let vals = generate(&mut rng, family, spec.series_len, scale, offset);
                (
                    format!("{}-{i}", family.name()),
                    vec![Column::new("c0", vals)],
                )
            }
        };
        // Near-duplicates stay pure copies (no extra column) so their
        // scores track the original's; fresh tables get the multi-column
        // treatment.
        if i % 4 == 3 && dup_of.is_none() {
            let extra = generate(
                &mut rng,
                SeriesFamily::Ar1,
                spec.series_len,
                0.5 + (i % 3) as f64,
                20.0,
            );
            columns.push(Column::new("c1", extra));
        }
        tables.push(Table::new(i as u64, name, columns));
    }
    (tables, dups)
}

/// [`corpus_with_dups`] without the pair list.
pub fn corpus(spec: &CorpusSpec) -> Vec<Table> {
    corpus_with_dups(spec).0
}

/// Series queries probing a corpus: one per table in `0..n_queries`
/// (cycling), each the table's first column — so query `q` has a known
/// best answer at `q % corpus.len()` plus that table's planted
/// near-duplicates.
pub fn queries_for(tables: &[Table], n_queries: usize) -> Vec<Query> {
    (0..n_queries)
        .map(|q| query_like(&tables[q % tables.len()]))
        .collect()
}

/// A series-sketch query shaped like `table`'s first column.
pub fn query_like(table: &Table) -> Query {
    Query::from_series(vec![table.columns[0].values.clone()])
}

/// The classic closed-form sine corpus the engine unit tests always used:
/// table `i` is `sin((j + 11 i) / 6) * (i + 1)` over 90 points, named
/// `table-{i}` with id `i`. [`tiny_query`] produces the matching probe.
pub fn tiny_corpus(n_tables: usize) -> Vec<Table> {
    (0..n_tables)
        .map(|i| {
            let vals: Vec<f64> = (0..90)
                .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
                .collect();
            Table::new(i as u64, format!("table-{i}"), vec![Column::new("c", vals)])
        })
        .collect()
}

/// The query matching [`tiny_corpus`] table `i` exactly.
pub fn tiny_query(i: usize) -> Query {
    Query::from_series(vec![(0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()])
}

/// Builds an untrained `FcmConfig::tiny` engine over `tables` with the
/// given shard count. Panics on builder errors (tests want the backtrace).
pub fn tiny_engine(tables: Vec<Table>, n_shards: usize) -> Engine {
    EngineBuilder::new(FcmModel::new(FcmConfig::tiny()))
        .shards(n_shards)
        .ingest_tables(tables)
        .build()
        .expect("testkit: tiny engine must build")
}

/// Score tolerance for cross-layout comparisons. Scores of the *same*
/// table through the *same* cached encodings are bit-identical across
/// shard layouts; the tolerance only absorbs printing/rounding in future
/// scoring backends.
pub const SCORE_TOL: f32 = 1e-6;

/// Asserts two responses carry the same ranked hits — identical order,
/// `index`, `table_id` and `table_name`, scores within [`SCORE_TOL`] —
/// and identical per-stage provenance counts. Panics with a labelled diff
/// on mismatch.
pub fn assert_same_hits(context: &str, a: &SearchResponse, b: &SearchResponse) {
    assert_eq!(
        a.hits.len(),
        b.hits.len(),
        "{context}: hit counts differ ({} vs {})\n  a: {:?}\n  b: {:?}",
        a.hits.len(),
        b.hits.len(),
        a.ranked_indices(),
        b.ranked_indices(),
    );
    for (rank, (ha, hb)) in a.hits.iter().zip(&b.hits).enumerate() {
        assert_eq!(
            ha.index, hb.index,
            "{context}: rank {rank} index differs ({} vs {})",
            ha.index, hb.index
        );
        assert_eq!(
            ha.table_id, hb.table_id,
            "{context}: rank {rank} table id differs"
        );
        assert_eq!(
            ha.table_name, hb.table_name,
            "{context}: rank {rank} table name differs"
        );
        assert!(
            (ha.score - hb.score).abs() <= SCORE_TOL,
            "{context}: rank {rank} score differs beyond {SCORE_TOL}: {} vs {}",
            ha.score,
            hb.score
        );
    }
    assert_eq!(
        a.counts, b.counts,
        "{context}: per-stage provenance counts differ"
    );
}

/// Bitwise-strict variant of [`assert_same_hits`]: hit order, ids, names
/// and provenance must match as usual, and score *bits* must be identical
/// — no tolerance. This is the contract the thread-count and shard-layout
/// invariance suites pin: scoring is a pure function of
/// `(query, candidate, center)`, so changing the worker count must not
/// move a single ulp.
pub fn assert_same_hits_bitwise(context: &str, a: &SearchResponse, b: &SearchResponse) {
    assert_same_hits(context, a, b);
    for (rank, (ha, hb)) in a.hits.iter().zip(&b.hits).enumerate() {
        assert_eq!(
            ha.score.to_bits(),
            hb.score.to_bits(),
            "{context}: rank {rank} score bits differ: {} vs {}",
            ha.score,
            hb.score
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdd_engine::SearchOptions;

    #[test]
    fn corpus_is_deterministic_and_plants_dups() {
        let spec = CorpusSpec::default();
        let (a, dups_a) = corpus_with_dups(&spec);
        let (b, dups_b) = corpus_with_dups(&spec);
        assert_eq!(dups_a, dups_b);
        assert_eq!(a.len(), spec.n_tables);
        assert!(!dups_a.is_empty(), "default spec must plant duplicates");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.columns[0].values, y.columns[0].values);
        }
        for &(orig, dup) in &dups_a {
            assert!(orig < dup);
            let o = &a[orig].columns[0].values;
            let d = &a[dup].columns[0].values;
            let rel: f64 = o
                .iter()
                .zip(d)
                .map(|(&x, &y)| (x - y).abs() / x.abs().max(1e-9))
                .fold(0.0, f64::max);
            assert!(rel < 0.02, "near-dup must stay within 2% of the original");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = corpus(&CorpusSpec::sized(1, 6));
        let b = corpus(&CorpusSpec::sized(2, 6));
        assert_ne!(a[0].columns[0].values, b[0].columns[0].values);
    }

    #[test]
    fn near_dup_scores_like_its_original() {
        // The retrieval-relevant sense of "near-duplicate": the planted
        // copy's encodings are nearly identical to the original's, so any
        // query scores the two almost equally (model-independent — holds
        // untrained).
        let (tables, dups) = corpus_with_dups(&CorpusSpec::default());
        let (orig, dup) = dups[0];
        let engine = tiny_engine(tables.clone(), 1);
        let resp = engine
            .search(
                &query_like(&tables[orig]),
                &SearchOptions::top_k(tables.len())
                    .with_strategy(lcdd_engine::IndexStrategy::NoIndex),
            )
            .unwrap();
        let score_of = |want: usize| {
            resp.hits
                .iter()
                .find(|h| h.index == want)
                .map(|h| h.score)
                .expect("NoIndex at k = corpus size scores every table")
        };
        let (so, sd) = (score_of(orig), score_of(dup));
        // 1% value noise moves the per-segment min-max normalisation, so
        // the scores are close but not equal; 0.05 bounds the drift while
        // still distinguishing the dup from unrelated tables.
        assert!(
            (so - sd).abs() < 0.05,
            "dup {dup} must score like its original {orig}: {so} vs {sd}"
        );
    }

    #[test]
    fn assert_same_hits_accepts_identical_responses() {
        let engine = tiny_engine(tiny_corpus(5), 1);
        let q = tiny_query(2);
        let a = engine.search(&q, &SearchOptions::top_k(3)).unwrap();
        let b = engine.search(&q, &SearchOptions::top_k(3)).unwrap();
        assert_same_hits("self", &a, &b);
    }

    #[test]
    #[should_panic(expected = "hit counts differ")]
    fn assert_same_hits_rejects_different_responses() {
        let engine = tiny_engine(tiny_corpus(5), 1);
        let q = tiny_query(2);
        let opts = SearchOptions::top_k(3).with_strategy(lcdd_engine::IndexStrategy::NoIndex);
        let a = engine.search(&q, &opts).unwrap();
        let b = engine
            .search(
                &q,
                &SearchOptions::top_k(1).with_strategy(lcdd_engine::IndexStrategy::NoIndex),
            )
            .unwrap();
        assert_same_hits("different-k", &a, &b);
    }
}
