//! A pure-`std` HTTP/1.1 client and load driver for exercising the
//! gateway — testkit deliberately does not depend on `lcdd-server`, so
//! the integration suites and `bench_server` talk to the server the same
//! way a real client would: bytes over a `TcpStream`.
//!
//! The client speaks exactly the dialect the gateway emits (status line,
//! headers, `Content-Length` body, keep-alive), and the mixed-traffic
//! driver in [`drive_mixed`] is deterministic per worker seed so bench
//! runs are comparable across configurations.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// One parsed HTTP response.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    pub status: u16,
    /// Lowercased header name/value pairs.
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    /// First value of a (lowercase) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Extracts `"field":<number>` from the JSON body — enough for
    /// asserting on the gateway's flat response schemas without a JSON
    /// parser in the testkit.
    pub fn json_u64(&self, field: &str) -> Option<u64> {
        let needle = format!("\"{field}\":");
        let at = self.body.find(&needle)? + needle.len();
        let rest = &self.body[at..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }
}

/// A keep-alive connection to the gateway.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects with a generous read timeout (load tests must never hang
    /// forever on a lost response).
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the response off the same connection.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<HttpResponse> {
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: lcdd\r\n");
        for (k, v) in headers {
            req.push_str(&format!("{k}: {v}\r\n"));
        }
        req.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
        self.writer.write_all(req.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Writes raw bytes (malformed-input tests) and attempts to read
    /// whatever comes back.
    pub fn raw(&mut self, bytes: &[u8]) -> std::io::Result<HttpResponse> {
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split_ascii_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line '{status_line}'"),
                )
            })?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let k = k.trim().to_ascii_lowercase();
                let v = v.trim().to_string();
                if k == "content-length" {
                    content_length = v.parse().unwrap_or(0);
                }
                headers.push((k, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse {
            status,
            headers,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// Body of a `/search` request over the given series (default strategy).
pub fn search_body(series: &[Vec<f64>], k: usize) -> String {
    search_body_with(series, k, None)
}

/// Body of a `/search` request with an explicit strategy. `"none"` scores
/// the full corpus — what hit-identity assertions (and saturating load
/// runs) want on the untrained test model, whose LSH stage may prune
/// every candidate.
pub fn search_body_with(series: &[Vec<f64>], k: usize, strategy: Option<&str>) -> String {
    let ser: Vec<String> = series
        .iter()
        .map(|s| {
            let vals: Vec<String> = s.iter().map(|v| format!("{v}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    match strategy {
        Some(st) => format!(
            "{{\"series\":[{}],\"k\":{k},\"strategy\":\"{st}\"}}",
            ser.join(",")
        ),
        None => format!("{{\"series\":[{}],\"k\":{k}}}", ser.join(",")),
    }
}

/// Body of an `/insert` request for one single-column table.
pub fn insert_body(id: u64, values: &[f64]) -> String {
    let vals: Vec<String> = values.iter().map(|v| format!("{v}")).collect();
    format!(
        "{{\"tables\":[{{\"id\":{id},\"columns\":[{{\"name\":\"c\",\"values\":[{}]}}]}}]}}",
        vals.join(",")
    )
}

/// Body of a `/remove` request.
pub fn remove_body(ids: &[u64]) -> String {
    let idstr: Vec<String> = ids.iter().map(u64::to_string).collect();
    format!("{{\"ids\":[{}]}}", idstr.join(","))
}

/// Shape of one mixed read/ingest load run.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Concurrent connections (one worker thread per connection).
    pub connections: usize,
    /// Requests each connection issues.
    pub requests_per_connection: usize,
    /// Out of 100: how many requests are writes (insert/remove churn);
    /// the rest are searches.
    pub write_percent: u64,
    /// Searches draw from this many distinct hot queries — small pools
    /// create the duplicate in-flight requests coalescing collapses.
    pub hot_queries: usize,
    /// `k` for every search.
    pub k: usize,
    /// Wire strategy for every search (`None` = server default). Load
    /// runs on the untrained test model use `Some("none")` so each query
    /// scores the full corpus.
    pub strategy: Option<&'static str>,
    /// Base seed; worker `w` uses `seed + w`.
    pub seed: u64,
}

/// Aggregate outcome of a load run.
#[derive(Clone, Debug, Default)]
pub struct LoadSummary {
    pub requests: u64,
    pub ok: u64,
    pub rejected: u64,
    pub errors: u64,
    pub elapsed_s: f64,
    /// Per-request latencies in microseconds, pooled across workers,
    /// sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl LoadSummary {
    /// Queries per second over the whole run.
    pub fn qps(&self) -> f64 {
        if self.elapsed_s <= 0.0 {
            0.0
        } else {
            self.requests as f64 / self.elapsed_s
        }
    }

    /// The `q`-quantile latency in microseconds (0 when empty).
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1]
    }
}

/// A deterministic xorshift step — testkit keeps the driver free of
/// `rand` so bench workers stay cheap and reproducible.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

/// The hot-query series a worker draws from: same closed form as
/// [`crate::tiny_query`], so hot query `i` matches tiny-corpus table `i`.
fn hot_series(i: usize) -> Vec<f64> {
    (0..90)
        .map(|j| ((j + i * 11) as f64 / 6.0).sin() * (i + 1) as f64)
        .collect()
}

/// Drives mixed read/write traffic at the gateway from
/// `spec.connections` concurrent keep-alive connections, pooling
/// latencies and outcome counts. Write requests alternate insert/remove
/// of a worker-owned table id range so corpus churn (and the epoch bumps
/// that invalidate the query cache) continues for the whole run.
pub fn drive_mixed(addr: SocketAddr, spec: &LoadSpec) -> LoadSummary {
    let ok = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    let mut all_latencies: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..spec.connections {
            let (ok, rejected, errors) = (&ok, &rejected, &errors);
            handles.push(scope.spawn(move || {
                let mut latencies = Vec::with_capacity(spec.requests_per_connection);
                let Ok(mut client) = HttpClient::connect(addr) else {
                    errors.fetch_add(spec.requests_per_connection as u64, Relaxed);
                    return latencies;
                };
                let mut rng = spec.seed.wrapping_add(w as u64).wrapping_mul(2654435761) | 1;
                // Worker-owned churn ids, far above the seeded corpus.
                let churn_base = 1_000_000 + (w as u64) * 1_000;
                let mut churn_next = 0u64;
                for r in 0..spec.requests_per_connection {
                    let roll = next_rand(&mut rng) % 100;
                    let t0 = Instant::now();
                    let resp = if roll < spec.write_percent {
                        if r % 2 == 0 {
                            let id = churn_base + (churn_next % 500);
                            churn_next += 1;
                            let vals = hot_series((id % 7) as usize);
                            client.request("POST", "/insert", &[], &insert_body(id, &vals))
                        } else {
                            let id = churn_base + (next_rand(&mut rng) % 500);
                            client.request("POST", "/remove", &[], &remove_body(&[id]))
                        }
                    } else {
                        let hot = (next_rand(&mut rng) as usize) % spec.hot_queries.max(1);
                        let body = search_body_with(&[hot_series(hot)], spec.k, spec.strategy);
                        client.request("POST", "/search", &[], &body)
                    };
                    match resp {
                        Ok(resp) => {
                            latencies
                                .push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                            match resp.status {
                                200 => ok.fetch_add(1, Relaxed),
                                503 | 504 => rejected.fetch_add(1, Relaxed),
                                _ => errors.fetch_add(1, Relaxed),
                            };
                        }
                        Err(_) => {
                            errors.fetch_add(1, Relaxed);
                            // The server closes on fatal errors; reconnect.
                            match HttpClient::connect(addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                latencies
            }));
        }
        for h in handles {
            if let Ok(lat) = h.join() {
                all_latencies.push(lat);
            }
        }
    });
    let elapsed_s = started.elapsed().as_secs_f64();
    let mut latencies_us: Vec<u64> = all_latencies.into_iter().flatten().collect();
    latencies_us.sort_unstable();
    LoadSummary {
        requests: (spec.connections * spec.requests_per_connection) as u64,
        ok: ok.load(Relaxed),
        rejected: rejected.load(Relaxed),
        errors: errors.load(Relaxed),
        elapsed_s,
        latencies_us,
    }
}
