//! Partition/lag harness for WAL-shipping replication — the replication
//! counterpart of [`crate::crash`].
//!
//! The harness drives `leader → faulty transport → follower` through a
//! scripted op sequence ([`crate::crash::random_script`]) under a
//! scripted fault schedule, and asserts the replication contract at
//! **every shared epoch** reached:
//!
//! * leader and follower publish the same epoch and live-table count,
//! * every battery query answers **bit-identically** on both sides under
//!   both index strategies ([`crate::crash::assert_same_hits_bitwise`]),
//! * the follower never invokes the encoder
//!   (`lcdd_fcm::table_encode_count` stays flat across a sync),
//! * no injected fault panics — every schedule either converges or
//!   surfaces a typed error the driver heals.
//!
//! Beyond the lag sweep, the harness scripts the three operational
//! stories the robustness suite must pin: a leader crash with frames in
//! flight, a follower restart from a torn WAL tail, and promotion of the
//! newest follower after the leader dies for good.
//!
//! Encode-flatness is asserted against a process-global counter, so every
//! harness entry point serializes on an internal gate — concurrent churn
//! from another test would otherwise show up as phantom re-encodes.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use lcdd_engine::{IndexStrategy, Query, SearchOptions};
use lcdd_fcm::table_encode_count;
use lcdd_repl::{
    elect, promote, sync_to_convergence, Attach, ChannelTransport, FaultAction, FaultSchedule,
    FaultyTransport, Follower, FollowerStats, Leader, ReadConsistency, RetryPolicy, SyncStats,
    Transport,
};
use lcdd_store::{latest_manifest, DurableEngine, StoreOptions};
use lcdd_table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::crash::{
    apply_durable, assert_same_hits_bitwise, battery, random_script, truncate_file, TempDir,
};
use crate::{corpus, tiny_engine, CorpusSpec};

/// All harness runs serialize here: the encoder counter is process-global
/// and the flatness assertion must not see another test's churn.
static ENCODE_GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    ENCODE_GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shape of one partition/lag sweep.
#[derive(Clone, Debug)]
pub struct ReplCase {
    pub seed: u64,
    /// Base corpus size (ids `0..n_base`), shared by leader and follower.
    pub n_base: usize,
    /// Shard count both engines are built with.
    pub n_shards: usize,
    /// Convergence (and assertion) points: the script is cut into this
    /// many batches and the pair must agree bitwise after each.
    pub n_batches: usize,
    /// Ops per batch; `1` asserts at literally every leader epoch.
    pub ops_per_batch: usize,
    /// Checkpoint cadence on both stores (small values force the leader
    /// to rotate WAL files mid-stream).
    pub checkpoint_every: u64,
    /// Checkpoints retained before GC (small values force snapshot
    /// resyncs of lagging followers).
    pub keep_checkpoints: usize,
    /// Transport fault schedule (empty = clean link).
    pub schedule: FaultSchedule,
    /// Driver round budget per batch before the case counts as partitioned.
    pub max_rounds: u64,
}

impl ReplCase {
    /// A clean-link case: enough history retained that record streaming
    /// never degrades to a snapshot.
    pub fn clean(seed: u64) -> ReplCase {
        ReplCase {
            seed,
            n_base: 6,
            n_shards: 2,
            n_batches: 6,
            ops_per_batch: 4,
            checkpoint_every: 5,
            keep_checkpoints: 4,
            schedule: Vec::new(),
            max_rounds: 64,
        }
    }
}

/// What one harness run observed (for suites to assert fault paths were
/// actually exercised, not silently skipped).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplRun {
    /// Driver stats summed over all batches.
    pub rounds: u64,
    pub records_applied: u64,
    pub duplicates: u64,
    pub gaps_resumed: u64,
    pub resyncs: u64,
    pub send_retries: u64,
    /// Follower-side counters at the end of the run.
    pub follower: FollowerStats,
    /// Shared epochs at which bitwise equality was asserted.
    pub epochs_checked: u64,
    /// Scheduled transport faults that fired.
    pub faults_fired: u64,
}

fn accumulate(run: &mut ReplRun, s: SyncStats) {
    run.rounds += s.rounds;
    run.records_applied += s.records_applied;
    run.duplicates += s.duplicates;
    run.gaps_resumed += s.gaps_resumed;
    run.resyncs += s.resyncs;
    run.send_retries += s.send_retries;
}

/// Store options the harness runs both sides with.
pub fn store_opts(checkpoint_every: u64, keep_checkpoints: usize) -> StoreOptions {
    StoreOptions {
        sync_writes: false,
        checkpoint_every_ops: checkpoint_every,
        keep_checkpoints,
        ..StoreOptions::default()
    }
}

/// A deterministic mixed fault schedule: roughly `density_pct` percent of
/// the first `span` send attempts get a fault, weighted toward the
/// absorbable kinds (drop/dup/reorder/delay) with a tail of corruption
/// and send failures.
pub fn random_schedule(seed: u64, span: u64, density_pct: u32) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e57_ab1e_0dd5_f00d);
    let mut schedule = Vec::new();
    for attempt in 1..=span {
        if rng.gen_range(0..100) >= density_pct {
            continue;
        }
        let action = match rng.gen_range(0..100u32) {
            0..=24 => FaultAction::Drop,
            25..=44 => FaultAction::Duplicate,
            45..=59 => FaultAction::ReorderNext,
            60..=74 => FaultAction::Delay {
                rounds: rng.gen_range(1..4),
            },
            75..=84 => FaultAction::FailSend,
            85..=94 => FaultAction::CorruptByte {
                offset: rng.gen_range(0..64),
            },
            _ => FaultAction::Truncate {
                keep: rng.gen_range(5..24),
            },
        };
        schedule.push((attempt, action));
    }
    schedule
}

/// Asserts the pair agrees at the current shared epoch: same epoch, same
/// live count, and bit-identical hits for every query under both index
/// strategies. Follower reads go through the read-your-writes contract at
/// the leader's epoch — which a converged replica must honour.
pub fn assert_converged(
    context: &str,
    leader: &DurableEngine,
    follower: &Follower,
    queries: &[Query],
) {
    assert_eq!(
        leader.epoch(),
        follower.epoch(),
        "{context}: epochs diverged"
    );
    assert_eq!(
        leader.len(),
        follower.store().len(),
        "{context}: live table counts diverged"
    );
    let token = leader.epoch();
    let k = leader.len().max(1);
    for (qi, q) in queries.iter().enumerate() {
        for strategy in [IndexStrategy::Hybrid, IndexStrategy::NoIndex] {
            let opts = SearchOptions::top_k(k).with_strategy(strategy);
            let want = leader.search(q, &opts);
            let got = follower.search(q, &opts, ReadConsistency::AtLeastEpoch(token));
            match (want, got) {
                (Ok(want), Ok(got)) => assert_same_hits_bitwise(
                    &format!("{context}: query {qi} ({strategy:?})"),
                    &want,
                    &got,
                ),
                (Err(w), Err(g)) => assert_eq!(
                    w.to_string(),
                    g.to_string(),
                    "{context}: query {qi} errors diverged"
                ),
                (want, got) => {
                    panic!("{context}: query {qi} diverged: leader {want:?} vs replica {got:?}")
                }
            }
        }
    }
}

struct Rig {
    _tmp: TempDir,
    leader: Leader,
    follower: Follower,
    base: Vec<Table>,
}

fn build_rig(tag: &str, case: &ReplCase) -> Rig {
    let tmp = TempDir::new(tag);
    let base = corpus(&CorpusSpec::sized(case.seed, case.n_base));
    let opts = store_opts(case.checkpoint_every, case.keep_checkpoints);
    let leader_store = DurableEngine::create(
        tmp.subdir("leader"),
        tiny_engine(base.clone(), case.n_shards),
        opts.clone(),
    )
    .expect("harness: leader store must create");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let follower = Follower::create(
        tmp.subdir("follower"),
        tiny_engine(base.clone(), case.n_shards),
        opts,
    )
    .expect("harness: follower must create");
    leader.attach("replica", follower.epoch());
    Rig {
        _tmp: tmp,
        leader,
        follower,
        base,
    }
}

/// Runs one scripted partition/lag case end to end; see the module docs
/// for the invariants asserted. Panics (with a labelled context) on any
/// violation; returns the run's observability counters otherwise.
pub fn run_lag_case(tag: &str, case: &ReplCase) -> ReplRun {
    let _serialized = gate();
    let rig = build_rig(tag, case);
    let base_ids: Vec<u64> = rig.base.iter().map(|t| t.id).collect();
    let script = random_script(case.seed, case.n_batches * case.ops_per_batch, &base_ids);
    let queries = battery(&rig.base, &script, 6);
    let transport = FaultyTransport::new(ChannelTransport::default(), case.schedule.clone());
    let mut run = ReplRun::default();
    for (b, chunk) in script.chunks(case.ops_per_batch.max(1)).enumerate() {
        let ctx = format!("[{tag} seed {:#x}] batch {b}", case.seed);
        for op in chunk {
            apply_durable(rig.leader.store(), op);
        }
        let encodes_before = table_encode_count();
        let stats = sync_to_convergence(
            &rig.leader,
            "replica",
            &transport,
            &rig.follower,
            case.max_rounds,
        )
        .unwrap_or_else(|e| panic!("{ctx}: no convergence: {e}"));
        assert_eq!(
            table_encode_count(),
            encodes_before,
            "{ctx}: the follower re-encoded a shipped batch"
        );
        accumulate(&mut run, stats);
        assert_converged(&ctx, rig.leader.store(), &rig.follower, &queries);
        run.epochs_checked += 1;
    }
    run.follower = rig.follower.stats();
    run.faults_fired = transport.faults_fired();
    run
}

/// Leader crash with frames in flight: the leader pumps a batch into the
/// link and dies before the follower drains it; half the in-flight frames
/// are delivered, the rest die with the connection. The recovered leader
/// (ordinary PR 5 crash recovery of its own store) re-attaches at the
/// follower's epoch and must stream the remainder — bit-identical at the
/// end, nothing acknowledged lost.
pub fn run_leader_crash_mid_stream(tag: &str, seed: u64) {
    let _serialized = gate();
    let tmp = TempDir::new(tag);
    let base = corpus(&CorpusSpec::sized(seed, 6));
    let opts = store_opts(4, 4);
    let leader_dir = tmp.subdir("leader");
    let leader_store =
        DurableEngine::create(&leader_dir, tiny_engine(base.clone(), 2), opts.clone())
            .expect("leader store");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let follower = Follower::create(
        tmp.subdir("follower"),
        tiny_engine(base.clone(), 2),
        opts.clone(),
    )
    .expect("follower");
    leader.attach("replica", follower.epoch());
    let base_ids: Vec<u64> = base.iter().map(|t| t.id).collect();
    let script = random_script(seed, 18, &base_ids);
    let queries = battery(&base, &script, 6);

    // Phase 1: a fully synced prefix.
    let transport = ChannelTransport::default();
    for op in &script[..6] {
        apply_durable(leader.store(), op);
    }
    sync_to_convergence(&leader, "replica", &transport, &follower, 64).expect("phase 1 sync");
    assert_converged(
        &format!("[{tag} {seed:#x}] phase 1"),
        leader.store(),
        &follower,
        &queries,
    );

    // Phase 2: pump a batch into the link, then crash the leader with the
    // frames still in flight. Half get delivered; the connection (and the
    // undelivered half) dies with the process.
    for op in &script[6..12] {
        apply_durable(leader.store(), op);
    }
    leader
        .pump("replica", &transport)
        .expect("pump before crash");
    drop(leader);
    let in_flight = transport.pending();
    for _ in 0..in_flight / 2 {
        if let Some(bytes) = transport.recv().expect("drain") {
            follower
                .apply_frame(&bytes)
                .expect("in-order clean frames apply");
        }
    }
    drop(transport);

    // Phase 3: recover the leader from its own durable state. Everything
    // it shipped was logged first, so recovery covers the follower.
    let (store, report) = DurableEngine::open(&leader_dir, opts).expect("leader crash recovery");
    assert!(
        report.recovered_epoch >= follower.epoch(),
        "recovered leader (epoch {}) must cover everything the follower applied ({})",
        report.recovered_epoch,
        follower.epoch()
    );
    let leader = Leader::new(Arc::new(store), RetryPolicy::immediate());
    leader.attach("replica", follower.epoch());
    let transport = ChannelTransport::default();
    for op in &script[12..] {
        apply_durable(leader.store(), op);
    }
    sync_to_convergence(&leader, "replica", &transport, &follower, 64).expect("post-recovery sync");
    assert_converged(
        &format!("[{tag} {seed:#x}] after leader crash"),
        leader.store(),
        &follower,
        &queries,
    );
}

/// Follower restart from a torn WAL tail: the replica is killed, its live
/// generation's WAL loses its last bytes (a torn write), and reopening
/// must truncate the torn record — recovering to an earlier epoch — then
/// resume streaming from there to full bitwise equality.
pub fn run_follower_torn_tail_restart(tag: &str, seed: u64) {
    let _serialized = gate();
    let tmp = TempDir::new(tag);
    let base = corpus(&CorpusSpec::sized(seed, 6));
    // Huge cadence: the follower's records stay in its WAL tail, so the
    // torn write has something to bite.
    let opts = store_opts(10_000, 2);
    let leader_store = DurableEngine::create(
        tmp.subdir("leader"),
        tiny_engine(base.clone(), 2),
        opts.clone(),
    )
    .expect("leader store");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let follower_root = tmp.subdir("follower");
    let follower = Follower::create(&follower_root, tiny_engine(base.clone(), 2), opts.clone())
        .expect("follower");
    leader.attach("replica", follower.epoch());
    let base_ids: Vec<u64> = base.iter().map(|t| t.id).collect();
    let script = random_script(seed, 12, &base_ids);
    let queries = battery(&base, &script, 6);

    let transport = ChannelTransport::default();
    for op in &script[..8] {
        apply_durable(leader.store(), op);
    }
    sync_to_convergence(&leader, "replica", &transport, &follower, 64).expect("pre-crash sync");
    let epoch_before = follower.epoch();

    // Kill the replica and tear the tail of its live generation's WAL.
    let live_dir = follower.store_dir();
    drop(follower);
    let (_, manifest) = latest_manifest(&live_dir)
        .expect("replica manifest readable")
        .expect("replica has a manifest");
    let wal_path = live_dir.join(&manifest.wal_file);
    let wal_len = std::fs::metadata(&wal_path).expect("wal metadata").len();
    assert!(
        wal_len > manifest.wal_offset,
        "[{tag} {seed:#x}] the replica's WAL tail must hold records for a torn write to bite"
    );
    truncate_file(&wal_path, wal_len - 3);

    // Restart: recovery truncates the torn record and loses exactly the
    // tail op; streaming resumes from the recovered epoch.
    let (follower, report) =
        Follower::open(&follower_root, opts).expect("reopen replica after torn tail");
    assert!(
        report.truncated_tail.is_some(),
        "[{tag} {seed:#x}] recovery must report the torn tail"
    );
    assert!(
        follower.epoch() < epoch_before,
        "[{tag} {seed:#x}] the torn record must cost exactly the unsynced tail \
         (epoch {} vs {epoch_before})",
        follower.epoch()
    );
    assert_eq!(
        leader.attach("replica", follower.epoch()),
        Attach::Resumed,
        "[{tag} {seed:#x}] the leader's WAL chain still covers the recovered epoch"
    );
    for op in &script[8..] {
        apply_durable(leader.store(), op);
    }
    sync_to_convergence(&leader, "replica", &transport, &follower, 64).expect("post-restart sync");
    assert_converged(
        &format!("[{tag} {seed:#x}] after torn-tail restart"),
        leader.store(),
        &follower,
        &queries,
    );
}

/// Full failover story: two replicas at different lags (one behind a
/// lossy link), the leader dies, election picks the replica with the
/// newest recoverable state, promotion reopens it as the new leader, and
/// churn continues — the surviving replica converges bitwise against the
/// promoted store across its still-lossy link.
pub fn run_promote_follower_then_continue_churn(tag: &str, seed: u64) {
    let _serialized = gate();
    let tmp = TempDir::new(tag);
    let base = corpus(&CorpusSpec::sized(seed, 6));
    let opts = store_opts(6, 4);
    let leader_store = DurableEngine::create(
        tmp.subdir("leader"),
        tiny_engine(base.clone(), 2),
        opts.clone(),
    )
    .expect("leader store");
    let leader = Leader::new(Arc::new(leader_store), RetryPolicy::immediate());
    let fast = Follower::create(
        tmp.subdir("fast"),
        tiny_engine(base.clone(), 2),
        opts.clone(),
    )
    .expect("fast follower");
    let slow = Follower::create(
        tmp.subdir("slow"),
        tiny_engine(base.clone(), 2),
        opts.clone(),
    )
    .expect("slow follower");
    leader.attach("fast", fast.epoch());
    leader.attach("slow", slow.epoch());
    let t_fast = ChannelTransport::default();
    let t_slow = FaultyTransport::new(ChannelTransport::default(), random_schedule(seed, 60, 25));
    let base_ids: Vec<u64> = base.iter().map(|t| t.id).collect();
    let script = random_script(seed, 18, &base_ids);
    let queries = battery(&base, &script, 6);

    // Both replicas converge on the prefix (the slow one through its
    // lossy link), then only `fast` sees the second batch.
    for op in &script[..6] {
        apply_durable(leader.store(), op);
    }
    sync_to_convergence(&leader, "fast", &t_fast, &fast, 64).expect("fast prefix sync");
    sync_to_convergence(&leader, "slow", &t_slow, &slow, 256).expect("slow prefix sync");
    for op in &script[6..12] {
        apply_durable(leader.store(), op);
    }
    sync_to_convergence(&leader, "fast", &t_fast, &fast, 64).expect("fast mid sync");
    assert!(
        fast.epoch() > slow.epoch(),
        "[{tag} {seed:#x}] the scripted prefix must leave the slow replica behind"
    );

    // The leader dies for good; elect among the surviving replicas.
    drop(leader);
    let fast_dir = fast.store_dir();
    let slow_dir = slow.store_dir();
    let ranking = elect(&[fast_dir.clone(), slow_dir]).expect("electable field");
    assert_eq!(
        ranking[0].dir, fast_dir,
        "[{tag} {seed:#x}] election must pick the replica with the newest recoverable epoch"
    );
    drop(fast);
    let (promoted, _) = promote(&ranking[0], opts).expect("promotion opens cleanly");
    let new_leader = Leader::new(Arc::new(promoted), RetryPolicy::immediate());
    new_leader.attach("slow", slow.epoch());

    // Churn continues on the promoted leader; the surviving replica
    // catches up on everything it missed across the same lossy link.
    for op in &script[12..] {
        apply_durable(new_leader.store(), op);
    }
    sync_to_convergence(&new_leader, "slow", &t_slow, &slow, 256).expect("post-promotion sync");
    assert_converged(
        &format!("[{tag} {seed:#x}] after failover churn"),
        new_leader.store(),
        &slow,
        &queries,
    );
}
