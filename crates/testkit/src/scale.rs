//! Streaming synthetic scale corpus: pre-encoded slots as a pure function
//! of `(seed, index)`, for fabricating 10⁴–10⁶-table stores through
//! [`lcdd_store::create_bulk`] without ever holding the corpus in memory.
//!
//! The seeded [`corpus`](crate::corpus) generator produces *raw* tables
//! and pays full FCM encoding per table — right for correctness suites,
//! hopeless at a million tables. This module skips the encoder: each slot
//! is fabricated directly in encoding space ([`lcdd_engine::EncodedSlot`])
//! with the structure the tiered search path cares about:
//!
//! * every table's pooled direction sits in a small **cone** around one
//!   corpus-wide base direction, with low within-table variance. The
//!   untrained matcher head sees (nearly) the common base through its
//!   LayerNorms, so its logit is almost constant across candidates,
//!   while corpus-mean centering — in the exact scorer and in the int8
//!   proxy alike — cancels the base and ranks on the per-table
//!   perturbation. That is the regime where the pooled-cosine proxy
//!   tracks the attention score and re-rank recall is a meaningful
//!   measurement rather than noise;
//! * column value ranges straddle the query ranges (with per-table
//!   jitter), so the range filter keeps most columns and candidate sets
//!   stay non-trivial for every `IndexStrategy`;
//! * tiny per-column segment matrices keep the `LCDDSEG2` blob exercising
//!   both matrix families without bloating million-table images.
//!
//! Slot `i` is independent of every other slot (one splitmix64 stream per
//! index), so generation order, shard assignment and corpus size never
//! change a table's bytes — the same `(seed, i)` reproduces bit-identical
//! slots across runs, machines and shard layouts.

use lcdd_engine::{EncodedSlot, Query};
use lcdd_fcm::input::ProcessedTable;
use lcdd_tensor::Matrix;

/// Shape of a synthetic scale corpus. Everything is derived from `seed`;
/// `n_tables` only bounds iteration, it never shifts the stream of any
/// individual slot.
#[derive(Clone, Debug)]
pub struct ScaleSpec {
    /// Master seed; slot `i` uses the stream `splitmix64(seed ⊕ h(i))`.
    pub seed: u64,
    /// Number of tables the corpus nominally holds.
    pub n_tables: u64,
    /// Embedding width — must equal the serving model's `embed_dim`.
    pub embed_dim: usize,
    /// Columns per table cycle through `1..=max_cols`.
    pub max_cols: usize,
    /// Encoding rows per column (the paper's N2 segment count).
    pub rows_per_col: usize,
}

impl ScaleSpec {
    /// A spec matched to `FcmConfig::tiny()` (`embed_dim = 16`) — the
    /// configuration every scale suite and the scale benchmark serve
    /// under.
    pub fn tiny(seed: u64, n_tables: u64) -> ScaleSpec {
        ScaleSpec {
            seed,
            n_tables,
            embed_dim: 16,
            max_cols: 3,
            rows_per_col: 4,
        }
    }
}

/// splitmix64 step — the one-instruction-per-state PRNG the generator
/// uses so fabricating a million slots costs RNG time measured in
/// milliseconds, not the `StdRng` (ChaCha) setup per table.
fn next_u64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits (exactly representable,
/// so the stream is bit-stable across platforms).
fn unit_f32(s: &mut u64) -> f32 {
    (next_u64(s) >> 40) as f32 / (1u64 << 24) as f32
}

/// Uniform `f32` in `[-1, 1)`.
fn sym_f32(s: &mut u64) -> f32 {
    unit_f32(s) * 2.0 - 1.0
}

/// Half-angle of the direction cone: per-table perturbation magnitude
/// relative to the unit base direction. Large enough that the int8
/// quantizer resolves the perturbation (≫ 1/127), small enough that the
/// head logit's residual variation stays well under the centered-cosine
/// spread.
const CONE: f32 = 0.1;

/// The corpus-wide base direction every table's pooled mean orbits.
/// Derived from the seed alone — identical for all slots of a spec.
fn base_dir(spec: &ScaleSpec) -> Vec<f32> {
    let mut s = spec.seed ^ 0xC0FF_EE00_0BA5_ED17;
    let _ = next_u64(&mut s);
    let mut dir: Vec<f32> = (0..spec.embed_dim).map(|_| sym_f32(&mut s)).collect();
    normalize(&mut dir);
    dir
}

/// In-place L2 normalisation with a degenerate-input guard.
fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else {
        v[0] = 1.0;
    }
}

/// Fabricates slot `i` of the corpus: encodings clustered around a
/// per-table direction, generous column ranges, and matching index
/// intervals. Pure in `(spec.seed, spec.embed_dim, spec.max_cols,
/// spec.rows_per_col, i)`.
pub fn slot(spec: &ScaleSpec, i: u64) -> EncodedSlot {
    let mut s = spec.seed ^ i.wrapping_mul(0xA24B_AED4_963E_E407);
    // Burn one step so adjacent indices decorrelate even with tiny seeds.
    let _ = next_u64(&mut s);
    let k = spec.embed_dim;
    let n_cols = 1 + (next_u64(&mut s) % spec.max_cols.max(1) as u64) as usize;

    // Per-table pooled direction: shared base + small-cone perturbation,
    // at constant amplitude. Unequal norms or fully random directions
    // would let the untrained head's logit spread swamp the centered
    // cosine term and decouple proxy rank from exact rank (see module
    // docs).
    let base = base_dir(spec);
    let mut dir: Vec<f32> = (0..k).map(|_| sym_f32(&mut s)).collect();
    for (d, &b) in dir.iter_mut().zip(&base) {
        *d = b + CONE * *d;
    }
    normalize(&mut dir);

    let mut column_segments = Vec::with_capacity(n_cols);
    let mut column_ranges = Vec::with_capacity(n_cols);
    let mut encodings = Vec::with_capacity(n_cols);
    let mut intervals = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        // Encoding rows: the table direction plus small isotropic jitter
        // — low within-table variance, distinct across tables.
        let mut rows = Vec::with_capacity(spec.rows_per_col * k);
        for _ in 0..spec.rows_per_col {
            for &d in &dir {
                rows.push(d + 0.02 * sym_f32(&mut s));
            }
        }
        encodings.push(Matrix::from_vec(spec.rows_per_col, k, rows));
        // Value range straddling the query band [-1.5, 1.5] with jitter,
        // so the range filter keeps columns without being a no-op.
        let lo = -1.2 - f64::from(unit_f32(&mut s));
        let hi = 1.2 + f64::from(unit_f32(&mut s));
        column_ranges.push((lo, hi));
        intervals.push((lo, hi));
        // A small real segment matrix so segment images carry both matrix
        // families (blob layout: segments first, then encodings).
        let seg: Vec<f32> = (0..8).map(|_| sym_f32(&mut s)).collect();
        column_segments.push(Matrix::from_vec(2, 4, seg));
    }

    EncodedSlot {
        id: i,
        name: format!("scale-{i}"),
        table: ProcessedTable {
            table_id: i,
            column_segments,
            column_ranges,
        },
        encodings,
        intervals,
    }
}

/// A generator closure for [`lcdd_store::create_bulk`] over `spec`.
pub fn generator(spec: &ScaleSpec) -> impl FnMut(u64) -> EncodedSlot + '_ {
    move |i| slot(spec, i)
}

/// Deterministic probe query `q` for a scale corpus: a 64-point two-tone
/// series inside the corpus value band, fed through the ordinary query
/// encoder at search time. Queries are seeded off `spec.seed` with a
/// distinct stream tag, so query `q` never aliases slot `q`.
pub fn query(spec: &ScaleSpec, q: u64) -> Query {
    let mut s = spec.seed ^ 0x5CA1_AB1E ^ q.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = next_u64(&mut s);
    let a = 0.4 + 0.8 * f64::from(unit_f32(&mut s));
    let b = 0.2 + 0.5 * f64::from(unit_f32(&mut s));
    let p1 = 4.0 + 9.0 * f64::from(unit_f32(&mut s));
    let p2 = 2.0 + 5.0 * f64::from(unit_f32(&mut s));
    let phase = std::f64::consts::TAU * f64::from(unit_f32(&mut s));
    let vals: Vec<f64> = (0..64)
        .map(|j| {
            let t = j as f64;
            a * (t / p1 + phase).sin() + b * (t / p2).cos()
        })
        .collect();
    Query::from_series(vec![vals])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_deterministic_and_independent_of_corpus_size() {
        let small = ScaleSpec::tiny(7, 10);
        let large = ScaleSpec::tiny(7, 10_000);
        for i in [0u64, 3, 9] {
            let a = slot(&small, i);
            let b = slot(&large, i);
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.intervals, b.intervals);
            assert_eq!(a.table.column_ranges, b.table.column_ranges);
            assert_eq!(a.encodings.len(), b.encodings.len());
            for (ma, mb) in a.encodings.iter().zip(&b.encodings) {
                assert_eq!(ma.as_slice(), mb.as_slice());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = slot(&ScaleSpec::tiny(1, 4), 0);
        let b = slot(&ScaleSpec::tiny(2, 4), 0);
        assert_ne!(a.encodings[0].as_slice(), b.encodings[0].as_slice());
    }

    #[test]
    fn slot_shapes_match_spec() {
        let spec = ScaleSpec::tiny(42, 100);
        for i in 0..20 {
            let sl = slot(&spec, i);
            let n_cols = sl.encodings.len();
            assert!((1..=spec.max_cols).contains(&n_cols));
            assert_eq!(sl.table.column_segments.len(), n_cols);
            assert_eq!(sl.table.column_ranges.len(), n_cols);
            assert_eq!(sl.intervals.len(), n_cols);
            for m in &sl.encodings {
                assert_eq!(m.shape(), (spec.rows_per_col, spec.embed_dim));
            }
            for &(lo, hi) in &sl.table.column_ranges {
                assert!(lo < -1.0 && hi > 1.0, "ranges must straddle queries");
            }
        }
    }

    #[test]
    fn queries_are_deterministic_and_distinct() {
        let spec = ScaleSpec::tiny(9, 4);
        let (a, b, c) = (query(&spec, 0), query(&spec, 0), query(&spec, 1));
        let series = |q: &Query| match q {
            Query::Series(u) => u.series[0].ys.clone(),
            _ => panic!("scale queries are series"),
        };
        assert_eq!(series(&a), series(&b));
        assert_ne!(series(&a), series(&c));
    }
}
