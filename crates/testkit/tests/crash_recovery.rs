//! The recovery-equivalence property: for random scripted op sequences,
//! crashing at **every record boundary** (clean boundaries, post-
//! checkpoint states, torn final records) and recovering from
//! {latest checkpoint + WAL tail} yields search results hit-for-hit
//! identical — with bit-identical scores — to a serial replay of the
//! surviving op prefix, for shard counts 1, 2 and 4. Recovery replays
//! cached encodings only: the FCM encoder runs zero times (asserted
//! inside the harness via `lcdd_fcm::table_encode_count`).

use lcdd_testkit::crash::{run_crash_boundary_case, CrashCase};
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 2 } else { 6 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn crash_recovery_equals_serial_replay(
        seed in 0u64..1_000_000,
        n_base in 3usize..7,
        n_ops in 4usize..8,
        checkpoint_every in 0u64..4,
    ) {
        for n_shards in [1usize, 2, 4] {
            let case = CrashCase {
                seed,
                n_base,
                n_shards,
                n_ops,
                checkpoint_every,
            };
            let points = run_crash_boundary_case(&case);
            // Every op boundary plus the pre-op state must have been
            // exercised (torn variants come on top).
            prop_assert!(points > n_ops, "only {points} crash points for {n_ops} ops");
        }
    }
}

/// One deterministic end-to-end pass (fast to run in isolation when
/// debugging a harness or store change).
#[test]
fn crash_recovery_smoke() {
    let points = run_crash_boundary_case(&CrashCase {
        seed: 0xc0ffee,
        n_base: 5,
        n_shards: 2,
        n_ops: 6,
        checkpoint_every: 2,
    });
    assert!(points > 6);
}
