//! The replication partition/lag property suite (PR 6's acceptance
//! gate, run in release mode in CI): scripted op sequences × scripted
//! fault schedules, asserting after every batch that the follower is
//! **bit-identical** to the leader at the shared epoch, that it never
//! re-encodes a shipped batch, and that no injected fault panics —
//! every schedule either converges or heals through typed errors.
//!
//! Case counts shrink under `debug_assertions` so `cargo test` stays
//! quick; the release-mode CI step runs the full sweep.

use lcdd_repl::FaultAction;
use lcdd_testkit::repl::{
    random_schedule, run_follower_torn_tail_restart, run_lag_case, run_leader_crash_mid_stream,
    run_promote_follower_then_continue_churn, ReplCase,
};

fn seeds(base: u64, release_count: usize) -> Vec<u64> {
    let n = if cfg!(debug_assertions) {
        release_count.div_ceil(2).max(1)
    } else {
        release_count
    };
    (0..n as u64)
        .map(|i| base ^ (i.wrapping_mul(0x9E37_79B9)))
        .collect()
}

#[test]
fn clean_link_is_bitwise_identical_at_every_epoch() {
    for seed in seeds(0xC1EA, 4) {
        // ops_per_batch = 1: assert at literally every leader epoch.
        let case = ReplCase {
            ops_per_batch: 1,
            n_batches: 10,
            ..ReplCase::clean(seed)
        };
        let run = run_lag_case("lag-clean", &case);
        assert_eq!(run.faults_fired, 0);
        assert_eq!(run.follower.resyncs, 0, "clean link must never resync");
        assert_eq!(run.follower.quarantines, 0);
        assert_eq!(run.epochs_checked, 10);
    }
}

#[test]
fn checkpoint_rotation_under_streaming_stays_on_the_record_path() {
    for seed in seeds(0x0707, 3) {
        // Cadence 2 with generous retention: the leader rotates its WAL
        // mid-stream but history always covers the follower's cursor.
        let case = ReplCase {
            checkpoint_every: 2,
            keep_checkpoints: 16,
            ..ReplCase::clean(seed)
        };
        let run = run_lag_case("lag-rotate", &case);
        assert_eq!(
            run.follower.resyncs, 0,
            "retained history must keep the follower on the record path"
        );
    }
}

#[test]
fn aggressive_gc_heals_lagging_followers_by_resync() {
    for seed in seeds(0x6C6C, 3) {
        // Checkpoint every op, keep almost nothing, sync only every 6
        // ops: the WAL chain is collected out from under the cursor.
        let case = ReplCase {
            checkpoint_every: 1,
            keep_checkpoints: 1,
            ops_per_batch: 6,
            n_batches: 4,
            ..ReplCase::clean(seed)
        };
        let run = run_lag_case("lag-gc", &case);
        assert!(
            run.follower.resyncs >= 1,
            "collected history must surface as checkpoint resyncs (run: {run:?})"
        );
    }
}

#[test]
fn lossy_links_converge_through_typed_recovery() {
    for seed in seeds(0x1055, 6) {
        let case = ReplCase {
            schedule: random_schedule(seed, 140, 25),
            max_rounds: 256,
            ..ReplCase::clean(seed)
        };
        let run = run_lag_case("lag-lossy", &case);
        assert!(
            run.faults_fired > 0,
            "the schedule must actually have fired (run: {run:?})"
        );
    }
}

#[test]
fn drop_heavy_links_heal_by_resume_from_offset() {
    for seed in seeds(0xD409, 3) {
        // Pure loss, no corruption: healing must be gap-resume (cursor
        // re-attach), never a checkpoint transfer.
        let schedule = (0..12).map(|k| (3 + 4 * k, FaultAction::Drop)).collect();
        let case = ReplCase {
            schedule,
            max_rounds: 256,
            ..ReplCase::clean(seed)
        };
        let run = run_lag_case("lag-drop", &case);
        assert!(run.faults_fired > 0);
        assert!(
            run.gaps_resumed >= 1,
            "dropped records must heal by cursor resume (run: {run:?})"
        );
        assert_eq!(
            run.follower.quarantines, 0,
            "loss is not corruption; nothing should quarantine (run: {run:?})"
        );
    }
}

#[test]
fn corrupting_links_heal_by_quarantine_and_resync() {
    for seed in seeds(0xC047, 3) {
        let schedule = vec![
            (2, FaultAction::CorruptByte { offset: 17 }),
            (9, FaultAction::Truncate { keep: 6 }),
            (15, FaultAction::CorruptByte { offset: 5 }),
        ];
        let case = ReplCase {
            schedule,
            max_rounds: 256,
            ..ReplCase::clean(seed)
        };
        let run = run_lag_case("lag-corrupt", &case);
        assert!(
            run.follower.quarantines >= 1,
            "damaged frames must quarantine (run: {run:?})"
        );
        assert!(
            run.follower.resyncs >= 1,
            "quarantine heals through checkpoint resync (run: {run:?})"
        );
    }
}

#[test]
fn leader_crash_mid_stream_loses_nothing_acknowledged() {
    for seed in seeds(0xCA54, 3) {
        run_leader_crash_mid_stream("leader-crash", seed);
    }
}

#[test]
fn follower_restarts_from_a_torn_tail_and_catches_up() {
    for seed in seeds(0x7047, 3) {
        run_follower_torn_tail_restart("torn-tail", seed);
    }
}

#[test]
fn promoting_the_newest_follower_survives_continued_churn() {
    for seed in seeds(0xFA17, 3) {
        run_promote_follower_then_continue_churn("promote", seed);
    }
}
