//! The tiered-corpus contract: a store opened cold (`LCDDSEG2` segments
//! memory-mapped, payloads paged in on demand) serves **bit-identical**
//! search results to the same store decoded eagerly — same hits, same
//! score bits, same per-stage provenance — for every index strategy
//! (including the IVF ANN tier), every shard layout, and with the
//! quantized-scan + re-rank pipeline on or off.
//!
//! Also pinned here: cold opens are actually lazy (no slot decoded until
//! a query touches it), and the tier survives live WAL mutations plus a
//! crash/reopen cycle (WAL replay onto a cold-opened engine).

use lcdd_engine::{Engine, EngineBuilder, IndexStrategy, SearchOptions, SearchResponse};
use lcdd_fcm::{FcmConfig, FcmModel};
use lcdd_store::{create_bulk, DurableEngine, StoreOptions};
use lcdd_table::{Column, Table};
use lcdd_testkit::assert_same_hits_bitwise;
use lcdd_testkit::crash::TempDir;
use lcdd_testkit::scale::{self, ScaleSpec};
use proptest::prelude::*;
use std::path::Path;

/// Template engine: supplies model weights + index configuration to
/// `create_bulk`; its (empty) corpus is ignored.
fn template() -> Engine {
    EngineBuilder::new(FcmModel::new(FcmConfig::tiny()))
        .build()
        .expect("tiny template engine must build")
}

/// Store options for suites: no fsync (speed), no auto-checkpoint (the
/// tier must survive on WAL + original segments alone), cold per `cold`.
fn opts(cold: bool) -> StoreOptions {
    StoreOptions {
        sync_writes: false,
        checkpoint_every_ops: 0,
        checkpoint_every_bytes: 0,
        cold_open: cold,
        ..Default::default()
    }
}

fn fabricate(dir: &Path, spec: &ScaleSpec, n_shards: usize) {
    create_bulk(
        dir,
        &template(),
        n_shards,
        spec.n_tables,
        scale::generator(spec),
    )
    .expect("bulk store must fabricate");
}

/// Every strategy the engine serves — the four exact-contract ones plus
/// the IVF ANN tier (shard-layout-dependent, but cold-vs-eager at the
/// *same* layout must still agree bitwise).
fn all_strategies() -> Vec<IndexStrategy> {
    let mut v = IndexStrategy::ALL.to_vec();
    v.push(IndexStrategy::Ivf);
    v
}

fn probe(
    engine: &DurableEngine,
    spec: &ScaleSpec,
    n_queries: u64,
    k: usize,
) -> Vec<(String, SearchResponse)> {
    let mut out = Vec::new();
    for strategy in all_strategies() {
        for rerank in [None, Some(8)] {
            let mut o = SearchOptions::top_k(k).with_strategy(strategy);
            if let Some(r) = rerank {
                o = o.with_rerank(r);
            }
            for q in 0..n_queries {
                let resp = engine
                    .search(&scale::query(spec, q), &o)
                    .expect("search must succeed");
                out.push((format!("{strategy:?} rerank={rerank:?} q{q}"), resp));
            }
        }
    }
    out
}

#[test]
fn cold_open_is_lazy_until_queried() {
    let spec = ScaleSpec::tiny(0xC01D, 60);
    let tmp = TempDir::new("tier-lazy");
    fabricate(tmp.path(), &spec, 3);

    let (engine, _) = DurableEngine::open(tmp.path(), opts(true)).expect("cold open");
    let stats = engine.snapshot().tier_stats();
    assert_eq!(
        stats.mapped_tables, 60,
        "every table must live in the cold tier"
    );
    assert_eq!(
        stats.resident_tables, 0,
        "cold open must not admit tables to the hot tier"
    );
    assert_eq!(
        stats.slots_paged_in, 0,
        "opening a mapped corpus must not decode any cold slot"
    );
    assert_eq!(stats.bytes_paged_in, 0);
    assert!(
        stats.mapped_bytes > 0,
        "blob bytes must be accounted to the mapped tier"
    );

    // One exhaustive query pages every candidate's payload in.
    let o = SearchOptions::top_k(5).with_strategy(IndexStrategy::NoIndex);
    engine.search(&scale::query(&spec, 0), &o).expect("search");
    let after = engine.snapshot().tier_stats();
    assert_eq!(
        after.slots_paged_in, 60,
        "NoIndex scores (and so pages in) every slot"
    );
    assert!(after.bytes_paged_in > 0);
    // Residency accounting is unchanged: materialization is transient.
    assert_eq!(after.mapped_tables, 60);
    assert_eq!(after.resident_tables, 0);

    // A quantized scan with re-rank touches only the survivors.
    let o = SearchOptions::top_k(5)
        .with_strategy(IndexStrategy::NoIndex)
        .with_rerank(8);
    let resp = engine.search(&scale::query(&spec, 1), &o).expect("search");
    assert_eq!(resp.counts.quant_scanned, Some(60));
    assert_eq!(resp.counts.reranked, Some(8));
    let reranked = engine.snapshot().tier_stats();
    assert_eq!(
        reranked.slots_paged_in - after.slots_paged_in,
        8,
        "re-rank must page in exactly the surviving candidates"
    );
}

#[test]
fn cold_equals_eager_bitwise_across_layouts() {
    for n_shards in [1usize, 2, 5] {
        let spec = ScaleSpec::tiny(0xBEEF ^ n_shards as u64, 48);
        let tmp = TempDir::new("tier-eq");
        fabricate(tmp.path(), &spec, n_shards);

        let eager = {
            let (engine, _) = DurableEngine::open(tmp.path(), opts(false)).expect("eager open");
            probe(&engine, &spec, 3, 10)
        };
        let (engine, _) = DurableEngine::open(tmp.path(), opts(true)).expect("cold open");
        let cold = probe(&engine, &spec, 3, 10);

        assert_eq!(eager.len(), cold.len());
        for ((ctx, a), (_, b)) in eager.iter().zip(&cold) {
            assert_same_hits_bitwise(&format!("{n_shards} shards, {ctx}"), a, b);
        }
    }
}

/// Raw tables for live-mutation checks; ids start at 10_000 so they never
/// collide with fabricated slot ids.
fn fresh_tables(n: usize) -> Vec<Table> {
    (0..n)
        .map(|i| {
            let vals: Vec<f64> = (0..70)
                .map(|j| ((j + 13 * i) as f64 / 5.0).sin() * (1.0 + i as f64 * 0.3))
                .collect();
            Table::new(
                10_000 + i as u64,
                format!("fresh-{i}"),
                vec![Column::new("c", vals)],
            )
        })
        .collect()
}

#[test]
fn cold_tier_survives_mutations_and_reopen() {
    let spec = ScaleSpec::tiny(0xFADE, 30);
    let tmp = TempDir::new("tier-mut");
    let (cold_dir, eager_dir) = (tmp.subdir("cold"), tmp.subdir("eager"));
    fabricate(&cold_dir, &spec, 2);
    fabricate(&eager_dir, &spec, 2);

    let mutate = |engine: &DurableEngine| {
        engine.insert_tables(fresh_tables(4)).expect("insert");
        engine.remove_tables(&[3, 17]).expect("remove");
    };
    {
        let (cold, _) = DurableEngine::open(&cold_dir, opts(true)).expect("cold open");
        let (eager, _) = DurableEngine::open(&eager_dir, opts(false)).expect("eager open");
        mutate(&cold);
        mutate(&eager);
        for ((ctx, a), (_, b)) in probe(&eager, &spec, 2, 8)
            .iter()
            .zip(&probe(&cold, &spec, 2, 8))
        {
            assert_same_hits_bitwise(&format!("post-mutation, {ctx}"), a, b);
        }
        let stats = cold.snapshot().tier_stats();
        assert_eq!(
            stats.mapped_tables, 30,
            "cold slots stay mapped through mutations"
        );
        assert_eq!(stats.resident_tables, 4, "WAL inserts land in the hot tier");
    }

    // Reopen: WAL replay onto a cold-opened engine must reproduce the
    // eager replay bit-for-bit, and must not decode the checkpoint.
    let (cold, _) = DurableEngine::open(&cold_dir, opts(true)).expect("cold reopen");
    let (eager, _) = DurableEngine::open(&eager_dir, opts(false)).expect("eager reopen");
    let stats = cold.snapshot().tier_stats();
    assert_eq!(
        stats.slots_paged_in, 0,
        "WAL replay must not page in cold slots"
    );
    assert_eq!(stats.mapped_tables, 30);
    assert_eq!(stats.resident_tables, 4);
    for ((ctx, a), (_, b)) in probe(&eager, &spec, 2, 8)
        .iter()
        .zip(&probe(&cold, &spec, 2, 8))
    {
        assert_same_hits_bitwise(&format!("post-reopen, {ctx}"), a, b);
    }
}

/// Property cases are store fabrications + two recoveries each —
/// expensive in debug, fine in release.
const CASES: u32 = if cfg!(debug_assertions) { 3 } else { 10 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn cold_equals_eager_property(
        seed in 0u64..1_000_000,
        n_tables in 8u64..40,
        n_shards in 1usize..5,
        k in 1usize..8,
        rerank_raw in 0usize..12,
    ) {
        // Below 2 means "no re-rank" (the vendored proptest stub has no
        // option strategy); 2..12 is the re-rank depth.
        let rerank = (rerank_raw >= 2).then_some(rerank_raw);
        let spec = ScaleSpec::tiny(seed, n_tables);
        let tmp = TempDir::new("tier-prop");
        fabricate(tmp.path(), &spec, n_shards);
        let mut o = SearchOptions::top_k(k);
        if let Some(r) = rerank {
            o = o.with_rerank(r);
        }
        let eager: Vec<SearchResponse> = {
            let (engine, _) = DurableEngine::open(tmp.path(), opts(false)).unwrap();
            all_strategies().iter().map(|&s| {
                engine.search(&scale::query(&spec, 0), &o.clone().with_strategy(s)).unwrap()
            }).collect()
        };
        let (engine, _) = DurableEngine::open(tmp.path(), opts(true)).unwrap();
        for (s, a) in all_strategies().iter().zip(&eager) {
            let b = engine.search(&scale::query(&spec, 0), &o.clone().with_strategy(*s)).unwrap();
            assert_same_hits_bitwise(
                &format!("seed {seed}, {n_tables} tables, {n_shards} shards, {s:?}, k {k}, rerank {rerank:?}"),
                a,
                &b,
            );
        }
    }
}
