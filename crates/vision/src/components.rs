//! Connected components and colour-based line-instance separation.
//!
//! The coarse pixel classifier says *which pixels are line ink* but not
//! *which line they belong to*. Charting libraries draw each series in a
//! distinct palette colour, so instance separation clusters line pixels by
//! quantised colour and then prunes noise clusters — the role Mask R-CNN's
//! instance head plays in the paper.

use lcdd_chart::RgbImage;

/// A pixel-coordinate cluster representing one line instance.
#[derive(Clone, Debug)]
pub struct LineInstance {
    /// `(x, y)` pixels belonging to this line.
    pub pixels: Vec<(usize, usize)>,
    /// Mean colour (diagnostics).
    pub color: (u8, u8, u8),
}

/// Quantises a colour channel to 32 levels; palette colours stay distinct
/// while anti-aliasing-level noise folds together.
#[inline]
fn quantize(c: u8) -> u8 {
    c >> 3
}

/// Groups the given line-class pixels into instances by quantised colour,
/// dropping clusters smaller than `min_pixels`.
///
/// Instances are ordered left-to-right by their first (leftmost) pixel so
/// ids are stable across runs.
pub fn separate_line_instances(
    img: &RgbImage,
    line_pixels: &[(usize, usize)],
    min_pixels: usize,
) -> Vec<LineInstance> {
    use std::collections::HashMap;
    let mut clusters: HashMap<(u8, u8, u8), Vec<(usize, usize)>> = HashMap::new();
    for &(x, y) in line_pixels {
        let p = img.get(x, y);
        clusters
            .entry((quantize(p.0), quantize(p.1), quantize(p.2)))
            .or_default()
            .push((x, y));
    }
    let mut instances: Vec<LineInstance> = clusters
        .into_values()
        .filter(|pixels| pixels.len() >= min_pixels)
        .map(|pixels| {
            let (mut r, mut g, mut b) = (0u64, 0u64, 0u64);
            for &(x, y) in &pixels {
                let p = img.get(x, y);
                r += p.0 as u64;
                g += p.1 as u64;
                b += p.2 as u64;
            }
            let n = pixels.len() as u64;
            LineInstance {
                color: ((r / n) as u8, (g / n) as u8, (b / n) as u8),
                pixels,
            }
        })
        .collect();
    for inst in &mut instances {
        inst.pixels.sort_unstable();
    }
    instances.sort_by_key(|i| i.pixels.first().copied().unwrap_or((usize::MAX, 0)));
    instances
}

/// 4-connected components over an arbitrary boolean grid; returns one list
/// of `(x, y)` per component. Used for glyph/box grouping in tick decoding.
pub fn connected_components(
    width: usize,
    height: usize,
    is_set: impl Fn(usize, usize) -> bool,
) -> Vec<Vec<(usize, usize)>> {
    let mut visited = vec![false; width * height];
    let mut out = Vec::new();
    for sy in 0..height {
        for sx in 0..width {
            if visited[sy * width + sx] || !is_set(sx, sy) {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![(sx, sy)];
            visited[sy * width + sx] = true;
            while let Some((x, y)) = stack.pop() {
                comp.push((x, y));
                let neighbors = [
                    (x.wrapping_sub(1), y),
                    (x + 1, y),
                    (x, y.wrapping_sub(1)),
                    (x, y + 1),
                ];
                for (nx, ny) in neighbors {
                    if nx < width && ny < height && !visited[ny * width + nx] && is_set(nx, ny) {
                        visited[ny * width + nx] = true;
                        stack.push((nx, ny));
                    }
                }
            }
            out.push(comp);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdd_chart::Rgb;

    #[test]
    fn separates_two_colors() {
        let mut img = RgbImage::new(10, 4, Rgb::WHITE);
        let mut pixels = Vec::new();
        for x in 0..10 {
            img.set(x as isize, 0, Rgb(99, 110, 250));
            pixels.push((x, 0usize));
            img.set(x as isize, 2, Rgb(239, 85, 59));
            pixels.push((x, 2usize));
        }
        let inst = separate_line_instances(&img, &pixels, 2);
        assert_eq!(inst.len(), 2);
        assert_eq!(inst[0].pixels.len(), 10);
    }

    #[test]
    fn drops_small_noise_clusters() {
        let mut img = RgbImage::new(10, 4, Rgb::WHITE);
        let mut pixels = Vec::new();
        for x in 0..10 {
            img.set(x as isize, 0, Rgb(99, 110, 250));
            pixels.push((x, 0usize));
        }
        img.set(5, 3, Rgb(1, 255, 1)); // lone misclassified pixel
        pixels.push((5, 3));
        let inst = separate_line_instances(&img, &pixels, 3);
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn components_split_disconnected_blobs() {
        // Two separate 2x1 blobs.
        let set = |x: usize, y: usize| (y == 0 && x < 2) || (y == 2 && (4..6).contains(&x));
        let comps = connected_components(8, 4, set);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 2);
    }

    #[test]
    fn components_empty_grid() {
        let comps = connected_components(5, 5, |_, _| false);
        assert!(comps.is_empty());
    }

    #[test]
    fn instances_ordered_stably() {
        let mut img = RgbImage::new(10, 4, Rgb::WHITE);
        let mut pixels = Vec::new();
        for x in 0..5 {
            img.set(x as isize, 1, Rgb(0, 204, 150));
            pixels.push((x, 1usize));
        }
        for x in 2..9 {
            img.set(x as isize, 3, Rgb(171, 99, 250));
            pixels.push((x, 3usize));
        }
        let a = separate_line_instances(&img, &pixels, 2);
        let b = separate_line_instances(&img, &pixels, 2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pixels, y.pixels);
        }
    }
}
