//! The visual element extractor (paper Sec. IV-A): chart image → per-line
//! greyscale images + traced series + the y-axis value range.

use lcdd_chart::{Chart, GreyImage, RgbImage};

use crate::components::separate_line_instances;
use crate::lcseg::Lcseg;
use crate::tick_decode::{decode_ticks, TickInfo};
use crate::trace::{fill_gaps, line_image, trace_rows};

/// One extracted line.
#[derive(Clone, Debug)]
pub struct ExtractedLine {
    /// Ink-on-paper greyscale image of just this line (full chart size) —
    /// input to the segment-level line chart encoder.
    pub image: GreyImage,
    /// Per-plot-column pixel row of the line (gaps filled).
    pub trace_rows: Vec<f64>,
    /// The trace converted to chart value units via the decoded tick fit;
    /// equals normalised pixel rows when no ticks could be decoded.
    pub values: Vec<f64>,
}

/// Extraction result for one chart.
#[derive(Clone, Debug)]
pub struct ExtractedChart {
    pub lines: Vec<ExtractedLine>,
    /// Value range of the plot area decoded from y ticks (None when the
    /// chart has no decodable ticks).
    pub y_range: Option<(f64, f64)>,
    /// Axis information when found.
    pub ticks: Option<TickInfo>,
}

/// The extractor: a trained LCSeg model, or oracle mode which consumes the
/// renderer's ground-truth masks (upper-bound / ablation / fast tests).
pub enum VisualElementExtractor {
    Trained(Box<Lcseg>),
    Oracle,
}

/// Minimum pixels for a colour cluster to count as a line.
const MIN_LINE_PIXELS: usize = 12;

impl VisualElementExtractor {
    /// Wraps a trained LCSeg model.
    pub fn trained(model: Lcseg) -> Self {
        VisualElementExtractor::Trained(Box::new(model))
    }

    /// Oracle mode (ground-truth masks; only usable on rendered [`Chart`]s).
    pub fn oracle() -> Self {
        VisualElementExtractor::Oracle
    }

    /// True for the oracle variant.
    pub fn is_oracle(&self) -> bool {
        matches!(self, VisualElementExtractor::Oracle)
    }

    fn class_map(&self, chart: &Chart) -> Vec<u8> {
        match self {
            VisualElementExtractor::Trained(model) => model.predict_map(&chart.image),
            VisualElementExtractor::Oracle => {
                let (w, h) = (chart.mask.width(), chart.mask.height());
                (0..w * h)
                    .map(|i| chart.mask.get(i % w, i / w).coarse_code())
                    .collect()
            }
        }
    }

    /// Extracts visual elements from a rendered chart.
    pub fn extract(&self, chart: &Chart) -> ExtractedChart {
        let map = self.class_map(chart);
        extract_from_map(&chart.image, &map)
    }

    /// Extracts from a raw image (query path — no mask available). Oracle
    /// mode cannot be used here.
    pub fn extract_image(&self, image: &RgbImage) -> ExtractedChart {
        match self {
            VisualElementExtractor::Trained(model) => {
                let map = model.predict_map(image);
                extract_from_map(image, &map)
            }
            VisualElementExtractor::Oracle => {
                panic!("oracle extractor needs a rendered Chart with masks")
            }
        }
    }
}

fn extract_from_map(image: &RgbImage, class_map: &[u8]) -> ExtractedChart {
    let (w, h) = (image.width(), image.height());
    let ticks = decode_ticks(image, class_map, w, h);

    // Plot region: right of the spine when known, else the full width.
    let x0 = ticks.as_ref().map_or(0, |t| t.spine_x + 1);
    let x1 = w;

    let line_pixels: Vec<(usize, usize)> = (0..w * h)
        .filter(|&i| class_map[i] == 3)
        .map(|i| (i % w, i / w))
        .collect();
    let instances = separate_line_instances(image, &line_pixels, MIN_LINE_PIXELS);

    let lines = instances
        .iter()
        .filter_map(|inst| {
            let raw = trace_rows(inst, x0, x1);
            let rows = fill_gaps(&raw)?;
            let values: Vec<f64> = match &ticks {
                Some(t) => rows.iter().map(|&r| t.value_at_row(r)).collect(),
                // Without ticks, report rows flipped so larger = higher.
                None => rows.iter().map(|&r| h as f64 - 1.0 - r).collect(),
            };
            Some(ExtractedLine {
                image: line_image(inst, w, h),
                trace_rows: rows,
                values,
            })
        })
        .collect();

    ExtractedChart {
        y_range: ticks.as_ref().map(TickInfo::y_range),
        lines,
        ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdd_chart::{render, ChartStyle};
    use lcdd_table::series::{DataSeries, UnderlyingData};

    fn two_line_chart() -> Chart {
        let data = UnderlyingData {
            series: vec![
                DataSeries::new("up", (0..100).map(|i| i as f64 * 0.5).collect()),
                DataSeries::new(
                    "wave",
                    (0..100)
                        .map(|i| 25.0 + 20.0 * (i as f64 / 9.0).sin())
                        .collect(),
                ),
            ],
        };
        render(&data, &ChartStyle::default())
    }

    #[test]
    fn oracle_extracts_both_lines() {
        let chart = two_line_chart();
        let ex = VisualElementExtractor::oracle().extract(&chart);
        assert_eq!(ex.lines.len(), 2, "expected 2 extracted lines");
        assert!(ex.y_range.is_some());
    }

    #[test]
    fn extracted_values_track_the_data() {
        let chart = two_line_chart();
        let ex = VisualElementExtractor::oracle().extract(&chart);
        // One of the lines must be monotonically increasing (the ramp).
        let is_ramp = |vals: &[f64]| {
            let n = vals.len();
            vals[n - 1] > vals[0] + 20.0
        };
        assert!(
            ex.lines.iter().any(|l| is_ramp(&l.values)),
            "no extracted line matches the increasing ramp"
        );
        // Extracted value range should be near the true data range (0..~50).
        let (lo, hi) = ex.y_range.unwrap();
        assert!(lo <= 1.0 && hi >= 45.0, "decoded range ({lo}, {hi})");
    }

    #[test]
    fn line_images_have_disjoint_ink() {
        let chart = two_line_chart();
        let ex = VisualElementExtractor::oracle().extract(&chart);
        let overlap: usize = (0..ex.lines[0].image.pixels().len())
            .filter(|&i| ex.lines[0].image.pixels()[i] > 0.5 && ex.lines[1].image.pixels()[i] > 0.5)
            .count();
        assert_eq!(overlap, 0, "per-line images must not share ink");
    }

    #[test]
    #[should_panic(expected = "oracle extractor")]
    fn oracle_rejects_raw_images() {
        let chart = two_line_chart();
        let _ = VisualElementExtractor::oracle().extract_image(&chart.image);
    }
}
