//! Per-pixel features for the trainable chart segmenter.
//!
//! The paper trains a Mask R-CNN; at reproduction scale we train a
//! multinomial pixel classifier over hand-rolled local features (colour,
//! position, stroke-run statistics). Axis and tick strokes share a colour,
//! so the run-length features carry the signal that separates them (axis
//! spines are long runs; tick glyphs are short).

use lcdd_chart::{GreyImage, RgbImage};

/// Number of features per pixel.
pub const NUM_FEATURES: usize = 10;

/// Luma threshold below which a pixel counts as "ink".
const INK_LUMA: f32 = 0.92;
/// Run lengths are capped and normalised by this value.
const RUN_CAP: f32 = 32.0;

/// Precomputed per-image planes enabling O(1) feature reads per pixel.
pub struct FeaturePlanes {
    width: usize,
    height: usize,
    rgb: Vec<[f32; 3]>,
    luma: GreyImage,
    h_run: Vec<u16>,
    v_run: Vec<u16>,
}

impl FeaturePlanes {
    /// Precomputes feature planes for an image.
    pub fn compute(img: &RgbImage) -> Self {
        let (w, h) = (img.width(), img.height());
        let mut rgb = Vec::with_capacity(w * h);
        for y in 0..h {
            for x in 0..w {
                let p = img.get(x, y);
                rgb.push([p.0 as f32 / 255.0, p.1 as f32 / 255.0, p.2 as f32 / 255.0]);
            }
        }
        let luma = img.to_grey();
        let ink = |x: usize, y: usize| luma.get(x, y) < INK_LUMA;

        // Horizontal runs: for each row, length of the ink run covering each
        // pixel.
        let mut h_run = vec![0u16; w * h];
        for y in 0..h {
            let mut x = 0;
            while x < w {
                if ink(x, y) {
                    let start = x;
                    while x < w && ink(x, y) {
                        x += 1;
                    }
                    let len = (x - start) as u16;
                    for i in start..x {
                        h_run[y * w + i] = len;
                    }
                } else {
                    x += 1;
                }
            }
        }
        // Vertical runs.
        let mut v_run = vec![0u16; w * h];
        for x in 0..w {
            let mut y = 0;
            while y < h {
                if ink(x, y) {
                    let start = y;
                    while y < h && ink(x, y) {
                        y += 1;
                    }
                    let len = (y - start) as u16;
                    for i in start..y {
                        v_run[i * w + x] = len;
                    }
                } else {
                    y += 1;
                }
            }
        }
        FeaturePlanes {
            width: w,
            height: h,
            rgb,
            luma,
            h_run,
            v_run,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// True when the pixel is ink (dark enough to be part of an element).
    pub fn is_ink(&self, x: usize, y: usize) -> bool {
        self.luma.get(x, y) < INK_LUMA
    }

    /// Writes the pixel's feature vector into `out` (length
    /// [`NUM_FEATURES`]).
    pub fn features_into(&self, x: usize, y: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), NUM_FEATURES);
        let idx = y * self.width + x;
        let [r, g, b] = self.rgb[idx];
        let luma = self.luma.get(x, y);
        let sat = r.max(g).max(b) - r.min(g).min(b);
        let mut dark_neighbors = 0.0;
        for (dx, dy) in [
            (-1i32, 0i32),
            (1, 0),
            (0, -1),
            (0, 1),
            (-1, -1),
            (1, 1),
            (-1, 1),
            (1, -1),
        ] {
            let nx = x as i32 + dx;
            let ny = y as i32 + dy;
            if nx >= 0
                && ny >= 0
                && (nx as usize) < self.width
                && (ny as usize) < self.height
                && self.is_ink(nx as usize, ny as usize)
            {
                dark_neighbors += 1.0;
            }
        }
        out[0] = r;
        out[1] = g;
        out[2] = b;
        out[3] = luma;
        out[4] = sat;
        out[5] = x as f32 / self.width as f32;
        out[6] = y as f32 / self.height as f32;
        out[7] = (self.h_run[idx] as f32).min(RUN_CAP) / RUN_CAP;
        out[8] = (self.v_run[idx] as f32).min(RUN_CAP) / RUN_CAP;
        out[9] = dark_neighbors / 8.0;
    }

    /// Allocating convenience wrapper around [`FeaturePlanes::features_into`].
    pub fn features(&self, x: usize, y: usize) -> Vec<f32> {
        let mut out = vec![0.0; NUM_FEATURES];
        self.features_into(x, y, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdd_chart::Rgb;

    fn image_with_strokes() -> RgbImage {
        let mut img = RgbImage::new(20, 10, Rgb::WHITE);
        // long horizontal stroke (axis-like)
        for x in 0..20 {
            img.set(x as isize, 8, Rgb(42, 63, 95));
        }
        // short glyph-like blob
        img.set(2, 2, Rgb(42, 63, 95));
        img.set(3, 2, Rgb(42, 63, 95));
        // coloured line pixel
        img.set(10, 4, Rgb(239, 85, 59));
        img
    }

    #[test]
    fn run_lengths_separate_axis_from_glyph() {
        let planes = FeaturePlanes::compute(&image_with_strokes());
        let axis = planes.features(10, 8);
        let glyph = planes.features(2, 2);
        assert!(axis[7] > glyph[7], "axis h-run must exceed glyph h-run");
    }

    #[test]
    fn saturation_flags_line_pixels() {
        let planes = FeaturePlanes::compute(&image_with_strokes());
        let line = planes.features(10, 4);
        let axis = planes.features(10, 8);
        assert!(
            line[4] > axis[4],
            "coloured line pixels have higher saturation"
        );
    }

    #[test]
    fn background_is_not_ink() {
        let planes = FeaturePlanes::compute(&image_with_strokes());
        assert!(!planes.is_ink(0, 0));
        assert!(planes.is_ink(10, 8));
    }

    #[test]
    fn feature_vector_length() {
        let planes = FeaturePlanes::compute(&image_with_strokes());
        assert_eq!(planes.features(0, 0).len(), NUM_FEATURES);
    }
}
