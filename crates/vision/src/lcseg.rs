//! LCSeg — the trainable line-chart segmentation model (paper Sec. IV-A).
//!
//! **Substitution note (see DESIGN.md):** the paper trains a Mask R-CNN.
//! Training a region-proposal CNN from scratch on CPU is out of scope for a
//! reproduction whose contribution lies elsewhere, so LCSeg here is a
//! multinomial logistic pixel classifier over local features
//! ([`crate::features`]) trained by SGD on LineChartSeg, followed by
//! colour/connectivity instance separation ([`crate::components`]). It
//! occupies the same pipeline slot (pixels → element masks → per-line
//! images + tick info) and is trained from the same auto-labelled data with
//! the same augmentations.

use lcdd_chart::{ElementClass, RgbImage};
use lcdd_tensor::{Matrix, ParamStore, Sgd, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::features::{FeaturePlanes, NUM_FEATURES};
use crate::linechartseg::SegExample;

/// Pixel-classifier configuration.
#[derive(Clone, Debug)]
pub struct LcsegConfig {
    /// Pixels sampled per training example per epoch (class-balanced).
    pub pixels_per_example: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for LcsegConfig {
    fn default() -> Self {
        LcsegConfig {
            pixels_per_example: 160,
            epochs: 6,
            lr: 0.5,
            seed: 0xc1a55,
        }
    }
}

/// The trained pixel classifier: a single linear layer + softmax over the
/// four coarse classes (background / axis / tick / line).
pub struct Lcseg {
    store: ParamStore,
    w: lcdd_tensor::ParamId,
    b: lcdd_tensor::ParamId,
}

impl Lcseg {
    fn new(seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let w = store.add(
            "lcseg.w",
            lcdd_tensor::init::xavier_uniform(&mut rng, NUM_FEATURES, ElementClass::NUM_COARSE),
        );
        let b = store.add("lcseg.b", Matrix::zeros(1, ElementClass::NUM_COARSE));
        Lcseg { store, w, b }
    }

    /// Trains on LineChartSeg examples with class-balanced pixel sampling.
    /// Returns the trained model and the final-epoch training accuracy.
    pub fn train(examples: &[SegExample], cfg: &LcsegConfig) -> (Self, f32) {
        assert!(!examples.is_empty(), "Lcseg::train: no examples");
        let mut model = Lcseg::new(cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5eed);
        let mut opt = Sgd::new(cfg.lr);
        let mut last_acc = 0.0;

        for _epoch in 0..cfg.epochs {
            let mut correct = 0usize;
            let mut total = 0usize;
            for ex in examples {
                let planes = FeaturePlanes::compute(&ex.chart.image);
                let (w, h) = (planes.width(), planes.height());
                // Bucket pixel coordinates by coarse class for balancing.
                let mut buckets: [Vec<(usize, usize)>; 4] = Default::default();
                for y in 0..h {
                    for x in 0..w {
                        let c = ex.chart.mask.get(x, y).coarse_code() as usize;
                        // Background dominates; subsample it on the fly.
                        if c == 0 && !rng.gen_bool(0.02) {
                            continue;
                        }
                        buckets[c].push((x, y));
                    }
                }
                let per_class = (cfg.pixels_per_example / 4).max(1);
                let mut feats = Vec::new();
                let mut labels = Vec::new();
                let mut buf = vec![0.0f32; NUM_FEATURES];
                for (class, bucket) in buckets.iter().enumerate() {
                    if bucket.is_empty() {
                        continue;
                    }
                    for _ in 0..per_class {
                        let &(x, y) = &bucket[rng.gen_range(0..bucket.len())];
                        planes.features_into(x, y, &mut buf);
                        feats.extend_from_slice(&buf);
                        labels.push(class);
                    }
                }
                if labels.is_empty() {
                    continue;
                }
                let n = labels.len();
                let tape = Tape::new();
                let x = tape.leaf(Matrix::from_vec(n, NUM_FEATURES, feats));
                let wv = model.store.leaf(&tape, model.w);
                let bv = model.store.leaf(&tape, model.b);
                let logits = x.matmul(&wv).add_row_broadcast(&bv);
                let probs = logits.softmax_rows();
                // Cross entropy: -mean log p[label]
                let mut mask = vec![0.0f32; n * ElementClass::NUM_COARSE];
                for (i, &l) in labels.iter().enumerate() {
                    mask[i * ElementClass::NUM_COARSE + l] = -1.0 / n as f32;
                }
                let mask = tape.constant(Matrix::from_vec(n, ElementClass::NUM_COARSE, mask));
                let loss = probs.ln_clamped(1e-7).mul(&mask).sum_all();
                tape.backward(&loss);
                model.store.apply_grads(&tape, &mut opt);

                // Track accuracy on this batch.
                let pv = probs.value();
                for (i, &l) in labels.iter().enumerate() {
                    let row = pv.row(i);
                    // `total_cmp`: a NaN probability (diverged training)
                    // must miscount accuracy, not abort the process.
                    let pred = row
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map_or(0, |(j, _)| j);
                    correct += usize::from(pred == l);
                    total += 1;
                }
            }
            last_acc = correct as f32 / total.max(1) as f32;
        }
        (model, last_acc)
    }

    /// Classifies every pixel, returning coarse class codes (row-major).
    pub fn predict_map(&self, img: &RgbImage) -> Vec<u8> {
        let planes = FeaturePlanes::compute(img);
        let (w, h) = (planes.width(), planes.height());
        let wm = self.store.value(self.w).clone();
        let bm = self.store.value(self.b).clone();
        let mut out = vec![0u8; w * h];
        let mut buf = vec![0.0f32; NUM_FEATURES];
        for y in 0..h {
            for x in 0..w {
                // Fast path: pure-white pixels are background by definition.
                if !planes.is_ink(x, y) {
                    continue;
                }
                planes.features_into(x, y, &mut buf);
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for c in 0..ElementClass::NUM_COARSE {
                    let mut v = bm.get(0, c);
                    for (f, &fv) in buf.iter().enumerate() {
                        v += fv * wm.get(f, c);
                    }
                    if v > best_v {
                        best_v = v;
                        best = c;
                    }
                }
                out[y * w + x] = best as u8;
            }
        }
        out
    }

    /// Pixel accuracy of the predicted map against a ground-truth mask,
    /// measured over ink pixels only (background is trivially correct).
    pub fn evaluate(&self, examples: &[SegExample]) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for ex in examples {
            let pred = self.predict_map(&ex.chart.image);
            let (w, h) = (ex.chart.mask.width(), ex.chart.mask.height());
            for y in 0..h {
                for x in 0..w {
                    let truth = ex.chart.mask.get(x, y).coarse_code();
                    if truth == 0 {
                        continue;
                    }
                    correct += usize::from(pred[y * w + x] == truth);
                    total += 1;
                }
            }
        }
        correct as f32 / total.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linechartseg::build_linechartseg;
    use lcdd_chart::ChartStyle;
    use lcdd_table::{build_corpus, CorpusConfig};

    fn small_dataset() -> Vec<SegExample> {
        let cfg = CorpusConfig {
            n_records: 6,
            near_duplicate_rate: 0.0,
            ..Default::default()
        };
        build_linechartseg(&build_corpus(&cfg), &ChartStyle::default(), 1, 3)
    }

    #[test]
    fn trains_to_high_pixel_accuracy() {
        let ds = small_dataset();
        let (model, train_acc) = Lcseg::train(&ds, &LcsegConfig::default());
        assert!(train_acc > 0.85, "train accuracy too low: {train_acc}");
        let eval_acc = model.evaluate(&ds[..2.min(ds.len())]);
        assert!(eval_acc > 0.8, "ink-pixel accuracy too low: {eval_acc}");
    }

    #[test]
    fn line_pixels_classified_as_line() {
        let ds = small_dataset();
        let (model, _) = Lcseg::train(&ds, &LcsegConfig::default());
        let ex = &ds[0];
        let pred = model.predict_map(&ex.chart.image);
        let (w, h) = (ex.chart.mask.width(), ex.chart.mask.height());
        let mut line_correct = 0usize;
        let mut line_total = 0usize;
        for y in 0..h {
            for x in 0..w {
                if ex.chart.mask.get(x, y).coarse_code() == 3 {
                    line_total += 1;
                    line_correct += usize::from(pred[y * w + x] == 3);
                }
            }
        }
        assert!(
            line_correct as f32 / line_total.max(1) as f32 > 0.9,
            "line recall {line_correct}/{line_total}"
        );
    }
}
