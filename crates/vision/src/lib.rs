//! # lcdd-vision
//!
//! The visual element extractor of FCM (paper Sec. IV-A): the LineChartSeg
//! auto-labelled segmentation dataset, the trainable LCSeg pixel classifier
//! (Mask R-CNN substitute — see DESIGN.md), colour/connectivity line
//! instance separation, line tracing back to 1-D series, and y-tick label
//! decoding that recovers the chart's value range from raw pixels.
//!
//! This crate sits on the adversarial-input boundary (arbitrary images and
//! extractor output flow through it into `Engine::search`), so production
//! code is `unwrap`-free by construction — a degenerate chart must degrade
//! to "no lines / no ticks", never abort the process. Tests keep `unwrap`
//! (the backtrace is the point there).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod components;
pub mod extractor;
pub mod features;
pub mod lcseg;
pub mod linechartseg;
pub mod tick_decode;
pub mod trace;

pub use components::{connected_components, separate_line_instances, LineInstance};
pub use extractor::{ExtractedChart, ExtractedLine, VisualElementExtractor};
pub use features::{FeaturePlanes, NUM_FEATURES};
pub use lcseg::{Lcseg, LcsegConfig};
pub use linechartseg::{build_linechartseg, SegExample};
pub use tick_decode::{decode_ticks, TickInfo};
