//! LineChartSeg — the auto-labelled chart-segmentation dataset
//! (paper Sec. IV-A).
//!
//! Each example pairs a rendered chart image with its pixel-exact element
//! mask. Labels cost nothing because the renderer tracks which element
//! painted each pixel. The paper's tabular augmentations (reverse /
//! partition / down-sample, applied to the *data* and re-rendered) expand
//! the set without corrupting chart semantics.

use lcdd_chart::{render_record, Chart, ChartStyle};
use lcdd_table::augment::random_augment;
use lcdd_table::Record;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One segmentation training example.
pub struct SegExample {
    pub chart: Chart,
}

/// Builds LineChartSeg from corpus records: one example per record plus
/// `augment_per_record` augmented re-renders.
pub fn build_linechartseg(
    records: &[Record],
    style: &ChartStyle,
    augment_per_record: usize,
    seed: u64,
) -> Vec<SegExample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(records.len() * (1 + augment_per_record));
    for record in records {
        out.push(SegExample {
            chart: render_record(&record.table, &record.spec, style),
        });
        for _ in 0..augment_per_record {
            let table = random_augment(&record.table, &mut rng);
            // Augmentations can shrink tables below the spec's columns only
            // by rows, never columns, so the spec stays valid.
            out.push(SegExample {
                chart: render_record(&table, &record.spec, style),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdd_table::{build_corpus, CorpusConfig};

    #[test]
    fn builds_expected_count_with_augmentation() {
        let cfg = CorpusConfig {
            n_records: 6,
            near_duplicate_rate: 0.0,
            ..Default::default()
        };
        let records = build_corpus(&cfg);
        let ds = build_linechartseg(&records, &ChartStyle::default(), 2, 1);
        assert_eq!(ds.len(), 18);
    }

    #[test]
    fn masks_align_with_images() {
        let cfg = CorpusConfig {
            n_records: 3,
            near_duplicate_rate: 0.0,
            ..Default::default()
        };
        let records = build_corpus(&cfg);
        for ex in build_linechartseg(&records, &ChartStyle::default(), 1, 2) {
            assert_eq!(ex.chart.image.width(), ex.chart.mask.width());
            assert_eq!(ex.chart.image.height(), ex.chart.mask.height());
            assert!(
                !ex.chart.mask.line_ids().is_empty(),
                "every chart draws lines"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CorpusConfig {
            n_records: 2,
            near_duplicate_rate: 0.0,
            ..Default::default()
        };
        let records = build_corpus(&cfg);
        let a = build_linechartseg(&records, &ChartStyle::default(), 2, 9);
        let b = build_linechartseg(&records, &ChartStyle::default(), 2, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.chart.image, y.chart.image);
        }
    }
}
