//! Y-axis tick decoding: recover the chart's value range from pixels.
//!
//! The renderer draws tick labels with a 3x5 bitmap font; this module finds
//! the y-axis spine, groups tick-label ink into row bands, decodes each
//! label by glyph template matching, and least-squares-fits the
//! `value = a·row + b` mapping. The extractor uses the fit to convert
//! traced pixel rows into chart units and to report the y range the paper's
//! dataset encoder filters columns with (Sec. IV-C).

use lcdd_chart::ticks::{glyph, GLYPH_ADVANCE, GLYPH_H, GLYPH_W};
use lcdd_chart::RgbImage;

/// Decoded axis information.
#[derive(Clone, Debug)]
pub struct TickInfo {
    /// Column of the y-axis spine.
    pub spine_x: usize,
    /// Top (min) and bottom (max) row of the spine.
    pub spine_top: usize,
    pub spine_bottom: usize,
    /// Decoded `(row_center, value)` pairs.
    pub ticks: Vec<(f64, f64)>,
    /// Linear fit `value = a * row + b`.
    pub a: f64,
    pub b: f64,
}

impl TickInfo {
    /// Chart value at a pixel row.
    pub fn value_at_row(&self, row: f64) -> f64 {
        self.a * row + self.b
    }

    /// The `(y_lo, y_hi)` value range spanned by the plot area.
    pub fn y_range(&self) -> (f64, f64) {
        let v_bottom = self.value_at_row(self.spine_bottom as f64 - 1.0);
        let v_top = self.value_at_row(self.spine_top as f64);
        (v_bottom.min(v_top), v_bottom.max(v_top))
    }
}

/// Finds the y-axis spine from a coarse class map (class 1 = axis): the
/// column containing the most axis pixels. Returns `(x, top, bottom)`.
pub fn find_spine(class_map: &[u8], width: usize, height: usize) -> Option<(usize, usize, usize)> {
    let mut best_x = 0usize;
    let mut best_count = 0usize;
    for x in 0..width {
        let count = (0..height)
            .filter(|&y| class_map[y * width + x] == 1)
            .count();
        if count > best_count {
            best_count = count;
            best_x = x;
        }
    }
    if best_count < 8 {
        return None;
    }
    let mut ys = (0..height).filter(|&y| class_map[y * width + best_x] == 1);
    // `best_count >= 8` implies the column has axis pixels, but guard the
    // first/last lookups anyway: an adversarial class map must degrade to
    // "no spine", never abort the process.
    let top = ys.next()?;
    let bottom = ys.next_back().unwrap_or(top);
    Some((best_x, top, bottom))
}

fn is_ink(img: &RgbImage, x: usize, y: usize) -> bool {
    img.get(x, y).luma() < 0.92
}

/// Decodes one label whose ink occupies rows `[y0, y1]` left of `x_limit`.
fn decode_band(img: &RgbImage, x_limit: usize, y0: usize, y1: usize) -> Option<(f64, f64)> {
    // Bounding box of ink in the band.
    let mut min_x = usize::MAX;
    let mut max_x = 0usize;
    let mut count = 0usize;
    for y in y0..=y1 {
        for x in 0..x_limit {
            if is_ink(img, x, y) {
                min_x = min_x.min(x);
                max_x = max_x.max(x);
                count += 1;
            }
        }
    }
    if count == 0 {
        return None;
    }
    let n_chars = ((max_x - min_x) as f64 / GLYPH_ADVANCE as f64).round() as usize + 1;
    // Labels are drawn with the glyph-top two rows above the tick row; the
    // band's top row is the glyph top.
    let glyph_top = y0;
    let mut text = String::new();
    for c in 0..n_chars {
        let cx = min_x + c * GLYPH_ADVANCE;
        // Extract the 3x5 cell.
        let mut cell = [0u8; GLYPH_W * GLYPH_H];
        for gy in 0..GLYPH_H {
            for gx in 0..GLYPH_W {
                let (x, y) = (cx + gx, glyph_top + gy);
                if x < x_limit && y < img.height() && is_ink(img, x, y) {
                    cell[gy * GLYPH_W + gx] = 1;
                }
            }
        }
        // Template match against the font.
        let mut best: Option<(char, usize)> = None;
        for ch in [
            '0', '1', '2', '3', '4', '5', '6', '7', '8', '9', '-', '.', 'e', '+',
        ] {
            let Some(g) = glyph(ch) else { continue };
            let agree = g.iter().zip(cell.iter()).filter(|(a, b)| a == b).count();
            if best.is_none_or(|(_, s)| agree > s) {
                best = Some((ch, agree));
            }
        }
        let (ch, score) = best?;
        if score < GLYPH_W * GLYPH_H - 2 {
            return None; // too noisy to trust
        }
        text.push(ch);
    }
    let value: f64 = text.parse().ok()?;
    // The tick row the label is centred on: glyph_top + 2 (labels render at
    // tick_row - 2).
    Some((glyph_top as f64 + 2.0, value))
}

/// Decodes every tick label left of the spine and fits the row→value line.
pub fn decode_ticks(
    img: &RgbImage,
    class_map: &[u8],
    width: usize,
    height: usize,
) -> Option<TickInfo> {
    let (spine_x, spine_top, spine_bottom) = find_spine(class_map, width, height)?;
    if spine_x < 6 {
        return None;
    }
    let label_region_limit = spine_x.saturating_sub(2);

    // Rows containing tick-class ink left of the spine.
    let mut row_has_label = vec![false; height];
    for y in 0..height {
        for x in 0..label_region_limit {
            if class_map[y * width + x] == 2 && is_ink(img, x, y) {
                row_has_label[y] = true;
                break;
            }
        }
    }
    // Group contiguous rows into bands.
    let mut bands: Vec<(usize, usize)> = Vec::new();
    let mut y = 0;
    while y < height {
        if row_has_label[y] {
            let start = y;
            while y < height && row_has_label[y] {
                y += 1;
            }
            bands.push((start, y - 1));
        } else {
            y += 1;
        }
    }

    let mut ticks: Vec<(f64, f64)> = bands
        .into_iter()
        .filter_map(|(y0, y1)| decode_band(img, label_region_limit, y0, y1))
        .collect();
    // A label that parses to a non-finite value (or a degenerate band
    // position) would poison the least-squares fit and, formerly, panic the
    // NaN-unaware sort below; drop such ticks before fitting.
    ticks.retain(|t| t.0.is_finite() && t.1.is_finite());
    ticks.sort_by(|a, b| a.0.total_cmp(&b.0));
    if ticks.len() < 2 {
        return None;
    }

    // Least squares fit value = a*row + b.
    let n = ticks.len() as f64;
    let sx: f64 = ticks.iter().map(|t| t.0).sum();
    let sy: f64 = ticks.iter().map(|t| t.1).sum();
    let sxx: f64 = ticks.iter().map(|t| t.0 * t.0).sum();
    let sxy: f64 = ticks.iter().map(|t| t.0 * t.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-9 {
        return None;
    }
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;

    Some(TickInfo {
        spine_x,
        spine_top,
        spine_bottom,
        ticks,
        a,
        b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdd_chart::{render, ChartStyle, ElementClass};
    use lcdd_table::series::{DataSeries, UnderlyingData};

    fn oracle_map(chart: &lcdd_chart::Chart) -> Vec<u8> {
        let (w, h) = (chart.mask.width(), chart.mask.height());
        (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                chart.mask.get(x, y).coarse_code()
            })
            .collect()
    }

    fn chart_for(values: Vec<f64>) -> lcdd_chart::Chart {
        let data = UnderlyingData {
            series: vec![DataSeries::new("s", values)],
        };
        render(&data, &ChartStyle::default())
    }

    #[test]
    fn decodes_range_of_simple_chart() {
        let chart = chart_for((0..100).map(|i| i as f64).collect());
        let map = oracle_map(&chart);
        let info = decode_ticks(
            &chart.image,
            &map,
            chart.image.width(),
            chart.image.height(),
        )
        .unwrap();
        let (lo, hi) = info.y_range();
        // True plot range is meta.y_lo..meta.y_hi.
        let span = chart.meta.y_hi - chart.meta.y_lo;
        assert!(
            (lo - chart.meta.y_lo).abs() < span * 0.1,
            "lo {lo} vs {}",
            chart.meta.y_lo
        );
        assert!(
            (hi - chart.meta.y_hi).abs() < span * 0.1,
            "hi {hi} vs {}",
            chart.meta.y_hi
        );
    }

    #[test]
    fn decodes_negative_ranges() {
        let chart = chart_for((0..80).map(|i| -40.0 + i as f64).collect());
        let map = oracle_map(&chart);
        let info = decode_ticks(
            &chart.image,
            &map,
            chart.image.width(),
            chart.image.height(),
        )
        .unwrap();
        let (lo, hi) = info.y_range();
        assert!(
            lo < 0.0 && hi > 0.0,
            "range ({lo}, {hi}) should straddle zero"
        );
    }

    #[test]
    fn tick_values_match_meta_ticks() {
        let chart = chart_for((0..60).map(|i| (i as f64 / 8.0).sin() * 12.0).collect());
        let map = oracle_map(&chart);
        let info = decode_ticks(
            &chart.image,
            &map,
            chart.image.width(),
            chart.image.height(),
        )
        .unwrap();
        // Every decoded value must appear among the true tick values.
        for &(_, v) in &info.ticks {
            assert!(
                chart
                    .meta
                    .ticks
                    .iter()
                    .any(|&t| (t - v).abs() < 1e-6 + t.abs() * 0.01),
                "decoded {v} not among {:?}",
                chart.meta.ticks
            );
        }
        assert!(info.ticks.len() >= 2);
    }

    #[test]
    fn spine_found_at_plot_left() {
        let chart = chart_for((0..50).map(|i| i as f64).collect());
        let map = oracle_map(&chart);
        let (x, top, bottom) = find_spine(&map, chart.image.width(), chart.image.height()).unwrap();
        let (px0, py0, _, py1) = chart.meta.plot;
        assert_eq!(x, px0 - 1);
        assert!(top <= py0 + 1);
        assert!(bottom >= py1 - 2);
    }

    #[test]
    fn no_axes_returns_none() {
        let data = UnderlyingData {
            series: vec![DataSeries::new("s", (0..50).map(|i| i as f64).collect())],
        };
        let style = ChartStyle {
            draw_axes: false,
            ..Default::default()
        };
        let chart = render(&data, &style);
        let map = oracle_map(&chart);
        assert!(chart.mask.count(ElementClass::Axis) == 0);
        assert!(decode_ticks(
            &chart.image,
            &map,
            chart.image.width(),
            chart.image.height()
        )
        .is_none());
    }
}
