//! Line tracing: turn a line-pixel instance back into a 1-D series and a
//! clean per-line greyscale image (the encoder's input, paper Sec. IV-B).

use lcdd_chart::GreyImage;

use crate::components::LineInstance;

/// Per-column mean pixel row of a line instance across `[x0, x1)`;
/// columns the line does not touch (occlusion by later-drawn lines, gaps)
/// are `None`.
pub fn trace_rows(instance: &LineInstance, x0: usize, x1: usize) -> Vec<Option<f64>> {
    let mut sums = vec![(0.0f64, 0usize); x1.saturating_sub(x0)];
    for &(x, y) in &instance.pixels {
        if x >= x0 && x < x1 {
            let slot = &mut sums[x - x0];
            slot.0 += y as f64;
            slot.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(s, n)| (n > 0).then(|| s / n as f64))
        .collect()
}

/// Fills `None` gaps by linear interpolation between the nearest observed
/// columns; leading/trailing gaps extend the first/last observation.
/// Returns `None` when no column is observed at all (an all-gap trace —
/// e.g. a line fully occluded inside the plot window — is a skippable
/// line, not a panic).
pub fn fill_gaps(trace: &[Option<f64>]) -> Option<Vec<f64>> {
    let observed: Vec<(usize, f64)> = trace
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (i, v)))
        .collect();
    let (&(first, first_v), &(last, last_v)) = (observed.first()?, observed.last()?);
    let mut out = vec![0.0; trace.len()];
    out[..first].fill(first_v);
    out[last..].fill(last_v);
    for w in observed.windows(2) {
        let ((l, lv), (r, rv)) = (w[0], w[1]);
        out[l] = lv;
        for (i, slot) in out.iter_mut().enumerate().take(r).skip(l + 1) {
            let frac = (i - l) as f64 / (r - l) as f64;
            *slot = lv + (rv - lv) * frac;
        }
    }
    Some(out)
}

/// Paints the instance onto a white background as an ink-on-paper greyscale
/// image of the full chart size (`ink = 1.0`), which the line-chart encoder
/// slices into segment patches.
pub fn line_image(instance: &LineInstance, width: usize, height: usize) -> GreyImage {
    let mut img = GreyImage::new(width, height, 0.0);
    for &(x, y) in &instance.pixels {
        img.set(x, y, 1.0);
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(pixels: Vec<(usize, usize)>) -> LineInstance {
        LineInstance {
            pixels,
            color: (0, 0, 0),
        }
    }

    #[test]
    fn trace_means_multiple_rows() {
        // Two pixels stacked at x=1 (thickness 2) average to 5.5.
        let inst = instance(vec![(0, 4), (1, 5), (1, 6), (2, 7)]);
        let t = trace_rows(&inst, 0, 3);
        assert_eq!(t[0], Some(4.0));
        assert_eq!(t[1], Some(5.5));
        assert_eq!(t[2], Some(7.0));
    }

    #[test]
    fn gaps_interpolated() {
        let t = vec![Some(0.0), None, None, Some(3.0)];
        assert_eq!(fill_gaps(&t).unwrap(), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn edges_extended() {
        let t = vec![None, Some(2.0), None];
        assert_eq!(fill_gaps(&t).unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn all_empty_returns_none() {
        assert!(fill_gaps(&[None, None]).is_none());
    }

    #[test]
    fn line_image_paints_pixels() {
        let inst = instance(vec![(1, 1), (2, 2)]);
        let img = line_image(&inst, 4, 4);
        assert_eq!(img.get(1, 1), 1.0);
        assert_eq!(img.get(2, 2), 1.0);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.mean(), 2.0 / 16.0);
    }
}
