//! Aggregation-based discovery (paper Sec. V): a chart built from monthly
//! *sums* of daily sales must still retrieve the daily-sales table. Shows
//! the windowed aggregation operators, the distribution shift they cause,
//! and the DA-aware FCM configuration.
//!
//! Run with: `cargo run --release --example aggregation_discovery`

use linechart_discovery::chart::{render, ChartStyle};
use linechart_discovery::fcm::FcmConfig;
use linechart_discovery::table::series::UnderlyingData;
use linechart_discovery::table::{aggregate, AggOp, Column, Table, VisSpec};
use linechart_discovery::table::{generate, SeriesFamily};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xa66);

    // Daily sales for a year.
    let daily = generate(&mut rng, SeriesFamily::TrendSeason, 360, 400.0, 2500.0);
    let table = Table::new(
        0,
        "daily_sales",
        vec![Column::new("revenue", daily.clone())],
    );

    // The analyst charts *monthly totals*: sum aggregation, window 30.
    let spec = VisSpec::aggregated(vec![0], AggOp::Sum, 30);
    let monthly = UnderlyingData::from_spec(&table, &spec);
    println!(
        "daily rows: {}, monthly points: {}",
        table.num_rows(),
        monthly.series[0].len()
    );

    // The distribution shift the paper's Sec. V targets: a sum over 30 days
    // lives on a ~30x larger scale than the daily data.
    let (dlo, dhi) = (
        table.columns[0].min().unwrap(),
        table.columns[0].max().unwrap(),
    );
    let (mlo, mhi) = monthly.y_range().unwrap();
    println!("daily range   [{dlo:.0}, {dhi:.0}]");
    println!("monthly range [{mlo:.0}, {mhi:.0}]  <- ~30x shift");

    // All four operators side by side on the same window.
    println!("\nfirst three windows under each operator:");
    for op in AggOp::AGGREGATORS {
        let agg = aggregate(&daily, op, 30);
        println!(
            "  {:>4}: {:8.1} {:8.1} {:8.1}",
            op.name(),
            agg[0],
            agg[1],
            agg[2]
        );
    }

    // Render the aggregated chart (what the analyst shares) and check the
    // y-tick filter behaviour: the raw column range does NOT overlap the
    // chart's y range, but the interval-tree bound [min(C), sum(C)] does —
    // exactly why the paper indexes that interval (Sec. VI-A).
    let chart = render(&monthly, &ChartStyle::default());
    let (ilo, ihi) = table.columns[0].index_interval().unwrap();
    println!(
        "\nchart y range [{:.0}, {:.0}]; raw column range [{dlo:.0}, {dhi:.0}]; index interval [{ilo:.0}, {ihi:.0}]",
        chart.meta.y_lo, chart.meta.y_hi
    );
    assert!(
        chart.meta.y_lo > dhi,
        "aggregated chart exceeds the raw range"
    );
    assert!(
        ihi >= chart.meta.y_hi,
        "the [min, sum] interval covers the aggregated chart"
    );

    // The DA-aware model configuration handles this shift with five
    // transformation experts, HMRL multi-scale fusion and a MoE gate.
    let cfg = FcmConfig::small();
    println!(
        "\nDA-aware FCM config: {} experts, HMRL depth beta={}, sub-segment len {}",
        AggOp::EXPERTS.len(),
        cfg.beta,
        cfg.sub_segment_len()
    );
    println!("(train it on DA triplets as in `cargo run --bin table6_da_ablation`)");
}
