//! Clinical scenario (paper Sec. I): a doctor has an ECG strip chart and
//! wants the raw recordings of patients with similar traces for precise
//! analytics. Exercises single-line queries over quasi-periodic data and
//! the hybrid index for fast candidate pruning.
//!
//! Run with: `cargo run --release --example ecg_cohort_search`

use linechart_discovery::chart::{render, ChartStyle};
use linechart_discovery::index::{HybridConfig, HybridIndex, IndexStrategy};
use linechart_discovery::table::series::{DataSeries, UnderlyingData};
use linechart_discovery::table::{generate, Column, SeriesFamily, Table};
use linechart_discovery::vision::VisualElementExtractor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(0xec6);

    // A ward of patients: ECG-like recordings plus unrelated vitals tables.
    let mut lake: Vec<Table> = Vec::new();
    for p in 0..30 {
        let ecg = generate(&mut rng, SeriesFamily::EcgLike, 300, 1.2, 0.0);
        lake.push(Table::new(
            p,
            format!("patient_{p:02}_ecg"),
            vec![Column::new("mV", ecg)],
        ));
    }
    for v in 0..20 {
        let vitals = generate(&mut rng, SeriesFamily::Ar1, 300, 8.0, 80.0);
        lake.push(Table::new(
            30 + v,
            format!("ward_vitals_{v:02}"),
            vec![Column::new("bpm", vitals)],
        ));
    }

    // The doctor's chart: patient 12's ECG rendered as a line chart.
    let style = ChartStyle::default();
    let data = UnderlyingData {
        series: vec![DataSeries::new("mV", lake[12].columns[0].values.clone())],
    };
    let chart = render(&data, &style);
    let extracted = VisualElementExtractor::oracle().extract(&chart);
    println!(
        "query: 1 line extracted, y range {:?} (true ECG range ~[-0.3, 1.3] mV scaled)",
        extracted.y_range
    );

    // Hybrid index: the interval stage alone prunes the vitals tables whose
    // value ranges (~60-100 bpm) cannot have produced a millivolt chart.
    let dim = 8;
    let dummy_embs: Vec<Vec<Vec<f32>>> = lake
        .iter()
        .map(|t| vec![vec![0.1; dim]; t.num_cols()])
        .collect();
    let index = HybridIndex::build(&lake, &dummy_embs, dim, HybridConfig::default());
    let candidates = index.candidates(IndexStrategy::IntervalOnly, extracted.y_range, &[]);
    println!(
        "interval-tree pruning: {} of {} tables remain (vitals tables filtered by range)",
        candidates.len(),
        lake.len()
    );
    assert!(
        candidates.len() < lake.len(),
        "pruning should drop out-of-range tables"
    );
    assert!(
        candidates.contains(&12),
        "the true patient must survive pruning"
    );

    // Rank survivors by DTW shape relevance of the extracted trace.
    let q = UnderlyingData {
        series: vec![DataSeries::new("q", extracted.lines[0].values.clone())],
    };
    let rel_cfg = linechart_discovery::relevance::RelevanceConfig::default();
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&i| {
            (
                i,
                linechart_discovery::relevance::rel_score(&q, &lake[i], &rel_cfg),
            )
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost similar recordings:");
    for (rank, (i, s)) in scored.iter().take(5).enumerate() {
        println!("  #{} {} (rel {:.4})", rank + 1, lake[*i].name, s);
    }
    // The traced query is a lossy pixel reconstruction, and ECG traces are
    // intentionally similar across patients — require the true recording in
    // the top five rather than exactly first.
    assert!(
        scored.iter().take(5).any(|&(i, _)| i == 12),
        "patient 12's own recording should rank in the top five"
    );
    println!("\ncohort search done: raw recordings located for follow-up analytics.");
}
