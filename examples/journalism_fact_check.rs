//! Journalism fact-checking scenario (paper Sec. I): a journalist holds a
//! line-chart image from an article and wants to trace datasets that could
//! have produced it. The query here is ONLY the rendered image — lines and
//! the y-axis range are recovered from pixels by the trained extractor.
//!
//! Run with: `cargo run --release --example journalism_fact_check`

use linechart_discovery::baselines::QueryInput;
use linechart_discovery::chart::{pgm, render, ChartStyle};
use linechart_discovery::relevance::{rel_score, RelevanceConfig};
use linechart_discovery::table::series::{DataSeries, UnderlyingData};
use linechart_discovery::table::Table;
use linechart_discovery::table::{build_corpus, CorpusConfig};
use linechart_discovery::vision::{build_linechartseg, Lcseg, LcsegConfig, VisualElementExtractor};

fn main() {
    // The "data lake" of public datasets.
    let corpus = build_corpus(&CorpusConfig {
        n_records: 60,
        ..Default::default()
    });
    let style = ChartStyle::default();

    // Train the chart segmenter on rendered charts (LineChartSeg).
    println!("training LCSeg pixel classifier ...");
    let seg_data = build_linechartseg(&corpus[..10], &style, 1, 7);
    let (lcseg, acc) = Lcseg::train(&seg_data, &LcsegConfig::default());
    println!("  pixel accuracy on ink: {acc:.3}");
    let extractor = VisualElementExtractor::trained(lcseg);

    // "The article's chart": rendered from a hidden source (corpus[17]).
    let secret = &corpus[17];
    let data = UnderlyingData::from_spec(&secret.table, &secret.spec);
    let article_chart = render(&data, &style);
    pgm::save_ppm(&article_chart.image, "/tmp/article_chart.ppm").ok();
    println!("article chart saved to /tmp/article_chart.ppm");

    // The journalist only has the image.
    let extracted = extractor.extract_image(&article_chart.image);
    println!(
        "extractor found {} lines; decoded y range: {:?}",
        extracted.lines.len(),
        extracted.y_range
    );
    let query = QueryInput {
        image: article_chart.image.clone(),
        extracted,
    };

    // Shape-based scan of the lake with the ground-truth relevance metric
    // (DTW + bipartite matching) applied to the *extracted* line values —
    // the zero-training path a journalist could run today.
    let lines: Vec<Vec<f64>> = query
        .extracted
        .lines
        .iter()
        .map(|l| l.values.clone())
        .collect();
    let rel_cfg = RelevanceConfig::default();
    let mut scored: Vec<(usize, f64)> = corpus
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let d = UnderlyingData {
                series: lines
                    .iter()
                    .map(|l| DataSeries::new("q", l.clone()))
                    .collect(),
            };
            (i, rel_score(&d, &r.table, &rel_cfg))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 candidate source datasets:");
    for (rank, (i, s)) in scored.iter().take(5).enumerate() {
        let marker = if *i == 17 { "  <- the true source" } else { "" };
        println!(
            "  #{} {} (score {:.4}){}",
            rank + 1,
            table_name(&corpus[*i].table),
            s,
            marker
        );
    }
    assert_eq!(scored[0].0, 17, "the true source should rank first");
    println!("\nfact-check complete: the article's data source was recovered.");
}

fn table_name(t: &Table) -> &str {
    &t.name
}
