//! Quickstart: build a tiny repository, render a line-chart query, train a
//! small FCM and retrieve the tables that could have produced the chart.
//!
//! Run with: `cargo run --release --example quickstart`

use linechart_discovery::benchmark::{build_benchmark, evaluate, BenchmarkConfig, FcmMethod};
use linechart_discovery::fcm::{FcmConfig, FcmModel, TrainConfig};

fn main() {
    // 1. A self-contained benchmark world: synthetic Plotly-like corpus,
    //    trained pixel-level chart segmenter, queries with ground truth.
    println!("building benchmark (corpus, extractor, queries) ...");
    let bench = build_benchmark(&BenchmarkConfig {
        n_train: 24,
        n_distractors: 16,
        n_query_tables: 6,
        noise_copies: 4,
        k_rel: 4,
        ..Default::default()
    });
    println!(
        "repository: {} tables; {} queries; ground truth size k={}",
        bench.repo.len(),
        bench.queries.len(),
        bench.k_rel
    );

    // 2. Train FCM on the train split.
    println!("training FCM ...");
    let mut model = FcmModel::new(FcmConfig::small());
    let tc = TrainConfig {
        epochs: 8,
        ..Default::default()
    };
    let report =
        linechart_discovery::benchmark::train_fcm_on(&bench, &mut model, &tc, |e, loss, _| {
            println!("  epoch {e}: loss {loss:.3}");
            0.0
        });
    let _ = report;

    // 3. Retrieve: rank the repository for the first query.
    let mut method = FcmMethod::new(model);
    let summary = evaluate(&mut method, &bench);
    let overall = summary.overall();
    println!(
        "retrieval quality: prec@{} = {:.3}, ndcg@{} = {:.3} over {} queries",
        bench.k_rel, overall.prec, bench.k_rel, overall.ndcg, overall.n_queries
    );

    // 4. Show the top-5 tables for one query.
    use linechart_discovery::baselines::DiscoveryMethod;
    let q = &bench.queries[0];
    println!(
        "\ntop-5 candidates for query 0 (true sources: {:?}):",
        q.relevant
    );
    for (rank, (ti, score)) in method.rank(&q.input, &bench.repo, 5).iter().enumerate() {
        println!(
            "  #{} table '{}' (score {:.3}){}",
            rank + 1,
            bench.repo[*ti].table.name,
            score,
            if q.relevant.contains(ti) {
                "  <- relevant"
            } else {
                ""
            }
        );
    }
}
