//! The `lcdd_engine` facade end to end: build a corpus, train FCM briefly,
//! assemble a sharded engine (ingest → encode → shard → index), answer
//! typed queries with per-stage provenance, mutate the corpus live
//! (insert/remove without re-encoding the resident tables), snapshot it in
//! the sharded `LCDDSNP2` format, serve from the restored engine — then
//! wrap it in a `ServingEngine` and query from threads *while* a writer
//! keeps ingesting (lock-free, epoch-versioned serving). Finally, the
//! kill-and-recover walkthrough: run the corpus under a durable store
//! (`lcdd_store::DurableEngine`), kill the "process" mid-append (torn WAL
//! record included), and recover the exact corpus from
//! {checkpoint segments + WAL tail} without re-encoding a table — then
//! replicate it: a `lcdd_repl::Leader` ships the WAL to a follower
//! replica (read-your-writes via epoch tokens, zero re-encodes), the
//! leader is killed, and the replica is elected and promoted without
//! losing anything acknowledged. The finale serves the promoted store
//! over the network through the `lcdd_server` gateway: an insert over
//! HTTP answers with an epoch token, replaying it as `x-lcdd-min-epoch`
//! gives read-your-writes, and shutdown drains every admitted request.
//!
//! ```bash
//! cargo run --release --example search_engine
//! ```

use linechart_discovery::benchmark::{build_benchmark, train_fcm_on, BenchmarkConfig};
use linechart_discovery::engine::{
    Engine, EngineBuilder, IndexStrategy, Query, SearchOptions, SearchResponse, ServingEngine,
};
use linechart_discovery::fcm::{FcmConfig, FcmModel, TrainConfig};
use linechart_discovery::repl::{
    elect, promote, sync_to_convergence, ChannelTransport, Follower, Leader, ReadConsistency,
    RetryPolicy,
};
use linechart_discovery::store::{DurableEngine, StoreOptions};

fn show(label: &str, resp: &SearchResponse) {
    let c = &resp.counts;
    let stages = [
        c.after_interval.map(|n| format!("interval->{n}")),
        c.after_lsh.map(|n| format!("lsh->{n}")),
    ]
    .into_iter()
    .flatten()
    .collect::<Vec<_>>()
    .join(" ");
    println!(
        "  [{label}] strategy={:<13} scored {:>3}/{:<3} {} ({:.1} ms)",
        resp.strategy.name(),
        c.scored,
        c.total,
        if stages.is_empty() {
            "(no pruning)".to_string()
        } else {
            stages
        },
        resp.timings.total_s * 1e3,
    );
    for hit in resp.hits.iter().take(3) {
        println!(
            "      #{:<3} {:<24} score {:.4}",
            hit.index, hit.table_name, hit.score
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic benchmark: tables + charts + ground truth.
    println!("building benchmark corpus ...");
    let bench = build_benchmark(&BenchmarkConfig {
        n_train: 16,
        n_distractors: 12,
        n_query_tables: 4,
        noise_copies: 4,
        k_rel: 5,
        train_extractor: false,
        ..Default::default()
    });

    // 2. Train the relevance model briefly (CPU-scale).
    println!("training FCM ({} repo tables) ...", bench.repo.len());
    let mut model = FcmModel::new(FcmConfig::tiny());
    train_fcm_on(
        &bench,
        &mut model,
        &TrainConfig {
            epochs: 4,
            batch_size: 8,
            n_neg: 2,
            ..Default::default()
        },
        |_, _, _| 0.0,
    );

    // 3. Ingest -> encode -> shard -> index: one builder call chain. Four
    //    shards here; results are identical for any shard count.
    let mut engine = EngineBuilder::new(model)
        .shards(4)
        .ingest(&bench.repo)
        .build()?;
    println!(
        "engine ready: {} tables across {} shards under {:?}\n",
        engine.len(),
        engine.n_shards(),
        engine.hybrid_config()
    );

    // 4. A pre-extracted chart query, swept across every index strategy —
    //    the strategy is a per-query option; nothing is rebuilt.
    let extracted = bench.queries[0].input.extracted.clone();
    println!("pre-extracted chart query, all strategies:");
    for strategy in IndexStrategy::ALL {
        let resp = engine.search(
            &Query::Extracted(extracted.clone()),
            &SearchOptions::top_k(5).with_strategy(strategy),
        )?;
        show("chart", &resp);
    }

    // 5. A raw numeric series sketch — "find datasets shaped like this".
    let series: Vec<f64> = (0..120).map(|i| (i as f64 / 9.0).sin() * 4.0).collect();
    let resp = engine.search(&Query::from_series(vec![series]), &SearchOptions::top_k(5))?;
    println!("\nraw series sketch:");
    show("series", &resp);

    // 6. Batched serving across the work pool.
    let queries: Vec<Query> = bench
        .queries
        .iter()
        .map(|q| Query::Extracted(q.input.extracted.clone()))
        .collect();
    let batch = engine.search_batch(&queries, &SearchOptions::top_k(5));
    println!(
        "\nbatch of {}: {} answered",
        batch.len(),
        batch.iter().filter(|r| r.is_ok()).count()
    );

    // 7. Live mutation: evict two tables, ingest a fresh one. Only the
    //    new table is encoded — the resident corpus is untouched — and
    //    only the receiving shard's index is updated.
    let evicted = [engine.table_meta(0).id, engine.table_meta(1).id];
    let n_removed = engine.remove_tables(&evicted);
    let fresh: Vec<f64> = (0..120)
        .map(|i| (i as f64 / 7.0).cos() * 2.5 + 10.0)
        .collect();
    let new_table = linechart_discovery::table::Table::new(
        90_001,
        "live-ingested",
        vec![linechart_discovery::table::Column::new("c", fresh)],
    );
    let assigned = engine.insert_tables(vec![new_table]);
    println!(
        "\nlive mutation: removed {n_removed} tables, inserted 1 at global position {} -> {} tables",
        assigned[0],
        engine.len()
    );

    // 8. Sharded snapshot round-trip (LCDDSNP2): serving restarts without
    //    re-encoding; the shard layout is preserved and can be changed
    //    after restore with `reshard` — answers stay identical.
    let path = std::env::temp_dir().join("lcdd_search_engine_example.snap");
    engine.save(&path)?;
    let mut restored = Engine::load(&path)?;
    restored.reshard(2)?;
    let again = restored.search(
        &Query::Extracted(extracted),
        &SearchOptions::top_k(5).with_strategy(IndexStrategy::Hybrid),
    )?;
    let reference = engine.search(
        &Query::Extracted(bench.queries[0].input.extracted.clone()),
        &SearchOptions::top_k(5).with_strategy(IndexStrategy::Hybrid),
    )?;
    assert_eq!(again.ranked_indices(), reference.ranked_indices());
    println!(
        "\nsnapshot round-trip OK: {} bytes ({} shards saved, resharded to {} after restore), \
         identical top-{} ranking",
        std::fs::metadata(&path)?.len(),
        engine.n_shards(),
        restored.n_shards(),
        again.hits.len()
    );
    std::fs::remove_file(&path).ok();

    // 9. Concurrent serving: wrap the engine in a ServingEngine and let
    //    reader threads hammer it while this thread keeps ingesting.
    //    `search` takes &self (lock-free snapshot of the current epoch);
    //    the writer publishes each mutation atomically, and repeat queries
    //    within an epoch come from the query cache.
    let serving = ServingEngine::new(engine);
    let sketch: Vec<f64> = (0..120).map(|i| (i as f64 / 9.0).sin() * 4.0).collect();
    println!("\nconcurrent serving: 3 readers querying during live ingest ...");
    std::thread::scope(|scope| {
        for reader in 0..3 {
            let (serving, sketch) = (&serving, &sketch);
            scope.spawn(move || {
                let opts = SearchOptions::top_k(3);
                let (mut served, mut cached, mut first, mut last) = (0u32, 0u32, u64::MAX, 0u64);
                for _ in 0..40 {
                    let resp = serving
                        .search(&Query::from_series(vec![sketch.clone()]), &opts)
                        .expect("concurrent search");
                    first = first.min(resp.epoch);
                    last = last.max(resp.epoch);
                    served += 1;
                    cached += u32::from(resp.cached);
                    // Pace the loop so the reads visibly span several
                    // published epochs (a real client thinks between
                    // queries; the cache would otherwise absorb the loop
                    // within one epoch).
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                println!(
                    "  reader {reader}: {served} responses ({cached} cached), \
                     epochs {first}..={last}"
                );
            });
        }
        // The writer: grow the corpus live, one publish per batch.
        for round in 0..5u64 {
            let vals: Vec<f64> = (0..120)
                .map(|i| ((i as f64 + round as f64 * 11.0) / 6.5).sin() * 3.0)
                .collect();
            serving.insert_tables(vec![linechart_discovery::table::Table::new(
                91_000 + round,
                format!("live-{round}"),
                vec![linechart_discovery::table::Column::new("c", vals)],
            )]);
        }
    });
    let stats = serving.cache_stats();
    println!(
        "writer done: {} tables at epoch {} | cache: {} hits, {} misses",
        serving.len(),
        serving.epoch(),
        stats.hits,
        stats.misses
    );

    // 10. Durability: run the same corpus under a DurableEngine. Every
    //     mutation is WAL-logged (with its already-encoded delta) before
    //     its epoch is published; checkpoints rewrite only dirty shards.
    let store_dir =
        std::env::temp_dir().join(format!("lcdd_search_engine_store_{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let durable = DurableEngine::create(
        &store_dir,
        serving.into_engine(),
        StoreOptions::default(), // fsync every append, auto-checkpoint
    )?;
    let mk = |id: u64, phase: f64| {
        let vals: Vec<f64> = (0..120)
            .map(|i| ((i as f64 + phase) / 5.5).sin() * 2.0)
            .collect();
        linechart_discovery::table::Table::new(
            id,
            format!("durable-{id}"),
            vec![linechart_discovery::table::Column::new("c", vals)],
        )
    };
    durable.insert_tables(vec![mk(95_000, 3.0), mk(95_001, 17.0)])?;
    durable.remove_tables(&[95_000])?;
    let ckpt = durable.checkpoint()?;
    // Probe for the shape just ingested durably (table 95_001).
    let sketch_query = Query::from_series(vec![(0..120)
        .map(|i| ((i as f64 + 17.0) / 5.5).sin() * 2.0)
        .collect()]);
    // NoIndex: rank the full corpus so the walkthrough shows real hits.
    let probe_opts = SearchOptions::top_k(5).with_strategy(IndexStrategy::NoIndex);
    let before_kill = durable.search(&sketch_query, &probe_opts)?;
    let (epoch_before, len_before) = (durable.epoch(), durable.len());
    println!(
        "\ndurable store at {}: epoch {epoch_before}, {len_before} tables \
         (checkpoint rewrote {}/{} shards)",
        store_dir.display(),
        ckpt.shards_written,
        ckpt.shards_total,
    );

    // Kill -9 simulation: one more insert lands in the WAL, then the
    // "process" dies mid-append — we tear 5 bytes off the final record the
    // way a crash would. Everything acknowledged before the torn append
    // survives; the torn record is truncated away on recovery.
    durable.insert_tables(vec![mk(95_002, 29.0)])?;
    drop(durable);
    let (_, manifest) = linechart_discovery::store::latest_manifest(&store_dir)?
        .expect("the store directory holds a manifest");
    let wal_path = store_dir.join(&manifest.wal_file);
    let wal_len = std::fs::metadata(&wal_path)?.len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)?
        .set_len(wal_len - 5)?;

    let encodes_before = linechart_discovery::fcm::table_encode_count();
    let (recovered, report) = DurableEngine::open(&store_dir, StoreOptions::default())?;
    println!(
        "recovered: checkpoint epoch {} + {} replayed ops -> epoch {} \
         ({} torn, {} tables re-encoded)",
        report.checkpoint_epoch,
        report.replayed_ops,
        report.recovered_epoch,
        if report.truncated_tail.is_some() {
            "tail"
        } else {
            "nothing"
        },
        linechart_discovery::fcm::table_encode_count() - encodes_before,
    );
    assert_eq!(recovered.epoch(), epoch_before);
    assert_eq!(recovered.len(), len_before);
    let after_kill = recovered.search(&sketch_query, &probe_opts)?;
    assert_eq!(after_kill.ranked_indices(), before_kill.ranked_indices());
    println!(
        "post-recovery top-5 identical to pre-kill: {:?}",
        after_kill.ranked_indices()
    );

    // 11. Replication: wrap the recovered store in a Leader and ship its
    //     WAL to a follower replica. Insert records carry the encoded
    //     delta, so the replica never runs the FCM encoder. Then the
    //     failover drill: kill the leader, elect the newest recoverable
    //     replica, promote it, and keep ingesting.
    let repl_root =
        std::env::temp_dir().join(format!("lcdd_search_engine_repl_{}", std::process::id()));
    std::fs::remove_dir_all(&repl_root).ok();
    let leader = Leader::new(std::sync::Arc::new(recovered), RetryPolicy::immediate());
    // Bootstrap the replica from a shipped checkpoint, then attach its
    // cursor so subsequent syncs stream WAL records.
    let package = leader.store().export_checkpoint()?;
    let follower =
        Follower::from_package(repl_root.join("replica"), &package, StoreOptions::default())?;
    leader.attach("replica", follower.epoch());
    let transport = ChannelTransport::default();
    leader.store().insert_tables(vec![mk(95_100, 41.0)])?;
    leader.store().insert_tables(vec![mk(95_101, 43.0)])?;
    let encodes_before = linechart_discovery::fcm::table_encode_count();
    let ship = sync_to_convergence(&leader, "replica", &transport, &follower, 64)?;
    assert_eq!(
        linechart_discovery::fcm::table_encode_count(),
        encodes_before,
        "the follower replays shipped encodings, it never re-encodes"
    );
    // Read-your-writes on the replica: the token is the epoch the leader
    // acknowledged; the replica refuses to answer from anything older.
    let ack = leader.store().epoch();
    let replica_view = follower.search(
        &sketch_query,
        &probe_opts,
        ReadConsistency::AtLeastEpoch(ack),
    )?;
    let leader_view = leader.store().search(&sketch_query, &probe_opts)?;
    assert_eq!(replica_view.ranked_indices(), leader_view.ranked_indices());
    println!(
        "\nreplication: {} WAL records shipped in {} rounds; replica at epoch {} \
         answers identically (0 re-encodes)",
        ship.records_applied,
        ship.rounds,
        follower.epoch()
    );

    // Kill the leader. The replica's store directory is a complete,
    // recoverable store: probe ranks it by recoverable epoch (manifest +
    // WAL-tail scan, without opening it) and promotion is just recovery.
    drop(leader);
    let replica_dir = follower.store_dir();
    drop(follower);
    let ranking = elect(&[replica_dir])?;
    let (promoted, _) = promote(&ranking[0], StoreOptions::default())?;
    assert_eq!(promoted.epoch(), ack, "nothing acknowledged was lost");
    let new_leader = Leader::new(std::sync::Arc::new(promoted), RetryPolicy::immediate());
    new_leader.store().insert_tables(vec![mk(95_102, 47.0)])?;
    println!(
        "failover: promoted the replica at epoch {ack} ({} candidate); \
         the new leader is live and ingesting at epoch {}",
        ranking.len(),
        new_leader.store().epoch()
    );

    // 12. Serve it over the network: the lcdd-server gateway wraps the
    //     promoted leader's durable store behind a plain HTTP/1.1 API.
    //     Concurrent searches are coalesced into single batch calls (one
    //     pinned epoch per batch, duplicate in-flight queries computed
    //     once), writes answer with an epoch token, and replaying that
    //     token as `x-lcdd-min-epoch` gives read-your-writes.
    use linechart_discovery::server::{Backend, Server, ServerConfig};
    let gateway = Server::start(
        Backend::Durable(std::sync::Arc::clone(new_leader.store())),
        ServerConfig::default(),
    )?;
    println!("\ngateway listening on {}", gateway.addr());
    let mut client = lcdd_testkit::load::HttpClient::connect(gateway.addr())?;
    // Write over the wire; the response carries the read-your-writes token.
    let wire_vals: Vec<f64> = (0..120)
        .map(|i| ((i as f64 + 53.0) / 5.5).sin() * 2.0)
        .collect();
    let ins = client.request(
        "POST",
        "/insert",
        &[],
        &lcdd_testkit::load::insert_body(95_103, &wire_vals),
    )?;
    let token = ins.header("x-lcdd-epoch").expect("epoch token").to_string();
    println!("  POST /insert -> {} (epoch token {token})", ins.status);
    // Search pinned at-or-after the write: the new table must be visible.
    let resp = client.request(
        "POST",
        "/search",
        &[("x-lcdd-min-epoch", &token)],
        &lcdd_testkit::load::search_body_with(&[wire_vals], 5, Some("none")),
    )?;
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"table_id\":95103"));
    println!(
        "  POST /search (x-lcdd-min-epoch: {token}) -> {} at epoch {} \
         (batch {})",
        resp.status,
        resp.json_u64("epoch").unwrap_or(0),
        resp.header("x-lcdd-batch-id").unwrap_or("?"),
    );
    let health = client.request("GET", "/healthz", &[], "")?;
    let metrics = client.request("GET", "/metrics", &[], "")?;
    println!(
        "  GET /healthz -> {}; GET /metrics -> {} ({} searches served)",
        health.status,
        metrics.status,
        metrics.json_u64("search").unwrap_or(0)
    );
    drop(client);
    // Graceful drain: every admitted request is answered before the
    // listener goes away.
    let report = gateway.shutdown();
    assert_eq!(report.jobs_enqueued, report.jobs_answered);
    println!(
        "gateway drained cleanly: {}/{} admitted searches answered",
        report.jobs_answered, report.jobs_enqueued
    );

    std::fs::remove_dir_all(&store_dir).ok();
    std::fs::remove_dir_all(&repl_root).ok();
    Ok(())
}
