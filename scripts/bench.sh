#!/usr/bin/env bash
# Refresh the tracked BENCH_*.json perf snapshots and optionally run the
# full Criterion micro-benchmark suite.
#
# bench_serving and bench_sharding run a 1/4/N thread sweep internally by
# re-exec'ing themselves with LCDD_THREADS pinned per child process (the
# pool freezes its width at first touch, so in-process sweeps would lie);
# setting LCDD_THREADS here pins only the parent's own measurement runs.
# LCDD_BENCH_STRICT=1 turns the serving bench's thread-scaling warning
# into a hard failure.
#
# Usage:
#   scripts/bench.sh            # all bench bins -> BENCH_*.json
#   scripts/bench.sh --all      # also run `cargo bench` (microbench suite)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== kernel benches -> BENCH_kernels.json =="
cargo run --release -p lcdd-bench --bin bench_kernels -- BENCH_kernels.json

echo
echo "== sharding benches -> BENCH_sharding.json =="
cargo run --release -p lcdd-bench --bin bench_sharding -- BENCH_sharding.json

echo
echo "== concurrent-serving benches -> BENCH_serving.json =="
cargo run --release -p lcdd-bench --bin bench_serving -- BENCH_serving.json

echo
echo "== durable-store benches -> BENCH_store.json =="
cargo run --release -p lcdd-bench --bin bench_store -- BENCH_store.json

echo
echo "== replication benches -> BENCH_repl.json =="
cargo run --release -p lcdd-bench --bin bench_repl -- BENCH_repl.json

echo
echo "== gateway benches -> BENCH_server.json =="
cargo run --release -p lcdd-bench --bin bench_server -- BENCH_server.json

echo
echo "== tiered-corpus scale benches -> BENCH_scale.json =="
# Full ladder: 10k and 100k with exact ground truth (gates deepest
# re-rank recall@10 >= 0.95), plus a 1M-table fabricate/cold-open/scan
# smoke. Takes a few minutes; CI runs the 10k-only `--smoke` variant.
cargo run --release -p lcdd-bench --bin bench_scale -- BENCH_scale.json

if [[ "${1:-}" == "--all" ]]; then
    echo
    echo "== criterion micro-benchmarks =="
    cargo bench -p lcdd-bench
fi
