#!/usr/bin/env bash
# Lint Prometheus text expositions with the repo's hand-rolled linter
# (crates/obs/src/promlint.rs — no external tooling, CI runs the same
# self-test).
#
# Usage:
#   scripts/promlint.sh                  # build + run the linter self-test
#   scripts/promlint.sh <file>           # lint a saved exposition
#   scripts/promlint.sh <host>:<port>    # scrape a running gateway's
#                                        # /metrics (Accept: text/plain,
#                                        # via /dev/tcp — no curl) and lint
#   scripts/promlint.sh -                # lint stdin
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p lcdd-obs --bin promlint --quiet
BIN=target/release/promlint

"$BIN" --self-test

case "${1:-}" in
  "")
    ;;
  *:*)
    host=${1%%:*}
    port=${1##*:}
    exec 3<>"/dev/tcp/${host}/${port}"
    printf 'GET /metrics HTTP/1.1\r\nHost: %s\r\nAccept: text/plain\r\nConnection: close\r\n\r\n' "$1" >&3
    # Strip the status line + headers; lint only the exposition body.
    body=$(awk 'in_body { print } /^\r?$/ { in_body = 1 }' <&3)
    exec 3<&- 3>&-
    printf '%s\n' "$body" | "$BIN" -
    ;;
  *)
    "$BIN" "$1"
    ;;
esac
