//! # linechart-discovery
//!
//! Umbrella crate for the reproduction of *Dataset Discovery via Line
//! Charts* (Ji, Luo, Bao, Culpepper — ICDE 2025). Re-exports every
//! sub-crate so examples and downstream users need a single dependency.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.

pub use lcdd_baselines as baselines;
pub use lcdd_benchmark as benchmark;
pub use lcdd_chart as chart;
pub use lcdd_engine as engine;
pub use lcdd_fcm as fcm;
pub use lcdd_index as index;
pub use lcdd_nn as nn;
pub use lcdd_relevance as relevance;
pub use lcdd_repl as repl;
pub use lcdd_server as server;
pub use lcdd_store as store;
pub use lcdd_table as table;
pub use lcdd_tensor as tensor;
pub use lcdd_vision as vision;
