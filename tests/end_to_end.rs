//! Cross-crate integration tests: the full pipeline from synthetic corpus
//! through rendering, extraction, training and retrieval — engine-level
//! corpora come from `lcdd_testkit` (seeded, with planted near-duplicates)
//! instead of ad-hoc per-file generators.

use lcdd_testkit::{assert_same_hits, corpus_with_dups, query_like, tiny_engine, CorpusSpec};
use linechart_discovery::baselines::{DiscoveryMethod, QetchStar};
use linechart_discovery::benchmark::{build_benchmark, evaluate, BenchmarkConfig, FcmMethod};
use linechart_discovery::chart::{render, render_record, ChartStyle};
use linechart_discovery::engine::{Engine, IndexStrategy, SearchOptions};
use linechart_discovery::fcm::{FcmConfig, FcmModel, TrainConfig};
use linechart_discovery::relevance::{rel_score, RelevanceConfig};
use linechart_discovery::table::series::UnderlyingData;
use linechart_discovery::table::{build_corpus, CorpusConfig};
use linechart_discovery::vision::VisualElementExtractor;

fn tiny_bench_cfg() -> BenchmarkConfig {
    BenchmarkConfig {
        n_train: 10,
        n_distractors: 8,
        n_query_tables: 4,
        noise_copies: 3,
        k_rel: 3,
        train_extractor: false,
        ..Default::default()
    }
}

#[test]
fn render_extract_roundtrip_preserves_line_count() {
    let corpus = build_corpus(&CorpusConfig {
        n_records: 12,
        ..Default::default()
    });
    let style = ChartStyle::default();
    let oracle = VisualElementExtractor::oracle();
    let mut matched = 0usize;
    for r in &corpus {
        let chart = render_record(&r.table, &r.spec, &style);
        let extracted = oracle.extract(&chart);
        if extracted.lines.len() == r.spec.num_lines() {
            matched += 1;
        }
        // The decoded y range must cover the rendered tick range closely.
        if let Some((lo, hi)) = extracted.y_range {
            let span = (chart.meta.y_hi - chart.meta.y_lo).abs().max(1e-9);
            assert!(
                (lo - chart.meta.y_lo).abs() < span * 0.2,
                "{}",
                r.table.name
            );
            assert!(
                (hi - chart.meta.y_hi).abs() < span * 0.2,
                "{}",
                r.table.name
            );
        }
    }
    // Heavily overlapping multi-line charts can merge instances; most must
    // round-trip exactly.
    assert!(
        matched * 10 >= corpus.len() * 7,
        "only {matched}/{} charts round-tripped",
        corpus.len()
    );
}

#[test]
fn ground_truth_relevance_identifies_source_tables() {
    let corpus = build_corpus(&CorpusConfig {
        n_records: 15,
        ..Default::default()
    });
    let cfg = RelevanceConfig::default();
    let mut top1 = 0usize;
    for (qi, r) in corpus.iter().enumerate().take(8) {
        let d = UnderlyingData::from_spec(&r.table, &r.spec);
        let best = corpus
            .iter()
            .enumerate()
            .map(|(ti, t)| (ti, rel_score(&d, &t.table, &cfg)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        top1 += usize::from(best == qi);
    }
    assert!(
        top1 >= 7,
        "Rel(D,T) should almost always point at the source: {top1}/8"
    );
}

#[test]
fn benchmark_evaluation_end_to_end_with_fcm_and_qetch() {
    let bench = build_benchmark(&tiny_bench_cfg());

    // Untrained FCM must run the whole pipeline without panicking.
    let mut fcm = FcmMethod::new(FcmModel::new(FcmConfig::tiny()));
    let s = evaluate(&mut fcm, &bench);
    assert_eq!(s.overall().n_queries, bench.queries.len());

    // Qetch* (no training) should beat chance on plain queries because it
    // matches extracted shapes directly.
    let mut qetch = QetchStar::default();
    let s = evaluate(&mut qetch, &bench);
    let chance = bench.k_rel as f64 / bench.repo.len() as f64;
    assert!(
        s.without_da().prec > chance,
        "Qetch* prec {} should beat chance {chance}",
        s.without_da().prec
    );
}

#[test]
fn trained_fcm_beats_untrained_fcm() {
    let bench = build_benchmark(&tiny_bench_cfg());
    // Hyper-parameters picked for a clear trained-vs-untrained margin under
    // the workspace's deterministic RNG streams (the assertion below is
    // coarse, but at tiny scale a bad seed can land training in the
    // predict-0.5 saddle and make it vacuous).
    let tc = TrainConfig {
        epochs: 8,
        batch_size: 10,
        n_neg: 2,
        seed: 2,
        ..Default::default()
    };

    let mut untrained = FcmMethod::new(FcmModel::new(FcmConfig::tiny()));
    let before = evaluate(&mut untrained, &bench).overall();

    let mut model = FcmModel::new(FcmConfig::tiny());
    linechart_discovery::benchmark::train_fcm_on(&bench, &mut model, &tc, |_, _, _| 0.0);
    let mut trained = FcmMethod::new(model);
    let after = evaluate(&mut trained, &bench).overall();

    assert!(
        after.prec >= before.prec,
        "training must not hurt retrieval: before {} after {}",
        before.prec,
        after.prec
    );
}

#[test]
fn index_candidates_preserve_ground_truth_recall() {
    use linechart_discovery::index::IndexStrategy;
    let bench = build_benchmark(&tiny_bench_cfg());
    let mut fcm = FcmMethod::new(FcmModel::new(FcmConfig::tiny()));
    fcm.prepare(&bench.repo);
    fcm.strategy = IndexStrategy::IntervalOnly;
    // The interval tree must never prune the query's own source table: its
    // columns trivially overlap the chart's value range.
    for q in &bench.queries {
        if q.agg.is_some() {
            continue; // aggregated charts can exceed raw ranges
        }
        if let Some(c) = fcm.candidate_set(&q.input) {
            assert!(
                c.contains(&q.source),
                "interval stage pruned the true source for a plain query"
            );
        }
    }
}

#[test]
fn sharded_engine_full_lifecycle() {
    // The serving story end to end: build sharded, search, mutate live,
    // snapshot, restore, reshard — identical answers at every step where
    // the corpus is the same.
    let (tables, dups) = corpus_with_dups(&CorpusSpec::sized(0xe2e, 9));
    let mut engine = tiny_engine(tables.clone(), 3);
    assert_eq!(engine.n_shards(), 3);

    // A query shaped like a table with a planted near-duplicate: under
    // the exhaustive strategy both the original and its dup are scored,
    // and the dup scores within a whisker of the original.
    let (orig, dup) = dups[0];
    let opts = SearchOptions::top_k(9).with_strategy(IndexStrategy::NoIndex);
    let resp = engine.search(&query_like(&tables[orig]), &opts).unwrap();
    let score_of = |want: usize| resp.hits.iter().find(|h| h.index == want).unwrap().score;
    assert!((score_of(orig) - score_of(dup)).abs() < 0.05);

    // Live mutation: evict the duplicate, insert a fresh table.
    assert_eq!(engine.remove_tables(&[tables[dup].id]), 1);
    let mut extra = corpus_with_dups(&CorpusSpec::sized(0xbeef, 1)).0;
    extra[0].id = 100;
    engine.insert_tables(extra);
    assert_eq!(engine.len(), 9);
    let resp = engine.search(&query_like(&tables[orig]), &opts).unwrap();
    assert!(resp.hits.iter().all(|h| h.index < 9));
    assert!(resp.hits.iter().all(|h| h.table_id != tables[dup].id));

    // Snapshot → restore → reshard: identical answers throughout.
    let mut buf = Vec::new();
    engine.save_to(&mut buf).unwrap();
    let mut restored = Engine::load_from(buf.as_slice()).unwrap();
    for strategy in IndexStrategy::ALL {
        let opts = SearchOptions::top_k(5).with_strategy(strategy);
        let a = engine.search(&query_like(&tables[1]), &opts).unwrap();
        let b = restored.search(&query_like(&tables[1]), &opts).unwrap();
        assert_same_hits(&format!("restored, {strategy:?}"), &a, &b);
    }
    restored.reshard(5).unwrap();
    let a = engine.search(&query_like(&tables[1]), &opts).unwrap();
    let b = restored.search(&query_like(&tables[1]), &opts).unwrap();
    assert_same_hits("restored + resharded", &a, &b);
}

#[test]
fn chart_styles_roundtrip_through_extractor() {
    // A larger raster must extract as well as the default one.
    let corpus = build_corpus(&CorpusConfig {
        n_records: 3,
        ..Default::default()
    });
    let style = ChartStyle::large();
    let oracle = VisualElementExtractor::oracle();
    let data = UnderlyingData::from_spec(&corpus[0].table, &corpus[0].spec);
    let chart = render(&data, &style);
    let extracted = oracle.extract(&chart);
    assert!(!extracted.lines.is_empty());
    assert!(extracted.y_range.is_some());
}
