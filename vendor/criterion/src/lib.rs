//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `criterion` its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The measurement loop is deliberately simple — warm up, then run timed
//! batches until a wall-clock budget is hit and report the fastest batch
//! mean (the usual minimum-timing estimator; robust to scheduler noise) —
//! with no plots, no statistics machinery and no disk state. Set
//! `CRITERION_BUDGET_MS` to trade accuracy for wall-clock time
//! (default 300 ms per benchmark).

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    /// Fastest batch mean observed, in ns/iter.
    result_ns: f64,
}

impl Bencher {
    /// Times `routine`, called in batches, until the budget elapses.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in ~1/10 of the budget?
        let probe_start = Instant::now();
        black_box(routine());
        let once = probe_start.elapsed().max(Duration::from_nanos(1));
        let batch = ((self.budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 1_000_000)) as u64;

        let mut best = f64::INFINITY;
        let deadline = Instant::now() + self.budget;
        let mut batches = 0u32;
        while batches < 3 || Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(per_iter);
            batches += 1;
            if batches >= 10_000 {
                break;
            }
        }
        self.result_ns = best;
    }
}

fn budget_from_env() -> Duration {
    std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(300))
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's budget-based loop does
    /// not count samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<O>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, O>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I) -> O,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain argument.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            budget: budget_from_env(),
            filter,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<O>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher) -> O,
    ) -> &mut Self {
        let id = id.into();
        let full = id.id.clone();
        self.run_one(&full, f);
        self
    }

    fn run_one<O>(&mut self, full_name: &str, mut f: impl FnMut(&mut Bencher) -> O) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            budget: self.budget,
            result_ns: f64::NAN,
        };
        f(&mut bencher);
        if bencher.result_ns.is_nan() {
            println!("{full_name:<40} (no iter() call)");
        } else {
            println!(
                "{full_name:<40} {:>12}/iter ({:.0} iters/s)",
                human(bencher.result_ns),
                1e9 / bencher.result_ns
            );
        }
    }
}

/// Mirrors `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_BUDGET_MS", "20");
        let mut c = Criterion {
            budget: Duration::from_millis(20),
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
    }
}
