//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `proptest` its test suites use: range and collection
//! strategies, tuple strategies, `proptest!` with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Semantics differ from upstream in one deliberate way: there is no
//! shrinking. Each test runs `cases` deterministic pseudo-random inputs
//! (seeded from the test name, so failures reproduce across runs) and
//! reports the first failing input verbatim.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A generator of test inputs. Upstream proptest separates strategies
    /// from value trees to support shrinking; this shim generates directly.
    pub trait Strategy {
        type Value: std::fmt::Debug;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    /// `Just` strategy: always yields a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length in `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything the `proptest!` macro and typical tests need in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

#[doc(hidden)]
pub fn __run_cases<F: FnMut(&mut StdRng)>(test_name: &str, cases: u32, mut body: F) {
    // Deterministic seed per test so failures reproduce without a
    // persistence file; the case index advances the stream.
    let mut seed = 0xcbf29ce484222325u64; // FNV-1a over the test name
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    for case in 0..cases as u64 {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_add(case.wrapping_mul(0x9E3779B97F4A7C15)));
        body(&mut rng);
    }
}

/// Mirrors `proptest::proptest!`: a block of `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(stringify!($name), cfg.cases, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    // Report the failing input on panic, proptest-style.
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                        $(&$arg,)*
                    );
                    let __guard = $crate::__PanicContext::new(stringify!($name), __inputs);
                    { $body }
                    __guard.disarm();
                });
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strat),*) $body
            )*
        }
    };
}

#[doc(hidden)]
pub struct __PanicContext {
    name: &'static str,
    inputs: String,
    armed: bool,
}

impl __PanicContext {
    pub fn new(name: &'static str, inputs: String) -> Self {
        __PanicContext {
            name,
            inputs,
            armed: true,
        }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for __PanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest case failed: {} with inputs:\n{}",
                self.name, self.inputs
            );
        }
    }
}

/// Mirrors `prop_assert!` (panics instead of returning `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Mirrors `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Mirrors `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_len_in_range(v in collection::vec(0.0f32..1.0, 1..6)) {
            prop_assert!((1..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0.0..1.0).contains(&e)));
        }

        #[test]
        fn tuple_elements(p in collection::vec((-5.0f64..5.0, 0.0f64..2.0), 0..4)) {
            for (a, b) in p {
                prop_assert!((-5.0..5.0).contains(&a));
                prop_assert!((0.0..2.0).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first: Vec<u64> = Vec::new();
        crate::__run_cases("det", 5, |rng| {
            first.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
        });
        let mut second: Vec<u64> = Vec::new();
        crate::__run_cases("det", 5, |rng| {
            second.push(crate::strategy::Strategy::generate(&(0u64..1000), rng));
        });
        assert_eq!(first, second);
    }
}
