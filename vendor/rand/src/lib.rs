//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `rand` it actually uses: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — deterministic, well mixed and
//! plenty for synthetic-data generation and weight init (not a CSPRNG, and
//! the streams differ from upstream `rand`'s ChaCha12-based `StdRng`).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform over the type's "unit" domain: `[0, 1)` for floats, the full
    /// value range for integers. Backs [`Rng::gen`].
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Uniform integer in `[0, span)` via Lemire-style widening multiply with a
/// rejection pass to remove modulo bias.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Rejection zone: values below `threshold` would be over-represented.
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = rng.next_u64();
            let wide = (x as u128) * (span as u128);
            if (wide as u64) >= threshold {
                return wide >> 64;
            }
        }
    } else {
        // Spans wider than u64 only arise from pathological i128-scale
        // ranges, which this workspace never uses; fall back to masking.
        loop {
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if x < span * (u128::MAX / span) {
                return x % span;
            }
        }
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = Self::sample_unit(rng);
        (lo + (hi - lo) * u)
            .min(hi - (hi - lo) * f64::EPSILON)
            .max(lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        lo + (hi - lo) * u
    }
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_inclusive(rng, lo as f64, hi as f64) as f32
    }
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_unit(rng) as f32
    }
}

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing generator methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample over the type's natural domain (`[0, 1)` for floats).
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_unit(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&y));
            let z: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&z));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..2000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 2000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate = {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements should essentially never shuffle to identity"
        );
    }

    #[test]
    fn works_through_mut_reference() {
        // `&mut StdRng` must itself satisfy `Rng` (the seed code passes
        // `&mut impl Rng` down through helpers).
        fn takes_rng(rng: &mut impl Rng) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(17);
        takes_rng(&mut &mut rng);
        takes_rng(&mut rng);
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(19);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
